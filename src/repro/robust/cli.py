"""``python -m repro chaos`` — run the seeded chaos harness.

Subcommands:

* ``run`` — one run of a scenario. ``--scenario faults`` (default)
  builds the star site, drives the seeded fault schedule over the
  checkpointing workload, and prints the fault timeline, recovery log,
  and invariant table. ``--scenario overload`` saturates the same site
  with bulk traffic instead (``--saturation N`` times capacity; pass
  ``--static`` to disable the adaptive overload controls and see the
  baseline behaviour) and checks that the control plane survives.
  ``--scenario bulk`` distributes one object over the rack site's relay
  tree while killing a relay head (and a leaf) mid-transfer, and checks
  completion, digest verification, and exactly-once chunk commits.
  ``--scenario heal`` partitions one catalog replica from the other two
  for a minute of write/delete load — long enough that log compaction
  runs behind the cut — then heals it and checks reconvergence, payload
  bounds, and control-plane health (``--unbounded`` for the legacy
  single-blob baseline, ``--blackout`` to crash all three replicas and
  restore from durable snapshots instead). Exit status 0 iff every
  invariant/criterion holds. ``--seed N`` picks the schedule; same
  seed, same run.
* ``sweep`` — run several seeds back to back (default: the CI seeds)
  and print one summary line each; exit non-zero if any seed fails.
* ``bench`` — the robustness benchmarks: ``--experiment gray`` (E15,
  differential detector vs heartbeat-only; writes
  ``BENCH_gray_goodput.json``) or ``--experiment heal`` (E16, bounded
  anti-entropy vs the unbounded blob plus blackout restore; writes
  ``BENCH_heal_reconvergence.json``).
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.robust.chaos import (
    DEFAULT_SEEDS,
    format_bulk_report,
    format_gray_report,
    format_heal_report,
    format_overload_report,
    format_report,
    format_shard_report,
    run_bulk_chaos,
    run_chaos,
    run_gray,
    run_overload,
    run_partition_heal,
    run_shard_chaos,
)


def _add_run_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--scenario",
                   choices=("faults", "overload", "bulk", "gray", "heal",
                            "shard"),
                   default="faults",
                   help="faults: crash/partition chaos (default); "
                        "overload: bulk saturation, no crashes; "
                        "bulk: relay-tree distribution with mid-transfer kills; "
                        "gray: zombie replica, clock skew, corruption, "
                        "one-way links — nothing fail-stop; "
                        "heal: replica partitioned past the compaction "
                        "horizon under write/delete load, then healed; "
                        "shard: sharded catalog splitting under write load "
                        "while a shard replica crashes and a worker is "
                        "partitioned")
    p.add_argument("--workers", type=int, default=4, help="worker hosts (default 4)")
    p.add_argument("--steps", type=int, default=60,
                   help="[faults] work units per task (default 60)")
    p.add_argument("--duration", type=float, default=None,
                   help="simulated-seconds budget "
                        "(default: 120 for faults, 32 for overload)")
    p.add_argument("--no-churn", action="store_true",
                   help="[faults] disable host crash/churn")
    p.add_argument("--no-partitions", action="store_true",
                   help="[faults] disable segment partitions (no zombie scenarios)")
    p.add_argument("--saturation", type=float, default=5.0,
                   help="[overload] offered load as a multiple of site "
                        "capacity (default 5.0)")
    p.add_argument("--static", action="store_true",
                   help="[overload] baseline: fixed timeouts, no breakers, "
                        "no priority lanes")
    p.add_argument("--heartbeat-only", action="store_true",
                   help="[gray] baseline: health boards inert, Guardian "
                        "trusts lapsed leases without probing")
    p.add_argument("--unbounded", action="store_true",
                   help="[heal] baseline: legacy single-blob rc.sync on the "
                        "control lane, no compaction, no payload bound")
    p.add_argument("--blackout", action="store_true",
                   help="[heal] crash all three replicas at once instead of "
                        "partitioning; the catalog must come back from the "
                        "durable snapshots + journals")
    p.add_argument("--obs-sample", type=float, default=None, metavar="RATE",
                   help="enable tracing at this sampling rate (1.0 = every "
                        "record, 0.01 = 1-in-100; default: tracing off)")
    p.add_argument("--export", default=None, metavar="PATH",
                   help="save the run's observability metrics export as "
                        "JSON (diffable with `python -m repro obs diff`)")


def _run_one(seed: int, args) -> dict:
    holder = {}
    instrument = (
        (lambda sim: holder.setdefault("sim", sim))
        if getattr(args, "export", None) else None
    )
    if args.scenario == "bulk":
        report = run_bulk_chaos(
            seed,
            duration=args.duration if args.duration is not None else 60.0,
            instrument=instrument,
            obs_sample=args.obs_sample,
        )
    elif args.scenario == "overload":
        report = run_overload(
            seed,
            saturation=args.saturation,
            adaptive=not args.static,
            instrument=instrument,
            n_workers=args.workers,
            duration=args.duration if args.duration is not None else 32.0,
            obs_sample=args.obs_sample,
        )
    elif args.scenario == "gray":
        report = run_gray(
            seed,
            n_workers=args.workers,
            total=args.steps,
            duration=args.duration if args.duration is not None else 40.0,
            differential=not args.heartbeat_only,
            instrument=instrument,
            obs_sample=args.obs_sample,
        )
    elif args.scenario == "heal":
        report = run_partition_heal(
            seed,
            n_workers=args.workers,
            duration=args.duration,
            bounded=not args.unbounded,
            blackout=args.blackout,
            instrument=instrument,
            obs_sample=args.obs_sample,
        )
    elif args.scenario == "shard":
        report = run_shard_chaos(
            seed,
            n_workers=min(args.workers, 3),
            duration=args.duration if args.duration is not None else 90.0,
            instrument=instrument,
            obs_sample=args.obs_sample,
        )
    else:
        report = run_chaos(
            seed,
            n_workers=args.workers,
            total=args.steps,
            duration=args.duration if args.duration is not None else 120.0,
            churn=not args.no_churn,
            partitions=not args.no_partitions,
            instrument=instrument,
            obs_sample=args.obs_sample,
        )
    if getattr(args, "export", None) and holder.get("sim") is not None:
        from repro.obs.report import save_export

        save_export(holder["sim"].obs.export(), args.export)
        print(f"metrics export written to {args.export}")
    if not report["ok"] and report.get("flight"):
        from repro.obs.flight import dump_flight_records

        path = f"flight-{args.scenario}-seed{seed}.jsonl"
        n = dump_flight_records(path, report["flight"])
        print(f"flight recorder: {n} records dumped to {path}")
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro chaos",
                                     description=__doc__.split("\n")[0])
    sub = parser.add_subparsers(dest="cmd", required=True)
    p_run = sub.add_parser("run", help="one seeded chaos run")
    p_run.add_argument("--seed", type=int, default=1)
    _add_run_args(p_run)
    p_sweep = sub.add_parser("sweep", help="run a set of seeds")
    p_sweep.add_argument("--seeds", type=int, nargs="+", default=list(DEFAULT_SEEDS))
    _add_run_args(p_sweep)
    p_bench = sub.add_parser(
        "bench", help="robustness benchmarks: E15 gray goodput, E16 heal "
                      "reconvergence, or E18 catalog scale")
    p_bench.add_argument("--experiment", choices=("gray", "heal", "catalog"),
                         default="gray",
                         help="gray: E15, differential detector vs "
                              "heartbeat-only; heal: E16, bounded "
                              "anti-entropy vs the unbounded blob, plus "
                              "blackout restore; catalog: E18, sharded "
                              "federation vs full replication at 10^4-10^5 "
                              "names plus a shard split under live load "
                              "(default: gray)")
    p_bench.add_argument("--seeds", type=int, nargs="+", default=[1, 2, 3])
    p_bench.add_argument("--duration", type=float, default=None,
                         help="simulated-seconds budget per run "
                              "(default: 40 for gray, 100 for heal, "
                              "20 for catalog)")
    p_bench.add_argument("--names", type=int, nargs="+", default=None,
                         help="[catalog] preloaded catalog sizes per row "
                              "(default: 10000 100000)")
    p_bench.add_argument("--split-names", type=int, default=None,
                         help="[catalog] preload size for the "
                              "split-under-load run (default: 3000)")
    p_bench.add_argument("--clients", type=int, default=None,
                         help="[catalog] client hosts driving the "
                              "closed-loop mix (default: 8)")
    p_bench.add_argument("--json-dir", default=".",
                         help="directory for the BENCH json "
                              "(default: current directory)")
    args = parser.parse_args(argv)

    if args.cmd == "bench":
        import time as _time

        from repro.obs.report import write_bench_json

        if args.experiment == "catalog":
            from repro.bench.e18_catalog_scale import (
                catalog_scale,
                format_catalog_bench,
                split_under_load,
                summarize,
            )

            t0 = _time.monotonic()
            window = args.duration if args.duration is not None else 20.0
            kw = {}
            if args.names is not None:
                kw["name_counts"] = tuple(args.names)
            if args.clients is not None:
                kw["n_client_hosts"] = args.clients
            rows = catalog_scale(seed=args.seeds[0], window=window, **kw)
            skw = {}
            if args.split_names is not None:
                skw["n_names"] = args.split_names
            holder = {}
            split = split_under_load(
                seed=args.seeds[0], window=min(window + 10.0, 30.0),
                instrument=lambda sim: holder.setdefault("sim", sim), **skw)
            print(format_catalog_bench(rows, split))
            metrics = (holder["sim"].obs.metrics.export()
                       if holder.get("sim") is not None else None)
            path = write_bench_json(
                "catalog_scale", rows, args.json_dir,
                wall_s=round(_time.monotonic() - t0, 2), scenario="catalog",
                seed=args.seeds[0], metrics=metrics,
                extra={"summary": summarize(rows, split), "split": split},
            )
            print(f"\nbench json written: {path}")
            sharded = [r for r in rows if r["config"] == "sharded"]
            # misses are a hard zero (every preloaded name must resolve);
            # failed ops get a 0.1%-of-writes allowance — at the saturated
            # top scale a closed-loop QUORUM write can exhaust its retry
            # budget without indicting the federation.
            ok = (all(r["misses"] == 0
                      and r["failed"] <= 0.001 * (r["updates"] + r["creates"])
                      for r in sharded)
                  and split["splits"] >= 1 and split["drain_s"] is not None)
            return 0 if ok else 1

        if args.experiment == "heal":
            from repro.bench.e16_heal import (
                format_heal_bench,
                heal_reconvergence,
                summarize,
            )

            t0 = _time.monotonic()
            rows = heal_reconvergence(
                seeds=args.seeds,
                duration=args.duration if args.duration is not None else 100.0,
            )
            print(format_heal_bench(rows))
            path = write_bench_json(
                "heal_reconvergence", rows, args.json_dir,
                wall_s=round(_time.monotonic() - t0, 2), scenario="heal",
                extra={"summary": summarize(rows), "seeds": list(args.seeds)},
            )
            print(f"\nbench json written: {path}")
            s = summarize(rows)
            ok = (s["bounded_all_ok"] and s["blackout_all_ok"]
                  and s["baseline_breaches_bound"]
                  and s["blackout_resurrected"] == 0)
            return 0 if ok else 1

        from repro.bench.e15_gray import format_gray_bench, gray_goodput, summarize

        t0 = _time.monotonic()
        rows = gray_goodput(
            seeds=args.seeds,
            duration=args.duration if args.duration is not None else 40.0,
        )
        print(format_gray_bench(rows))
        path = write_bench_json(
            "gray_goodput", rows, args.json_dir,
            wall_s=round(_time.monotonic() - t0, 2), scenario="gray",
            extra={"summary": summarize(rows), "seeds": list(args.seeds)},
        )
        print(f"\nbench json written: {path}")
        s = summarize(rows)
        ok = (s["goodput_ratio"] is not None and s["goodput_ratio"] >= 2.0
              and s["false_deaths_differential"] == 0)
        return 0 if ok else 1

    if args.cmd == "run":
        report = _run_one(args.seed, args)
        if args.scenario == "bulk":
            print(format_bulk_report(report))
        elif args.scenario == "overload":
            print(format_overload_report(report))
        elif args.scenario == "gray":
            print(format_gray_report(report))
        elif args.scenario == "heal":
            print(format_heal_report(report))
        elif args.scenario == "shard":
            print(format_shard_report(report))
        else:
            print(format_report(report))
        return 0 if report["ok"] else 1
    failures = 0
    for seed in args.seeds:
        report = _run_one(seed, args)
        if args.scenario == "bulk":
            bad = [name for name, ok, _ in report["invariants"] if not ok]
            print(
                f"seed {seed:4d}: {'OK  ' if report['ok'] else 'FAIL'} "
                f"completed={report['completed']}/{report['hosts']} "
                f"crashes={report['crashes']} "
                f"retries={report['chunk_retries']} "
                f"goodput={report['aggregate_goodput'] / 1e6:.1f}MB/s "
                + (f"failed: {bad}" if bad else "")
            )
        elif args.scenario == "overload":
            bad = [name for name, ok, _ in report["criteria"] if not ok]
            print(
                f"seed {seed:4d}: {'OK  ' if report['ok'] else 'FAIL'} "
                f"goodput={report['goodput_ops_s']:.1f}/s "
                f"control_p99={report['control_p99_s'] * 1000:.0f}ms "
                f"deaths={report['deaths_declared']} "
                f"hb_failed={report['heartbeats_failed']} "
                + (f"failed: {bad}" if bad else "")
            )
        elif args.scenario == "heal":
            bad = [name for name, ok, _ in report["criteria"] if not ok]
            rc = report["reconverge_s"]
            p99 = report["control_p99"]
            print(
                f"seed {seed:4d}: {'OK  ' if report['ok'] else 'FAIL'} "
                f"reconverge={'%.2fs' % rc if rc is not None else 'never'} "
                f"max_batch={report['max_sync_batch']:.0f} "
                f"ctl_p99={'%.0fms' % (p99 * 1000) if p99 is not None else 'n/a'} "
                f"hb_fo={report['heartbeat_failovers']} "
                f"resurrected={len(report['resurrected'])} "
                + (f"failed: {bad}" if bad else "")
            )
        elif args.scenario == "shard":
            bad = [name for name, ok, _ in report["invariants"] if not ok]
            print(
                f"seed {seed:4d}: {'OK  ' if report['ok'] else 'FAIL'} "
                f"splits={report['splits']} epoch={report['epoch']} "
                f"redirects={report['redirects']} "
                f"handoffs={report['handoffs']} "
                + (f"failed: {bad}" if bad else "")
            )
        elif args.scenario == "gray":
            bad = [name for name, ok, _ in report["criteria"] if not ok]
            det = report["detection_s"]
            print(
                f"seed {seed:4d}: {'OK  ' if report['ok'] else 'FAIL'} "
                f"goodput={report['goodput_ops_s']:.1f}/s "
                f"detect={'%.2fs' % det if det is not None else 'never'} "
                f"false_deaths={report['false_lease_deaths']} "
                f"saved={report['probe_saved']} "
                + (f"failed: {bad}" if bad else "")
            )
        else:
            bad = [name for name, ok, _ in report["invariants"] if not ok]
            print(
                f"seed {seed:4d}: {'OK  ' if report['ok'] else 'FAIL'} "
                f"recoveries={len(report['recoveries'])} "
                f"fenced={report['msgs_fenced']} "
                + (f"failed: {bad}" if bad else "")
            )
        failures += 0 if report["ok"] else 1
    return 0 if failures == 0 else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
