"""``python -m repro chaos`` — run the seeded chaos harness.

Subcommands:

* ``run`` — one chaos run: build the star site, drive the seeded fault
  schedule over the checkpointing workload, print the fault timeline,
  recovery log, and invariant table. Exit status 0 iff every invariant
  holds. ``--seed N`` picks the schedule; same seed, same run.
* ``sweep`` — run several seeds back to back (default: the CI seeds)
  and print one summary line each; exit non-zero if any seed fails.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.robust.chaos import DEFAULT_SEEDS, format_report, run_chaos


def _add_run_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--workers", type=int, default=4, help="worker hosts (default 4)")
    p.add_argument("--steps", type=int, default=60,
                   help="work units per task (default 60)")
    p.add_argument("--duration", type=float, default=120.0,
                   help="simulated-seconds budget (default 120)")
    p.add_argument("--no-churn", action="store_true", help="disable host crash/churn")
    p.add_argument("--no-partitions", action="store_true",
                   help="disable segment partitions (no zombie scenarios)")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro chaos",
                                     description=__doc__.split("\n")[0])
    sub = parser.add_subparsers(dest="cmd", required=True)
    p_run = sub.add_parser("run", help="one seeded chaos run")
    p_run.add_argument("--seed", type=int, default=1)
    _add_run_args(p_run)
    p_sweep = sub.add_parser("sweep", help="run a set of seeds")
    p_sweep.add_argument("--seeds", type=int, nargs="+", default=list(DEFAULT_SEEDS))
    _add_run_args(p_sweep)
    args = parser.parse_args(argv)

    kwargs = dict(
        n_workers=args.workers,
        total=args.steps,
        duration=args.duration,
        churn=not args.no_churn,
        partitions=not args.no_partitions,
    )
    if args.cmd == "run":
        report = run_chaos(args.seed, **kwargs)
        print(format_report(report))
        return 0 if report["ok"] else 1
    failures = 0
    for seed in args.seeds:
        report = run_chaos(seed, **kwargs)
        bad = [name for name, ok, _ in report["invariants"] if not ok]
        print(
            f"seed {seed:4d}: {'OK  ' if report['ok'] else 'FAIL'} "
            f"recoveries={len(report['recoveries'])} "
            f"fenced={report['msgs_fenced']} "
            + (f"failed: {bad}" if bad else "")
        )
        failures += 0 if report["ok"] else 1
    return 0 if failures == 0 else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
