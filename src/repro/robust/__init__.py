"""Robustness primitives: unified retries, overload control, chaos.

The paper promises "long-running, reliable, fault-tolerant" applications
(§1); this package holds the machinery the reproduction uses to *earn*
that adjective rather than assert it:

* :class:`RetryPolicy` — one retry discipline (exponential backoff,
  deterministic jitter, overall deadline budget, obs counters) shared by
  every client in the system instead of per-client ad-hoc loops.
* :mod:`repro.robust.overload` — adaptive per-destination timeouts,
  circuit breakers, and two-lane bounded ingress queues, so congestion
  and slow hosts degrade throughput instead of triggering false death
  declarations and respawn storms.
* :mod:`repro.robust.chaos` — a seeded fault-injection harness that runs
  a checkpointing workload under host churn, link cuts, partitions, and
  overload, and checks end-to-end invariants after quiescence.
"""

from repro.robust.retry import RetryError, RetryPolicy

#: The one shared table of static call timeouts (virtual seconds). Every
#: client reads its default here instead of burying a literal at the call
#: site; under adaptive overload control these are the *cold-start*
#: values and the anchor for the per-destination floor
#: (``timeout_floor_factor * static``) — see ``repro.robust.overload``.
TIMEOUTS = {
    "rpc.default": 5.0,  # RpcClient.call fallback when no entry applies
    "daemon.call": 2.0,  # daemon control ops (spawn/fence/signal)
    "daemon.notify": 1.0,  # watcher death notifications (best-effort)
    "broker.refer": 5.0,  # daemon -> broker referral
    "rc.call": 1.0,  # RC lookup/update/delete/query per replica
    "rc.sync": 2.0,  # RC anti-entropy exchange
    "file.get": 2.0,  # file read per replica (closest-first failover)
    "file.put": 5.0,  # file write (bulk payload on the wire)
    "rm.request": 5.0,  # resource-manager allocation round
    "rm.migrate": 5.0,  # migration handoff
    "ctx.spawn": 2.0,  # SnipeContext spawn/migrate daemon calls
    "bulk.chunk": 2.5,  # bulk chunk fetch (> server-side SERVE_WAIT hold)
    "bulk.stat": 1.0,  # bulk peer chunk-inventory probe
}

__all__ = ["RetryError", "RetryPolicy", "TIMEOUTS"]
