"""Robustness primitives: unified retries and the chaos harness.

The paper promises "long-running, reliable, fault-tolerant" applications
(§1); this package holds the machinery the reproduction uses to *earn*
that adjective rather than assert it:

* :class:`RetryPolicy` — one retry discipline (exponential backoff,
  deterministic jitter, overall deadline budget, obs counters) shared by
  every client in the system instead of per-client ad-hoc loops.
* :mod:`repro.robust.chaos` — a seeded fault-injection harness that runs
  a checkpointing workload under host churn, link cuts and partitions,
  and checks end-to-end invariants after quiescence.
"""

from repro.robust.retry import RetryError, RetryPolicy

__all__ = ["RetryError", "RetryPolicy"]
