"""Seeded chaos harness: faults + self-healing + invariant checking.

Builds a star site (a stable service core, plus workers that are each
alone on a private segment behind a gateway), runs a checkpointing
workload across the workers, and drives a seeded schedule of host
crashes and partitions against them while the Guardians repair the
damage. After quiescence it checks the system-wide invariants that
self-healing must preserve:

* **completed-exactly-once** — every submitted task reports exactly one
  effective completion (duplicate reports are deduplicated and counted,
  and must agree on the result);
* **no-incarnation-regression** — the incarnations a receiver accepts
  per task never decrease, and every Guardian recovery strictly raised
  the incarnation;
* **catalogs-converged** — after anti-entropy settles, every RC replica
  independently reports the same terminal state for every task;
* **no-silent-loss** — every unit of work was reported (restart suffix
  re-reports are fine, gaps are not), no envelope is still parked in a
  reorder buffer, and everything the workers got an ack for was either
  delivered, deduplicated, or deliberately fenced at the receiver.

Worker segments go down *without* the worker host crashing — that is the
zombie scenario: the Guardian (correctly, per its lease evidence)
declares the worker dead and respawns it, and the fencing machinery must
then keep the surviving original from double-executing. Host crashes use
the refcounted injector one-shots, so overlapping fault windows compose.

Entry points: :func:`run_chaos` (one seed -> report dict), used by
``python -m repro chaos run --seed N`` and the parametrized pytest
suite in ``tests/robust/test_chaos.py``; and :func:`run_overload`
(``--scenario overload``), which saturates the same site with bulk
traffic instead of killing hosts and checks that the control plane —
lease heartbeats, Guardian probes — stays live and that no false
death is declared (experiment E12); and :func:`run_bulk_chaos`
(``--scenario bulk``), which kills a relay head mid-distribution and
checks the bulk plane completes everywhere, verified, exactly once
per chunk (experiment E13's crash case).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.checkpoint import checkpoint_to_files
from repro.core.environment import SnipeEnvironment
from repro.daemon.tasks import TaskSpec, TaskState
from repro.rcds import uri as uri_mod
from repro.rcds.server import RC_PORT
from repro.robust import TIMEOUTS
from repro.robust.overload import CONTROL
from repro.rpc import RpcClient, RpcError

#: Seeds the CI smoke and the pytest suite pin.
DEFAULT_SEEDS = (1, 2, 3, 4, 5)


def _instrument_sim(sim, instrument: Optional[Callable],
                    obs_sample: Optional[float]) -> None:
    """Apply per-run observability knobs before any workload process runs.

    ``obs_sample`` enables tracing at that sampling rate (None = tracer
    stays detached, today's zero-cost default); ``instrument`` is an
    arbitrary hook — the profiler and SLO-monitor CLIs attach through it.
    """
    if obs_sample is not None:
        tracer = sim.obs.tracer
        tracer.enabled = True
        tracer.sample_rate = obs_sample
    if instrument is not None:
        instrument(sim)


def _arm_flight(sim, bus) -> "object":
    """Attach a flight recorder to *sim* (frames) and *bus* (probes)."""
    from repro.obs.flight import FlightRecorder

    return FlightRecorder(sim).attach(bus)


def build_chaos_env(
    seed: int,
    n_workers: int = 4,
    rc_service_time: Optional[float] = None,
    configure: Optional[Callable] = None,
    backup_core: bool = False,
    rc_server_kw: Optional[Dict] = None,
) -> Tuple[SnipeEnvironment, List[str]]:
    """The chaos site: stable core (RC x3, RM, files, guardians) behind a
    gateway, each worker alone on its own segment so it can be isolated.

    ``rc_service_time`` makes the RC replicas single-threaded bottleneck
    servers (the overload scenario saturates them); ``configure(sim)``
    runs before any endpoint exists, so it can set
    :class:`repro.robust.overload.OverloadConfig` fields that are read at
    queue-construction time. ``backup_core`` adds a second core segment
    (every core host dual-homed), so a one-way fault on one core link has
    a healthy alternate path — the gray scenario's per-interface health
    scoring steers around the sick link instead of timing out forever.
    """
    env = SnipeEnvironment(seed=seed)
    if configure is not None:
        configure(env.sim)
    env.add_segment("core-lan")
    core_segments = ["core-lan"]
    if backup_core:
        env.add_segment("core-lan2")
        core_segments.append("core-lan2")
    for name in ("c0", "c1", "c2"):
        env.add_host(name, segments=core_segments)
    gw = env.add_host("gw", segments=core_segments, forwarding=True)
    workers = []
    for i in range(n_workers):
        seg = env.add_segment(f"s-w{i}")
        env.topology.connect(gw, seg)
        env.add_host(f"w{i}", segments=[f"s-w{i}"], arch="worker")
        workers.append(f"w{i}")
    server_kw = dict(rc_server_kw or {})
    if rc_service_time is not None:
        server_kw["service_time"] = rc_service_time
    env.add_rc_servers(["c0", "c1", "c2"], **server_kw)
    for name in ("c0", "c1", "c2", "gw", *workers):
        env.boot_daemon(name)
    env.add_rm("c0")
    env.add_file_server("c0")
    env.add_file_server("c1")
    env.add_guardian("c1")
    env.add_guardian("c2")
    return env, workers


def new_coll_state() -> Dict:
    """Fresh collector-side bookkeeping for :func:`install_chaos_programs`."""
    return {"done": {}, "dup_done": {}, "progress": {}, "incs": {}, "mismatch": []}


def install_chaos_programs(env: SnipeEnvironment, acked: Dict[str, int], coll_state: Dict):
    """Register the chaos-worker / chaos-collector programs on *env*.

    Shared by the chaos harness and the model-checking scenarios in
    :mod:`repro.check`, which run the same workload under explored
    schedules.
    """
    @env.program("chaos-worker")
    def chaos_worker(ctx, total, ckpt_every, collector_urn, step):
        def take_checkpoint():
            # Checkpointing is durability, not progress: when every file
            # server is briefly unreachable (gray quorum loss, one-way
            # cuts) the task keeps computing and retries at the next
            # boundary — dying here would turn a storage degradation
            # into the very failure checkpoints exist to survive. The
            # cost is bounded: recovery resumes from the last checkpoint
            # that *did* land, and the output-commit discipline below
            # makes the redone steps duplicates the collector dedups.
            try:
                yield checkpoint_to_files(ctx)
            except Exception:
                coll_state["ckpt_skipped"] = coll_state.get("ckpt_skipped", 0) + 1
                ctx.sim.obs.metrics.counter("ckpt.skipped").inc()

        i = ctx.checkpoint_state.get("i", 0)
        # Checkpoint immediately: from the first instant there is a
        # durable state for the Guardian to restart from.
        yield from take_checkpoint()
        while i < total:
            yield ctx.compute(step)
            i += 1
            ctx.checkpoint_state["i"] = i
            yield ctx.send(collector_urn,
                           {"urn": ctx.urn, "i": i, "inc": ctx.incarnation},
                           tag="progress")
            acked[ctx.urn] = acked.get(ctx.urn, 0) + 1
            # Output-commit discipline: checkpoint only after the report
            # for this step was acknowledged. A checkpoint that ran ahead
            # of unacknowledged output would let a crash lose the report
            # for work the successor (resuming past it) never redoes.
            if i % ckpt_every == 0:
                yield from take_checkpoint()
        # App-level fence check before claiming completion: a superseded
        # incarnation leaves the completion report to its successor.
        try:
            fence = yield ctx.rc.get(ctx.urn, "fenced-below")
        except Exception:
            fence = None
        if fence is not None and ctx.incarnation < fence:
            return i
        yield ctx.send(collector_urn,
                       {"urn": ctx.urn, "result": i, "inc": ctx.incarnation},
                       tag="done")
        acked[ctx.urn] = acked.get(ctx.urn, 0) + 1
        return i

    @env.program("chaos-collector")
    def chaos_collector(ctx):
        while True:
            msg = yield ctx.recv()
            p = msg.payload
            urn = p["urn"]
            coll_state["incs"].setdefault(urn, []).append(msg.src_inc)
            if msg.tag == "done":
                if urn in coll_state["done"]:
                    coll_state["dup_done"][urn] = coll_state["dup_done"].get(urn, 0) + 1
                    if coll_state["done"][urn] != p["result"]:
                        coll_state["mismatch"].append(urn)
                else:
                    coll_state["done"][urn] = p["result"]
            else:
                coll_state["progress"].setdefault(urn, set()).add(p["i"])


def _schedule_faults(
    env: SnipeEnvironment,
    workers: List[str],
    fault_stop: float,
    churn: bool,
    partitions: bool,
) -> List[str]:
    """Seeded fault plan. All faults start after t=3 (first checkpoints
    are durable by then) and end by *fault_stop* so the system can
    quiesce; every window has a recovery."""
    rng = env.sim.rng.stream("chaos.schedule")
    events: List[str] = []
    if churn:
        # Scheduled crash/repair windows (refcount-safe when overlapping).
        n_crashes = max(2, len(workers))
        for _ in range(n_crashes):
            w = workers[rng.randrange(len(workers))]
            t = rng.uniform(3.0, fault_stop * 0.8)
            d = rng.uniform(1.5, 6.0)
            env.failures.host_down_at(t, w, duration=d)
            events.append(f"t={t:5.1f}s crash {w} for {d:.1f}s")
        # Plus Poisson churn on half the fleet for good measure.
        victims = workers[::2]

        def start_churn():
            yield env.sim.timeout(3.0)
            env.failures.churn_hosts(victims, mtbf=15.0, mttr=2.0,
                                     stop_at=fault_stop)

        env.sim.process(start_churn(), name="chaos:churn-start")
        events.append(f"t=  3.0s churn mtbf=15s mttr=2s on {victims} until t={fault_stop:.0f}s")
    if partitions:
        for _ in range(max(1, len(workers) // 2)):
            w = workers[rng.randrange(len(workers))]
            t = rng.uniform(4.0, fault_stop * 0.8)
            d = rng.uniform(5.0, 10.0)
            env.failures.segment_down_at(t, f"s-{w}", duration=d)
            events.append(f"t={t:5.1f}s partition {w} for {d:.1f}s (host stays up: zombie)")
    events.sort()
    return events


def _check_catalogs(env: SnipeEnvironment, urns: List[str]):
    """Direct per-replica reads (no failover): do the replicas agree?"""
    client = RpcClient(env.topology.hosts["gw"])
    disagreements = []
    for urn in urns:
        states = {}
        for replica, _port in env.rc_replicas:
            try:
                assertions = yield client.call(replica, RC_PORT, "rc.lookup", uri=urn)
            except Exception:
                states[replica] = "<unreachable>"
                continue
            info = assertions.get("state")
            states[replica] = info["value"] if info else None
        if len(set(states.values())) != 1 or set(states.values()) != {TaskState.EXITED}:
            disagreements.append((urn, states))
    client.close()
    return disagreements


def run_chaos(
    seed: int,
    n_workers: int = 4,
    total: int = 60,
    ckpt_every: int = 4,
    duration: float = 120.0,
    churn: bool = True,
    partitions: bool = True,
    step: float = 0.3,
    instrument: Optional[Callable] = None,
    obs_sample: Optional[float] = None,
    flight: bool = True,
) -> Dict:
    """One seeded chaos run; returns a report dict (``report["ok"]``)."""
    from repro.check.oracles import ProbeBus

    env, workers = build_chaos_env(seed, n_workers)
    _instrument_sim(env.sim, instrument, obs_sample)
    bus = ProbeBus()
    env.sim.probes = bus
    recorder = _arm_flight(env.sim, bus) if flight else None
    acked: Dict[str, int] = {}
    coll_state = new_coll_state()
    install_chaos_programs(env, acked, coll_state)
    env.settle(2.0)

    coll = env.spawn(TaskSpec(program="chaos-collector", name="chaos-coll"), on="c0")
    tasks = []
    for i, w in enumerate(workers):
        spec = TaskSpec(
            program="chaos-worker",
            arch="worker",  # keep (re)placement on the worker fleet
            name=f"chaos-w{i}",
            params={"total": total, "ckpt_every": ckpt_every,
                    "collector_urn": coll.urn, "step": step},
        )
        tasks.append(env.spawn(spec, on=w))
    urns = [t.urn for t in tasks]

    fault_stop = min(duration * 0.45, 45.0)
    events = _schedule_faults(env, workers, fault_stop, churn, partitions)

    # Run to quiescence: everyone done, or the duration budget spent.
    deadline = env.sim.now + duration
    while env.sim.now < deadline:
        env.run(until=min(env.sim.now + 5.0, deadline))
        if len(coll_state["done"]) == len(urns) and env.sim.now > fault_stop + 12.0:
            break
    env.settle(3.0)  # let anti-entropy converge the catalogs

    recoveries = [r for g in env.guardians.values() for r in g.recoveries]
    unrecoverable: Dict[str, str] = {}
    for g in env.guardians.values():
        unrecoverable.update(g.unrecoverable)
    coll_ctx = env.daemons["c0"].contexts[coll.urn]

    invariants: List[Tuple[str, bool, str]] = []
    # 1. Every task completed exactly once.
    completed = [u for u in urns if coll_state["done"].get(u) == total]
    dups = sum(coll_state["dup_done"].values())
    invariants.append((
        "completed-exactly-once",
        len(completed) == len(urns) and not coll_state["mismatch"],
        f"{len(completed)}/{len(urns)} completed once; "
        f"{dups} duplicate reports deduplicated; "
        f"{len(coll_state['mismatch'])} result mismatches",
    ))
    # 2. Incarnations never regress.
    regressed = [
        u for u, incs in coll_state["incs"].items()
        if any(b < a for a, b in zip(incs, incs[1:]))
    ]
    bad_recs = [r for r in recoveries if (r["new_inc"] or 0) <= (r["old_inc"] or 0)]
    invariants.append((
        "no-incarnation-regression",
        not regressed and not bad_recs,
        f"{len(recoveries)} recoveries, all raised incarnation; "
        f"{len(regressed)} receivers saw a regression",
    ))
    # 3. Catalog replicas agree on terminal state.
    disagreements = env.run(until=env.sim.process(_check_catalogs(env, urns)))
    invariants.append((
        "catalogs-converged",
        not disagreements,
        "all replicas report state=exited for every task"
        if not disagreements else f"disagreeing records: {disagreements}",
    ))
    # 4. Nothing silently lost.
    missing = {
        u: sorted(set(range(1, total + 1)) - coll_state["progress"].get(u, set()))
        for u in urns
        if set(range(1, total + 1)) - coll_state["progress"].get(u, set())
    }
    held = sum(len(v) for v in coll_ctx._ooo.values())
    recv_events = coll_ctx.msgs_received + coll_ctx.msgs_deduped + coll_ctx.msgs_fenced
    acked_total = sum(acked.values())
    invariants.append((
        "no-silent-loss",
        not missing and held == 0 and recv_events >= acked_total,
        f"{acked_total} acked sends vs {coll_ctx.msgs_received} delivered + "
        f"{coll_ctx.msgs_deduped} deduped + {coll_ctx.msgs_fenced} fenced; "
        f"{held} parked out-of-order; missing work: {missing or 'none'}",
    ))

    latencies = [r["recovered_at"] - r["detected_at"] for r in recoveries]
    ok = all(ok for _, ok, _ in invariants)
    flight_records = None
    if recorder is not None and not ok:
        for name, inv_ok, detail in invariants:
            if not inv_ok:
                recorder.note_violation(f"invariant:{name}", env.sim.now, detail)
        flight_records = recorder.snapshot()
    return {
        "seed": seed,
        "workers": n_workers,
        "total": total,
        "flight": flight_records,
        "events": events,
        "fault_log": list(env.failures.log),
        "recoveries": recoveries,
        "unrecoverable": unrecoverable,
        "msgs_fenced": coll_ctx.msgs_fenced,
        "invariants": invariants,
        "ok": ok,
        "recovery_latency": {
            "count": len(latencies),
            "mean": sum(latencies) / len(latencies) if latencies else 0.0,
            "max": max(latencies) if latencies else 0.0,
        },
        "finished_at": env.sim.now,
    }


def format_report(report: Dict) -> str:
    """Human-readable chaos report for the CLI."""
    lines = [
        f"chaos run: seed={report['seed']} workers={report['workers']} "
        f"x {report['total']} steps",
        "",
        "fault schedule:",
    ]
    lines += [f"  {e}" for e in report["events"]] or ["  (none)"]
    lines.append("")
    lines.append(f"recoveries: {len(report['recoveries'])}")
    for r in report["recoveries"]:
        lines.append(
            f"  {r['urn']}: {r['from']} -> {r['to']} "
            f"inc {r['old_inc']}->{r['new_inc']} "
            f"(detected t={r['detected_at']:.1f}s, recovered t={r['recovered_at']:.1f}s)"
        )
    if report["unrecoverable"]:
        lines.append(f"unrecoverable (no checkpoint): {report['unrecoverable']}")
    rl = report["recovery_latency"]
    if rl["count"]:
        lines.append(f"recovery latency: mean {rl['mean']:.2f}s, max {rl['max']:.2f}s")
    lines.append(f"fenced messages dropped at collector: {report['msgs_fenced']}")
    lines.append("")
    lines.append("invariants:")
    for name, ok, detail in report["invariants"]:
        lines.append(f"  [{'PASS' if ok else 'FAIL'}] {name}: {detail}")
    lines.append("")
    lines.append(f"RESULT: {'OK' if report['ok'] else 'FAILED'} "
                 f"(simulated {report['finished_at']:.1f}s)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Overload scenario (experiment E12)
# ---------------------------------------------------------------------------

def install_overload_worker(env: SnipeEnvironment, wstats: Dict):
    """Register the overload-hardened worker program on *env*.

    The chaos-worker, hardened for overload: progress reports and
    checkpoints are best-effort, because bulk-plane failures are
    *expected* under saturation and a program crash would read as a
    (true) death, drowning the false-death signal the scenario measures.
    """

    @env.program("overload-worker")
    def overload_worker(ctx, total, ckpt_every, collector_urn, step):
        i = 0
        while i < total:
            yield ctx.compute(step)
            i += 1
            wstats["steps"] += 1
            try:
                yield ctx.send(collector_urn,
                               {"urn": ctx.urn, "i": i, "inc": ctx.incarnation},
                               tag="progress")
            except Exception:
                wstats["send_failures"] += 1
            if i % ckpt_every == 0:
                try:
                    yield checkpoint_to_files(ctx)
                except Exception:
                    wstats["ckpt_failures"] += 1
        return i


def start_load_generators(
    env: SnipeEnvironment,
    workers: List[str],
    offered_rate: float,
    t_load0: float,
    t_load1: float,
    max_outstanding: int = 48,
) -> Dict:
    """Open-loop Poisson ``rc.lookup`` generators on the worker hosts.

    Offers *offered_rate* lookups/s site-wide between ``t_load0`` and
    ``t_load1`` (outstanding calls capped per host, so the sim stays
    bounded). Returns the shared load-counters dict.
    """
    replicas = list(env.rc_replicas)
    load = {"offered": 0, "issued": 0, "ok": 0, "failed": 0, "ok_in_window": 0}

    def _load_gen(host_name: str):
        client = RpcClient(env.topology.hosts[host_name])
        rng = env.sim.rng.stream(f"overload.load.{host_name}")
        state = {"outstanding": 0, "rr": 0}

        def one_call(rhost: str, rport: int):
            try:
                yield client.call(rhost, rport, "rc.lookup",
                                  timeout=TIMEOUTS["rc.call"],
                                  uri=f"snipe://host/{rhost}")
                load["ok"] += 1
                if t_load0 <= env.sim.now <= t_load1:
                    load["ok_in_window"] += 1
            except RpcError:
                load["failed"] += 1
            finally:
                state["outstanding"] -= 1

        def gen():
            yield env.sim.timeout(max(0.0, t_load0 - env.sim.now))
            rate = offered_rate / len(workers)
            while env.sim.now < t_load1:
                yield env.sim.timeout(rng.expovariate(rate))
                load["offered"] += 1
                if state["outstanding"] >= max_outstanding:
                    load["failed"] += 1  # client-side shed: site hopeless
                    continue
                state["outstanding"] += 1
                load["issued"] += 1
                rhost, rport = replicas[state["rr"] % len(replicas)]
                state["rr"] += 1
                env.sim.process(one_call(rhost, rport),
                                name=f"ovl-call:{host_name}")

        env.sim.process(gen(), name=f"ovl-load:{host_name}")

    for w in workers:
        _load_gen(w)
    return load


def run_overload(
    seed: int,
    saturation: float = 5.0,
    adaptive: bool = True,
    n_workers: int = 4,
    duration: float = 32.0,
    service_time: float = 0.1,
    congest_factor: float = 3.0,
    slow_factor: float = 4.0,
    control_p99_bound: float = 0.5,
    instrument: Optional[Callable] = None,
    obs_sample: Optional[float] = None,
    flight: bool = True,
) -> Dict:
    """One seeded overload run; returns a report dict (``report["ok"]``).

    The chaos site is rebuilt with the RC replicas as single-threaded
    bottleneck servers (``service_time`` per request, so the site's bulk
    capacity is ``n_replicas / service_time`` lookups per second), then:

    * long-running checkpointing workers keep leases and progress
      reports flowing — the control plane that must survive;
    * open-loop Poisson generators on the worker hosts offer
      ``saturation`` times the site's capacity in bulk ``rc.lookup``
      calls (capped outstanding per host, so the sim stays bounded);
    * mid-run, the core LAN is congested and half the workers are
      CPU-starved — overload *plus* degradation, the regime where fixed
      timeouts misfire.

    No host ever crashes, so **any** Guardian death declaration is a
    false positive. ``adaptive=False`` is the static baseline: fixed
    timeouts, no circuit breakers, no priority lanes (the bounded queues
    themselves stay — they are the environment, not the treatment).
    """

    def configure(sim):
        cfg = sim.overload
        cfg.adaptive = adaptive
        cfg.breakers = adaptive
        cfg.lanes = adaptive
        # Small enough that a full bulk queue (capacity x service_time of
        # backlog) far exceeds the lease TTL: without lanes, heartbeats
        # queue behind that backlog or get shed with it.
        cfg.server_bulk_capacity = 128

    from repro.check.oracles import ProbeBus

    env, workers = build_chaos_env(
        seed, n_workers, rc_service_time=service_time, configure=configure
    )
    _instrument_sim(env.sim, instrument, obs_sample)
    bus = ProbeBus()
    env.sim.probes = bus
    recorder = _arm_flight(env.sim, bus) if flight else None
    acked: Dict[str, int] = {}
    coll_state = new_coll_state()
    install_chaos_programs(env, acked, coll_state)
    wstats = {"steps": 0, "send_failures": 0, "ckpt_failures": 0}
    install_overload_worker(env, wstats)

    env.settle(2.0)

    coll = env.spawn(TaskSpec(program="chaos-collector", name="ovl-coll"), on="c0")
    for i, w in enumerate(workers):
        # Enough steps that every worker is still mid-run (lease live,
        # reports flowing) for the whole overload window.
        spec = TaskSpec(
            program="overload-worker",
            arch="worker",
            name=f"ovl-w{i}",
            params={"total": 400, "ckpt_every": 8,
                    "collector_urn": coll.urn, "step": 0.25},
        )
        env.spawn(spec, on=w)

    # -- bulk load: open-loop Poisson rc.lookup generators -------------------
    capacity = len(env.rc_replicas) / service_time
    offered_rate = saturation * capacity
    t_load0, t_load1 = 4.0, duration - 8.0
    load = start_load_generators(env, workers, offered_rate, t_load0, t_load1)

    # -- degradation window inside the load window ---------------------------
    env.failures.congest_segment_at(8.0, "core-lan", congest_factor, duration=12.0)
    for w in workers[: max(1, len(workers) // 2)]:
        env.failures.slow_host_at(10.0, w, slow_factor, duration=8.0)

    env.run(until=duration)
    env.settle(4.0)  # drain queues; late false deaths would show up here

    metrics = env.sim.obs.metrics
    snap = metrics.snapshot()
    hist = metrics.histogram("overload.control_latency")
    control_p99 = hist.percentile(99)
    deaths = sum(g.deaths_declared for g in env.guardians.values())
    recoveries = sum(len(g.recoveries) for g in env.guardians.values())
    hb_ok = sum(d.heartbeats_ok for d in env.daemons.values())
    hb_failed = sum(d.heartbeats_failed for d in env.daemons.values())
    sheds = int(metrics.counter("rpc.requests_shed").value)
    rx_drops = int(sum(v for k, v in snap.items()
                       if k.startswith("transport.rx_drops")))
    breaker_opens = int(sum(v for k, v in snap.items()
                            if k.startswith("robust.breaker_opened")))
    window = t_load1 - t_load0
    goodput = load["ok_in_window"] / window if window > 0 else 0.0

    criteria: List[Tuple[str, bool, str]] = [
        ("no-false-deaths",
         deaths == 0 and recoveries == 0,
         f"{deaths} deaths declared, {recoveries} recoveries "
         f"(every host stayed up: any death is false)"),
        ("no-lost-heartbeats",
         hb_failed == 0,
         f"{hb_ok} lease heartbeats delivered, {hb_failed} failed"),
        ("control-p99-bounded",
         hist.n > 0 and control_p99 <= control_p99_bound,
         f"control-plane p99 {control_p99 * 1000:.1f}ms over {hist.n} calls "
         f"(bound {control_p99_bound * 1000:.0f}ms)"),
    ]
    ok = all(c_ok for _, c_ok, _ in criteria)
    flight_records = None
    if recorder is not None and not ok:
        for name, c_ok, detail in criteria:
            if not c_ok:
                recorder.note_violation(f"criterion:{name}", env.sim.now, detail)
        flight_records = recorder.snapshot()
    return {
        "seed": seed,
        "saturation": saturation,
        "adaptive": adaptive,
        "flight": flight_records,
        "workers": n_workers,
        "service_time": service_time,
        "capacity_ops_s": capacity,
        "offered_rate_ops_s": offered_rate,
        "load": dict(load),
        "goodput_ops_s": goodput,
        "control_p99_s": control_p99,
        "control_calls": hist.n,
        "deaths_declared": deaths,
        "recoveries": recoveries,
        "heartbeats_ok": hb_ok,
        "heartbeats_failed": hb_failed,
        "requests_shed": sheds,
        "rx_drops": rx_drops,
        "breaker_opens": breaker_opens,
        "worker_stats": dict(wstats),
        "criteria": criteria,
        "ok": ok,
        "finished_at": env.sim.now,
    }


def run_bulk_chaos(
    seed: int,
    racks: int = 3,
    per_rack: int = 3,
    object_kb: int = 2048,
    chunk_size: int = 32768,
    duration: float = 60.0,
    instrument: Optional[Callable] = None,
    obs_sample: Optional[float] = None,
    flight: bool = True,
) -> Dict:
    """One seeded bulk-distribution chaos run; returns a report dict.

    Builds the rack site, starts a relay-tree distribution of a
    ``object_kb`` object to every member host, and kills one rack's
    relay head (plus one leaf) while the object is in flight. The
    durable chunk stores and swarm failover must absorb both:

    * **all-hosts-complete** — every destination holds the full object
      by the deadline, crashes notwithstanding;
    * **digests-verified** — every completed host verified each chunk
      digest and the whole-object hash against the signed chunk map;
    * **exactly-once-per-chunk** — no host committed the same chunk
      twice (modulo explicit corruption evictions, of which a clean run
      has none);
    * **failover-exercised** — the kills actually landed mid-transfer
      (at least one destination's fetch was interrupted and resumed),
      so the run proves recovery rather than a quiet fair-weather pass.
    """
    from repro.bulk.testbed import build_bulk_site, make_payload
    from repro.check.oracles import ProbeBus

    env, root, dests = build_bulk_site(seed=seed, racks=racks, per_rack=per_rack)
    sim = env.sim
    _instrument_sim(sim, instrument, obs_sample)
    bus = ProbeBus()
    sim.probes = bus
    recorder = _arm_flight(sim, bus) if flight else None
    commits: Dict[Tuple[str, int], int] = {}
    evicts: Dict[Tuple[str, int], int] = {}
    commits_by_host: Dict[str, int] = {}

    def counter(kind: str, fields: Dict) -> None:
        if kind == "bulk.chunk":
            key = (fields["host"], fields["seq"])
            commits[key] = commits.get(key, 0) + 1
            commits_by_host[fields["host"]] = (
                commits_by_host.get(fields["host"], 0) + 1
            )
        elif kind == "bulk.evict":
            key = (fields["host"], fields["seq"])
            evicts[key] = evicts.get(key, 0) + 1

    bus.subscribe(counter)

    # Seeded kills, triggered by *progress* rather than wall time: a
    # pipelined tree finishes everywhere almost simultaneously, so a
    # timer race would often fire after the victim is already done. The
    # assassin watches the commit stream and crashes each victim the
    # moment it has committed its target fraction of the object —
    # guaranteed mid-transfer, every seed.
    rng = sim.rng.stream("bulk-chaos.schedule")
    events: List[str] = []
    heads = [f"m{r}-0" for r in range(racks)]
    head = heads[rng.randrange(len(heads))]
    leaves = [m for m in dests if m not in heads]
    leaf = leaves[rng.randrange(len(leaves))]
    nchunks = (object_kb * 1024 + chunk_size - 1) // chunk_size
    outage = {
        head: rng.uniform(0.5, 1.5),
        leaf: rng.uniform(0.3, 1.0),
    }
    kill_at = {head: max(1, nchunks // 4), leaf: max(2, nchunks // 2)}
    killed: Dict[str, float] = {}
    events.append(f"kill relay head {head} at {kill_at[head]}/{nchunks} "
                  f"chunks for {outage[head]:.1f}s")
    events.append(f"kill leaf {leaf} at {kill_at[leaf]}/{nchunks} "
                  f"chunks for {outage[leaf]:.1f}s")

    def assassin(kind: str, fields: Dict) -> None:
        if kind != "bulk.chunk":
            return
        h = fields["host"]
        target = kill_at.get(h)
        if target is None or h in killed:
            return
        if commits_by_host.get(h, 0) >= target:
            killed[h] = sim.now
            env.failures.host_down_at(sim.now, h, duration=outage[h])

    bus.subscribe(assassin)

    payload = make_payload(object_kb * 1024, chunk_size)
    dist = env.bulk_distributor(root, fanout=2)
    proc = dist.distribute("chaos-obj", payload, dests,
                           chunk_size=chunk_size, strategy="tree",
                           deadline=duration)
    report = env.run(until=proc)
    env.settle(1.0)

    crashes = sum(r.get("crashes", 0) for r in report["per_dest"].values())
    dups = sorted(
        f"{host}#{seq}"
        for (host, seq), n in commits.items()
        if n > 1 + evicts.get((host, seq), 0)
    )
    invariants: List[Tuple[str, bool, str]] = [
        ("all-hosts-complete",
         report["completed"] == len(dests),
         f"{report['completed']}/{len(dests)} hosts hold the object; "
         f"failed: {report['failed'] or 'none'}"),
        ("digests-verified",
         report["all_verified"],
         "every chunk digest and whole-object hash checked out"
         if report["all_verified"] else "a completed host skipped verification"),
        ("exactly-once-per-chunk",
         not dups,
         f"{sum(commits.values())} chunk commits across the site, no "
         f"duplicates" if not dups else f"duplicate commits: {dups}"),
        ("failover-exercised",
         crashes >= 1 and len(killed) >= 2,
         f"{len(killed)} hosts killed mid-object "
         f"({', '.join(f'{h} at t={t:.2f}s' for h, t in sorted(killed.items()))}); "
         f"{crashes} fetches interrupted and resumed"),
    ]
    ok = all(inv_ok for _, inv_ok, _ in invariants)
    flight_records = None
    if recorder is not None and not ok:
        for name, inv_ok, detail in invariants:
            if not inv_ok:
                recorder.note_violation(f"invariant:{name}", sim.now, detail)
        flight_records = recorder.snapshot()
    return {
        "seed": seed,
        "racks": racks,
        "per_rack": per_rack,
        "flight": flight_records,
        "bytes": report["bytes"],
        "nchunks": report["nchunks"],
        "events": events,
        "killed": {h: round(t, 3) for h, t in killed.items()},
        "fault_log": list(env.failures.log),
        "completed": report["completed"],
        "hosts": len(dests),
        "elapsed": report["elapsed"],
        "aggregate_goodput": report["aggregate_goodput"],
        "chunk_commits": sum(commits.values()),
        "chunk_retries": report["chunk_retries"],
        "crashes": crashes,
        "invariants": invariants,
        "ok": ok,
        "finished_at": sim.now,
    }


def format_bulk_report(report: Dict) -> str:
    """Human-readable bulk-chaos report for the CLI."""
    lines = [
        f"bulk chaos run: seed={report['seed']} "
        f"{report['racks']} racks x {report['per_rack']} hosts, "
        f"{report['bytes'] / 1024:.0f} KiB in {report['nchunks']} chunks",
        "",
        "fault schedule:",
    ]
    lines += [f"  {e}" for e in report["events"]] or ["  (none)"]
    lines.append("")
    lines.append(
        f"distribution : {report['completed']}/{report['hosts']} hosts in "
        f"{report['elapsed']:.2f}s "
        f"({report['aggregate_goodput'] / 1e6:.2f} MB/s aggregate)"
    )
    lines.append(
        f"chunk traffic: {report['chunk_commits']} commits, "
        f"{report['chunk_retries']} retries, "
        f"{report['crashes']} fetches crashed mid-object"
    )
    lines.append("")
    lines.append("invariants:")
    for name, ok, detail in report["invariants"]:
        lines.append(f"  [{'PASS' if ok else 'FAIL'}] {name}: {detail}")
    lines.append("")
    lines.append(f"RESULT: {'OK' if report['ok'] else 'FAILED'} "
                 f"(simulated {report['finished_at']:.1f}s)")
    return "\n".join(lines)


def format_overload_report(report: Dict) -> str:
    """Human-readable overload report for the CLI."""
    mode = "adaptive" if report["adaptive"] else "static baseline"
    lines = [
        f"overload run: seed={report['seed']} "
        f"saturation={report['saturation']:.1f}x ({mode})",
        "",
        f"site capacity : {report['capacity_ops_s']:.0f} lookups/s "
        f"(3 RC replicas, {report['service_time'] * 1000:.0f}ms service time)",
        f"offered load  : {report['offered_rate_ops_s']:.0f} lookups/s "
        f"({report['load']['offered']} offered, {report['load']['issued']} issued)",
        f"bulk goodput  : {report['goodput_ops_s']:.1f} lookups/s "
        f"({report['load']['ok']} ok / {report['load']['failed']} failed)",
        f"shedding      : {report['requests_shed']} server-shed, "
        f"{report['rx_drops']} transport backpressure drops, "
        f"{report['breaker_opens']} breaker opens",
        f"control plane : p99 {report['control_p99_s'] * 1000:.1f}ms "
        f"over {report['control_calls']} calls; "
        f"heartbeats {report['heartbeats_ok']} ok / "
        f"{report['heartbeats_failed']} failed",
        f"guardian      : {report['deaths_declared']} deaths declared, "
        f"{report['recoveries']} recoveries (expected: 0 — no host crashed)",
        f"workload      : {report['worker_stats']['steps']} steps, "
        f"{report['worker_stats']['send_failures']} report failures, "
        f"{report['worker_stats']['ckpt_failures']} checkpoint failures "
        f"(best-effort bulk)",
        "",
        "criteria:",
    ]
    for name, ok, detail in report["criteria"]:
        lines.append(f"  [{'PASS' if ok else 'FAIL'}] {name}: {detail}")
    lines.append("")
    lines.append(f"RESULT: {'OK' if report['ok'] else 'FAILED'} "
                 f"(simulated {report['finished_at']:.1f}s)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Gray-failure scenario (experiment E15)
# ---------------------------------------------------------------------------

def start_gray_sessions(
    env: SnipeEnvironment,
    workers: List[str],
    t0: float,
    t1: float,
    ops_per_session: int = 8,
    think: float = 0.05,
) -> Dict:
    """Closed-loop, short-lived catalog sessions on the worker hosts.

    Each session is a *fresh* :class:`RCClient` (fresh circuit breakers,
    fresh RTT estimates — the state a short-lived task starts with) doing
    ``ops_per_session`` sequential lookups, then closing. Closed-loop on
    purpose: a zombie replica's timeouts stall the session, so goodput
    reflects detection quality instead of hiding it the way open-loop
    fire-and-forget would. What persists across sessions is only the
    *host's* health board — exactly the differential-detector state the
    gray scenario measures.
    """
    from repro.rcds.client import RCClient

    stats = {"sessions": 0, "ops_ok": 0, "ops_failed": 0,
             "window": (t0, t1), "in_window": {}}

    def _driver(host_name: str):
        host = env.topology.hosts[host_name]
        rng = env.sim.rng.stream(f"gray.load.{host_name}")

        def session():
            client = RCClient(host, list(env.rc_replicas), secret=env.secret)
            try:
                for _ in range(ops_per_session):
                    target = env.rc_replicas[rng.randrange(len(env.rc_replicas))][0]
                    t_op = env.sim.now
                    try:
                        yield client.lookup(f"snipe://host/{target}")
                        stats["ops_ok"] += 1
                        key = int(env.sim.now)
                        stats["in_window"][key] = stats["in_window"].get(key, 0) + 1
                    except Exception:
                        stats["ops_failed"] += 1
                    del t_op
                    yield env.sim.timeout(think)
            finally:
                client.close()

        def gen():
            yield env.sim.timeout(max(0.0, t0 - env.sim.now))
            while env.sim.now < t1:
                stats["sessions"] += 1
                yield env.sim.process(session(), name=f"gray-sess:{host_name}")
                yield env.sim.timeout(think)

        env.sim.process(gen(), name=f"gray-load:{host_name}")

    for w in workers:
        _driver(w)
    return stats


def run_gray(
    seed: int,
    n_workers: int = 4,
    total: int = 60,
    step: float = 0.2,
    duration: float = 40.0,
    zombie: str = "c2",
    zombie_at: float = 8.0,
    zombie_for: float = 22.0,
    zombie_factor: float = 100.0,
    rc_service_time: float = 0.02,
    differential: bool = True,
    instrument: Optional[Callable] = None,
    obs_sample: Optional[float] = None,
    flight: bool = True,
) -> Dict:
    """One seeded gray-failure run; returns a report dict (``report["ok"]``).

    The chaos site gets a second core segment (dual-homed core) and four
    gray faults, none of which crashes a host or bumps the topology
    version — every one is invisible to fail-stop detection:

    * a **zombie RC replica**: *zombie*'s CPU is divided by
      ``zombie_factor``, so its single-threaded RC server (service time
      ``rc_service_time``) slows past every caller's timeout while its
      daemon (a threaded server) keeps heartbeating — alive to the lease
      detector, dead to actual work;
    * **clock skew** on the last worker: its lease stamps land ~30s in
      the past, permanently "lapsed" — only the differential
      probe-before-death keeps the Guardian from a false kill;
    * a **bit-flip window** on the first worker's segment — digests must
      drop the corruption and srudp must retransmit around it;
    * a **one-way core link failure** (frames c1→c0 on the primary core
      segment eaten) — per-interface health steers c1's traffic onto the
      backup segment.

    Meanwhile checkpointing chaos-workers run to completion and
    closed-loop catalog sessions (:func:`start_gray_sessions`) measure
    goodput. ``differential=False`` is the heartbeat-only baseline of
    experiment E15: health boards inert, Guardian trusts lapsed leases.
    """
    from repro.check.oracles import ProbeBus
    from repro.robust.health import HealthBoard

    saved = HealthBoard.differential_enabled
    HealthBoard.differential_enabled = differential
    try:
        return _run_gray(
            seed, n_workers, total, step, duration, zombie, zombie_at,
            zombie_for, zombie_factor, rc_service_time, differential,
            instrument, obs_sample, flight, ProbeBus,
        )
    finally:
        HealthBoard.differential_enabled = saved


def _run_gray(seed, n_workers, total, step, duration, zombie, zombie_at,
              zombie_for, zombie_factor, rc_service_time, differential,
              instrument, obs_sample, flight, ProbeBus):
    env, workers = build_chaos_env(
        seed, n_workers, rc_service_time=rc_service_time, backup_core=True
    )
    _instrument_sim(env.sim, instrument, obs_sample)
    bus = ProbeBus()
    env.sim.probes = bus
    recorder = _arm_flight(env.sim, bus) if flight else None

    gray_probes = {"corrupt_deliver": 0, "deaths": [], "probe_saved": 0}

    def watch(kind, f):
        if kind == "srudp.corrupt_deliver":
            gray_probes["corrupt_deliver"] += 1
        elif kind == "guardian.death":
            gray_probes["deaths"].append(
                (round(env.sim.now, 2), f.get("host"), f.get("reason")))

    bus.subscribe(watch)

    acked: Dict[str, int] = {}
    coll_state = new_coll_state()
    install_chaos_programs(env, acked, coll_state)
    env.settle(2.0)

    coll = env.spawn(TaskSpec(program="chaos-collector", name="gray-coll"), on="c0")
    urns = []
    for i, w in enumerate(workers):
        spec = TaskSpec(
            program="chaos-worker", arch="worker", name=f"gray-w{i}",
            params={"total": total, "ckpt_every": 4,
                    "collector_urn": coll.urn, "step": step},
        )
        urns.append(env.spawn(spec, on=w).urn)

    load = start_gray_sessions(env, workers, 4.0, duration - 2.0)

    # -- the gray fault schedule --------------------------------------------
    env.failures.slow_host_at(zombie_at, zombie, zombie_factor,
                              duration=zombie_for)
    skewed = workers[-1]
    env.failures.skew_clock_at(6.0, skewed, offset=-30.0, duration=duration - 10.0)
    env.failures.impair_link_at(10.0, f"s-{workers[0]}", corrupt=0.15,
                                symmetric=True, duration=8.0)
    env.failures.impair_link_at(12.0, "core-lan", src="c1", dst="c0",
                                loss=1.0, duration=6.0)

    env.run(until=duration)
    env.settle(4.0)

    # -- measurements --------------------------------------------------------
    z_end = zombie_at + zombie_for
    in_zombie = sum(n for t, n in load["in_window"].items()
                    if zombie_at <= t < z_end)
    goodput = in_zombie / zombie_for
    detections = [
        h.health.first_quarantine_of(zombie)
        for h in env.topology.hosts.values()
        if h.health.first_quarantine_of(zombie) is not None
    ]
    detection_s = (min(detections) - zombie_at) if detections else None
    deaths = sum(g.deaths_declared for g in env.guardians.values())
    probe_saved = sum(g.false_deaths_averted for g in env.guardians.values())
    ckpt_rejected = sum(g.ckpt_rejected for g in env.guardians.values())
    false_deaths = [d for d in gray_probes["deaths"] if d[2] == "host-lease"]
    metrics = env.sim.obs.metrics
    snap = metrics.snapshot()
    rx_corrupt = int(sum(v for k, v in snap.items()
                         if k.startswith("transport.rx_corrupt")))
    completed = [u for u in urns if coll_state["done"].get(u) == total]

    criteria: List[Tuple[str, bool, str]] = [
        ("zombie-quarantined",
         (detection_s is not None) if differential else True,
         (f"{zombie} quarantined {detection_s:.2f}s after slowdown "
          f"by {len(detections)} host(s)") if detection_s is not None
         else f"{zombie} never quarantined"
              + ("" if differential else " (baseline: detector off)")),
        ("no-false-deaths",
         deaths == 0,
         f"{deaths} deaths declared ({len(false_deaths)} from leases), "
         f"{probe_saved} averted by probe-before-death "
         f"(no host ever crashed: any death is false)"),
        ("no-corrupt-delivery",
         gray_probes["corrupt_deliver"] == 0,
         f"{gray_probes['corrupt_deliver']} corrupted deliveries; "
         f"{rx_corrupt} corrupt frames detected and dropped at receivers"),
        ("completed-exactly-once",
         len(completed) == len(urns) and not coll_state["mismatch"],
         f"{len(completed)}/{len(urns)} workers completed once; "
         f"{len(coll_state['mismatch'])} result mismatches"),
    ]
    ok = all(c_ok for _, c_ok, _ in criteria)
    flight_records = None
    if recorder is not None and not ok:
        for name, c_ok, detail in criteria:
            if not c_ok:
                recorder.note_violation(f"criterion:{name}", env.sim.now, detail)
        flight_records = recorder.snapshot()
    return {
        "seed": seed,
        "differential": differential,
        "workers": n_workers,
        "zombie": zombie,
        "zombie_window": (zombie_at, z_end),
        "flight": flight_records,
        "goodput_ops_s": goodput,
        "ops_ok": load["ops_ok"],
        "ops_failed": load["ops_failed"],
        "sessions": load["sessions"],
        "detection_s": detection_s,
        "deaths_declared": deaths,
        "false_lease_deaths": len(false_deaths),
        "death_log": gray_probes["deaths"],
        "probe_saved": probe_saved,
        "ckpt_rejected": ckpt_rejected,
        "rx_corrupt_dropped": rx_corrupt,
        "corrupt_delivered": gray_probes["corrupt_deliver"],
        "criteria": criteria,
        "ok": ok,
        "finished_at": env.sim.now,
    }


def format_gray_report(report: Dict) -> str:
    """Human-readable gray-failure report for the CLI."""
    det = report["detection_s"]
    lines = [
        f"gray run: seed={report['seed']} workers={report['workers']} "
        f"differential={'on' if report['differential'] else 'off (baseline)'}",
        "",
        f"zombie {report['zombie']} (heartbeat-alive, work-dead) "
        f"t={report['zombie_window'][0]:.0f}..{report['zombie_window'][1]:.0f}s:",
        f"  detection latency: "
        + (f"{det:.2f}s" if det is not None else "never detected"),
        f"  goodput in zombie window: {report['goodput_ops_s']:.1f} ops/s "
        f"({report['ops_ok']} ok / {report['ops_failed']} failed over "
        f"{report['sessions']} sessions)",
        "",
        f"false deaths: {report['false_lease_deaths']} declared, "
        f"{report['probe_saved']} averted by probe-before-death",
        f"corruption: {report['corrupt_delivered']} delivered, "
        f"{report['rx_corrupt_dropped']} dropped at receivers",
        f"checkpoints rejected on digest: {report['ckpt_rejected']}",
        "",
        "criteria:",
    ]
    for name, ok, detail in report["criteria"]:
        lines.append(f"  [{'PASS' if ok else 'FAIL'}] {name}: {detail}")
    lines.append("")
    lines.append(f"RESULT: {'OK' if report['ok'] else 'FAILED'} "
                 f"(simulated {report['finished_at']:.1f}s)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Partition-heal scenario (experiment E16)
# ---------------------------------------------------------------------------

def start_heal_sessions(
    env: SnipeEnvironment,
    workers: List[str],
    t0: float,
    t1: float,
    n_keys: int = 24,
    interval: float = 0.4,
    value_pad: int = 1024,
    retire_frac: float = 0.25,
    retire_window: Tuple[float, float] = (0.0, 0.0),
) -> Dict:
    """Sustained per-key write/delete load against *pinned* replicas.

    Each key is written by one worker to one fixed replica (a direct
    :class:`RpcClient`, deliberately *without* failover) so that during
    a partition both sides keep accepting divergent writes — the worst
    case anti-entropy has to heal. The first ``retire_frac`` of the keys
    stop being written at a seeded time inside *retire_window* and are
    then deleted through the *next* replica in the ring, which during
    the partition usually sits on the other side of the cut: exactly the
    write-here/delete-there pair that tombstone resurrection bugs need.

    Values carry ``value_pad`` bytes of padding and a monotonic sequence
    prefix (``"<n>:xxx..."``), so the report can check that what the
    replicas converge on is at least as new as the last acknowledged
    write per key.
    """
    replicas = list(env.rc_replicas)
    rng = env.sim.rng.stream("heal.load")
    n_retire = int(n_keys * retire_frac)
    tracked: Dict = {
        "writes_ok": 0, "writes_failed": 0,
        "deletes_ok": 0, "deletes_failed": 0,
        "acked": {}, "retired": {}, "keys": {},
    }
    clients: Dict[str, RpcClient] = {}

    for i in range(n_keys):
        uri = f"snipe://heal/k{i}"
        pin = replicas[i % len(replicas)]
        retire_t = (rng.uniform(*retire_window) if i < n_retire else None)
        tracked["keys"][uri] = {"pin": pin[0], "retire_t": retire_t}

    def _driver(i: int) -> None:
        uri = f"snipe://heal/k{i}"
        pin = replicas[i % len(replicas)]
        wname = workers[i % len(workers)]
        host = env.topology.hosts[wname]
        rpc = clients.setdefault(wname, RpcClient(host, secret=env.secret))
        jitter = env.sim.rng.stream(f"heal.load.k{i}")
        retire_t = tracked["keys"][uri]["retire_t"]

        def writer():
            yield env.sim.timeout(max(0.0, t0 - env.sim.now))
            n = 0
            stop = retire_t if retire_t is not None else t1
            while env.sim.now < stop:
                n += 1
                value = f"{n}:" + "x" * value_pad
                try:
                    yield rpc.call(pin[0], pin[1], "rc.update",
                                   timeout=TIMEOUTS["rc.call"],
                                   uri=uri, assertions={"v": value})
                    tracked["writes_ok"] += 1
                    tracked["acked"][uri] = n
                except RpcError:
                    tracked["writes_failed"] += 1
                yield env.sim.timeout(interval * (0.75 + 0.5 * jitter.random()))
            if retire_t is None:
                return
            # Retire: delete through the next replica in the ring (during
            # a partition: usually the other side of the cut).
            deleter = replicas[(i + 1) % len(replicas)]
            yield env.sim.timeout(0.5)
            for _ in range(5):
                try:
                    yield rpc.call(deleter[0], deleter[1], "rc.delete",
                                   timeout=TIMEOUTS["rc.call"],
                                   uri=uri, keys=None)
                    tracked["deletes_ok"] += 1
                    tracked["retired"][uri] = env.sim.now
                    tracked["acked"].pop(uri, None)
                    return
                except RpcError:
                    yield env.sim.timeout(0.5)
            tracked["deletes_failed"] += 1

        env.sim.process(writer(), name=f"heal-load:k{i}")

    for i in range(n_keys):
        _driver(i)
    return tracked


def _visible_state(store, uri: str) -> Dict[str, Tuple]:
    """One replica's visible (non-deleted) assertions for *uri*, keyed by
    assertion name, as comparable ``(stamp, value)`` tuples."""
    out: Dict[str, Tuple] = {}
    for key, entry in store.data.get(uri, {}).items():
        if not entry.deleted:
            out[key] = (entry.wall, entry.lamport, entry.origin, entry.value)
    return out


def run_partition_heal(
    seed: int,
    n_workers: int = 4,
    duration: Optional[float] = None,
    part_at: float = 8.0,
    part_for: float = 60.0,
    n_keys: int = 24,
    interval: float = 0.4,
    value_pad: int = 1024,
    bounded: bool = True,
    max_sync_records: int = 64,
    blackout: bool = False,
    blackout_at: float = 10.0,
    blackout_for: float = 6.0,
    instrument: Optional[Callable] = None,
    obs_sample: Optional[float] = None,
    flight: bool = True,
) -> Dict:
    """One seeded partition-heal run; returns a report dict (``report["ok"]``).

    Two fault shapes against the replicated catalog under the sustained
    write/delete load of :func:`start_heal_sessions`:

    * **partition** (default): the core LAN is split ``{c2} | {c0, c1}``
      for *part_for* seconds — long past the replicas' peer-staleness
      horizon, so the majority side compacts its logs while the minority
      diverges — then healed. The run measures how long the three
      replicas take to reconverge on every tracked key, the largest
      anti-entropy payload used to get there, control-plane p99 during
      the storm, and whether any lease heartbeat was lost to sync
      traffic.
    * **blackout** (``blackout=True``): every replica crashes at once
      (memory gone, per-host disk dicts survive) and recovers
      *blackout_for* seconds later. With no surviving replica to copy
      from, the catalog — including tombstones for keys deleted before
      the crash — must come back from the durable snapshot + journal.

    ``bounded=False`` is the experiment-E16 baseline: compaction off and
    the legacy single-blob ``rc.sync`` exchange, whose payload grows
    with the whole divergence and ships on the control lane.
    """
    from repro.check.oracles import ProbeBus
    from repro.obs.slo import _metric_value

    if duration is None:
        duration = 40.0 if blackout else 100.0
    if bounded:
        rc_server_kw = dict(
            max_sync_records=max_sync_records, compact_interval=1.0,
            peer_stale_after=8.0, log_keep_tail=16, snapshot_every=128,
        )
    else:
        rc_server_kw = dict(max_sync_records=None)

    env, workers = build_chaos_env(seed, n_workers, rc_server_kw=rc_server_kw)
    _instrument_sim(env.sim, instrument, obs_sample)
    bus = ProbeBus()
    env.sim.probes = bus
    recorder = _arm_flight(env.sim, bus) if flight else None
    env.settle(2.0)

    heal_t = (blackout_at + blackout_for) if blackout else (part_at + part_for)
    # After a blackout the writers keep going for a while: the post-crash
    # writes prove the restored store still accepts and replicates work.
    monitor_from = heal_t + (6.0 if blackout else 0.0)
    if blackout:
        retire_window = (max(4.0, blackout_at - 6.0), blackout_at - 2.0)
    else:
        retire_window = (part_at + 0.3 * part_for, part_at + 0.6 * part_for)

    load = start_heal_sessions(
        env, workers, 3.0, monitor_from, n_keys=n_keys, interval=interval,
        value_pad=value_pad, retire_window=retire_window,
    )
    sessions = start_gray_sessions(env, workers, 4.0, duration - 2.0)

    if blackout:
        for h in ("c0", "c1", "c2"):
            env.failures.host_down_at(blackout_at, h, duration=blackout_for)
    else:
        env.failures.partition_at(part_at, ["c2"], ["c0", "c1"],
                                  duration=part_for)

    stores = {name: srv.store for name, srv in env.rc_servers.items()}
    measures: Dict = {"reconverged_at": None, "diverged_at_heal": None}

    # Control-plane experience *during the heal window*, measured
    # directly: small CONTROL-lane lookups against every replica while
    # anti-entropy drains the partition backlog. This is the traffic an
    # unbounded sync blob head-of-line blocks on a single-threaded
    # replica — the cumulative histograms can't isolate the window.
    probe: Dict = {"lat": [], "failed": 0}

    def _probe_control():
        gw_host = env.topology.hosts["gw"]
        rpc = RpcClient(gw_host, secret=env.secret)
        yield env.sim.timeout(max(0.0, heal_t - env.sim.now))
        while env.sim.now < min(heal_t + 15.0, duration):
            for rhost, rport in env.rc_replicas:
                t_op = env.sim.now
                try:
                    yield rpc.call(rhost, rport, "rc.lookup",
                                   timeout=TIMEOUTS["rc.sync"], lane=CONTROL,
                                   uri=uri_mod.host_url(rhost))
                    probe["lat"].append(env.sim.now - t_op)
                except RpcError:
                    probe["failed"] += 1
            yield env.sim.timeout(0.2)

    env.sim.process(_probe_control(), name="heal-control-probe")

    def _agreement() -> int:
        """Number of tracked keys the three replicas disagree on."""
        bad = 0
        for uri in load["keys"]:
            views = [_visible_state(s, uri) for s in stores.values()]
            want_empty = uri in load["retired"]
            if want_empty:
                if any(views):
                    bad += 1
            elif any(v != views[0] for v in views[1:]):
                bad += 1
        return bad

    def monitor():
        yield env.sim.timeout(max(0.0, monitor_from - env.sim.now))
        measures["diverged_at_heal"] = _agreement()
        while True:
            if _agreement() == 0:
                measures["reconverged_at"] = env.sim.now
                return
            yield env.sim.timeout(0.25)

    env.sim.process(monitor(), name="heal-monitor")
    env.run(until=duration)
    env.settle(4.0)

    # -- measurements --------------------------------------------------------
    export = env.sim.obs.metrics.export()
    snap = env.sim.obs.metrics.snapshot()
    max_batch = _metric_value(export, "rcds.sync_batch_records", "max")
    lat = sorted(probe["lat"])
    control_p99 = lat[int(0.99 * (len(lat) - 1))] if lat else None
    control_max = lat[-1] if lat else None
    hb_failed = int(sum(d.heartbeats_failed for d in env.daemons.values()))
    hb_failovers = int(sum(d.rc.failovers for d in env.daemons.values()))
    sync_failures = {k: int(v) for k, v in snap.items()
                     if k.startswith("rcds.sync_failures")}
    replica_stats = {name: srv._h_stats({}) for name, srv in env.rc_servers.items()}
    reconverge_s = (measures["reconverged_at"] - monitor_from
                    if measures["reconverged_at"] is not None else None)

    resurrected = []
    for uri in load["retired"]:
        for name, store in stores.items():
            if _visible_state(store, uri):
                resurrected.append((uri, name))
    stale = []
    for uri, n_acked in load["acked"].items():
        for name, store in stores.items():
            view = _visible_state(store, uri)
            got = view.get("v")
            n_got = int(got[3].split(":")[0]) if got else None
            if n_got is None or n_got < n_acked:
                stale.append((uri, name, n_got, n_acked))

    criteria: List[Tuple[str, bool, str]] = [
        ("replicas-reconverged",
         reconverge_s is not None,
         (f"all {len(load['keys'])} tracked keys agree on every replica "
          f"{reconverge_s:.2f}s after heal "
          f"({measures['diverged_at_heal']} keys diverged at heal)")
         if reconverge_s is not None
         else f"still diverged at t={env.sim.now:.0f}s "
              f"({_agreement()} keys disagree)"),
        ("no-resurrection",
         not resurrected,
         f"{len(load['retired'])} keys deleted"
         + (f"; resurrected: {sorted(set(resurrected))[:4]}" if resurrected
            else ", none came back")),
        ("writes-survive",
         not stale,
         f"{len(load['acked'])} live keys at or past their last acked write"
         + (f"; stale/missing: {stale[:4]}" if stale else "")),
    ]
    if bounded:
        criteria.append((
            "payload-bounded",
            max_batch <= max_sync_records,
            f"largest sync payload {max_batch:.0f} records "
            f"(bound {max_sync_records})",
        ))
        criteria.append((
            "control-responsive-during-heal",
            control_p99 is not None and control_p99 <= 0.5
            and probe["failed"] == 0,
            f"heal-window control p99 "
            + (f"{control_p99 * 1000:.0f}ms" if control_p99 is not None
               else "n/a")
            + f", {probe['failed']} probe failures",
        ))
        if not blackout:
            criteria.append((
                "zero-lost-heartbeats",
                hb_failed == 0 and hb_failovers == 0,
                f"{hb_failed} lease heartbeats failed, "
                f"{hb_failovers} had to fail over",
            ))
    if blackout:
        restores = {name: srv.restores for name, srv in env.rc_servers.items()}
        criteria.append((
            "durable-restore",
            all(r >= 1 for r in restores.values())
            and all(s.record_count() > 0 for s in stores.values()),
            f"restores per replica {restores}, "
            f"records {[s.record_count() for s in stores.values()]}",
        ))
    ok = all(c_ok for _, c_ok, _ in criteria)

    flight_records = None
    if recorder is not None and not ok:
        for name, c_ok, detail in criteria:
            if not c_ok:
                recorder.note_violation(f"criterion:{name}", env.sim.now, detail)
        flight_records = recorder.snapshot()

    return {
        "seed": seed,
        "mode": "blackout" if blackout else "partition",
        "bounded": bounded,
        "bound": max_sync_records if bounded else None,
        "workers": n_workers,
        "n_keys": n_keys,
        "value_pad": value_pad,
        "fault_window": ((blackout_at, heal_t) if blackout
                         else (part_at, heal_t)),
        "heal_t": heal_t,
        "reconverge_s": reconverge_s,
        "diverged_at_heal": measures["diverged_at_heal"],
        "max_sync_batch": max_batch,
        "control_p99": control_p99,
        "control_max": control_max,
        "control_probe_failed": probe["failed"],
        "heartbeats_failed": hb_failed,
        "heartbeat_failovers": hb_failovers,
        "writes_ok": load["writes_ok"],
        "writes_failed": load["writes_failed"],
        "deletes_ok": load["deletes_ok"],
        "deletes_failed": load["deletes_failed"],
        "retired": len(load["retired"]),
        "resurrected": sorted(set(resurrected)),
        "stale_keys": stale,
        "sync_failures": sync_failures,
        "snapshot_catchups": sum(s["snapshot_catchups"]
                                 for s in replica_stats.values()),
        "replica_stats": replica_stats,
        "lookup_ops_ok": sessions["ops_ok"],
        "lookup_ops_failed": sessions["ops_failed"],
        "flight": flight_records,
        "criteria": criteria,
        "ok": ok,
        "finished_at": env.sim.now,
    }


# ---------------------------------------------------------------------------
# Sharded-catalog scenario (experiment E18's fault case)
# ---------------------------------------------------------------------------

def build_shard_env(
    seed: int,
    n_workers: int = 3,
    split_threshold: int = 24,
    replicas_per_shard: int = 3,
    rc_server_kw: Optional[Dict] = None,
    manager_kw: Optional[Dict] = None,
) -> Tuple[SnipeEnvironment, List[str]]:
    """The shard chaos site: a sharded catalog on the core hosts, workers
    each alone behind the gateway so they can be isolated.

    The root directory group sits at the usual RC port on c0/c1/c2; one
    initial ``app`` shard owns ``snipe://app/`` with its replica group on
    the same core hosts (different port). The director runs on the
    gateway — deliberately off the core hosts, so a core crash stresses
    the shard groups without also beheading map publication."""
    env = SnipeEnvironment(seed=seed)
    env.add_segment("core-lan")
    for name in ("c0", "c1", "c2"):
        env.add_host(name, segments=["core-lan"])
    gw = env.add_host("gw", segments=["core-lan"], forwarding=True)
    workers = []
    for i in range(n_workers):
        seg = env.add_segment(f"s-w{i}")
        env.topology.connect(gw, seg)
        env.add_host(f"w{i}", segments=[f"s-w{i}"], arch="worker")
        workers.append(f"w{i}")
    env.add_rc_servers(["c0", "c1", "c2"], sharded=True,
                       **dict(rc_server_kw or {}))
    mgr = env.enable_sharding(
        split_threshold=split_threshold,
        replicas_per_shard=replicas_per_shard,
        director_host="gw",
        **dict(manager_kw or {}))
    mgr.add_shard("app", ("snipe://app/",))
    mgr.start()
    mgr.seed_map()
    return env, workers


def start_shard_sessions(
    env: SnipeEnvironment,
    workers: List[str],
    t0: float,
    t1: float,
    n_keys: int = 48,
    interval: float = 0.25,
    retire_frac: float = 0.2,
    retire_window: Tuple[float, float] = (0.0, 0.0),
) -> Dict:
    """Closed-loop write/delete load through the sharded facade.

    Every key is written at QUORUM through a :class:`ShardedRCClient`
    (each worker host gets one), with a monotonic sequence number as the
    value — an ack means a majority of the *owning* group at that epoch
    accepted it, which is exactly the durability the quiescent checks
    hold the federation to while splits move the ownership under the
    writers. The first ``retire_frac`` keys stop at a seeded time inside
    *retire_window* and are deleted; a retired key reappearing after
    migration with a stamp *older* than its delete is a resurrection
    across the split boundary. (A strictly newer stamp is not: an
    abandoned write kept alive by transport retransmission can land
    after the delete and win LWW — base-catalog semantics the shard
    layer must preserve, not mask.)"""
    from repro.rcds.client import QUORUM, ConsistencyError

    rng = env.sim.rng.stream("shard.load")
    n_retire = int(n_keys * retire_frac)
    tracked: Dict = {
        "writes_ok": 0, "writes_failed": 0,
        "deletes_ok": 0, "deletes_failed": 0,
        "acked": {}, "retired": {}, "keys": [],
    }

    def _driver(i: int) -> None:
        # Structured names so splits have a radix to bite on.
        uri = f"snipe://app/g{i % 4}/k{i:03d}"
        tracked["keys"].append(uri)
        wname = workers[i % len(workers)]
        client = env.rc_client(wname)
        jitter = env.sim.rng.stream(f"shard.load.k{i}")
        retire_t = rng.uniform(*retire_window) if i < n_retire else None

        def writer():
            yield env.sim.timeout(max(0.0, t0 - env.sim.now))
            n = 0
            stop = retire_t if retire_t is not None else t1
            while env.sim.now < stop:
                n += 1
                try:
                    yield client.update(uri, {"v": n}, consistency=QUORUM)
                    tracked["writes_ok"] += 1
                    tracked["acked"][uri] = (n, env.sim.now)
                except ConsistencyError:
                    tracked["writes_failed"] += 1
                yield env.sim.timeout(interval * (0.75 + 0.5 * jitter.random()))
            if retire_t is None:
                return
            for _ in range(5):
                try:
                    yield client.delete(uri, consistency=QUORUM)
                    tracked["deletes_ok"] += 1
                    tracked["retired"][uri] = env.sim.now
                    tracked["acked"].pop(uri, None)
                    return
                except ConsistencyError:
                    yield env.sim.timeout(0.5)
            tracked["deletes_failed"] += 1

        env.sim.process(writer(), name=f"shard-load:k{i}")

    for i in range(n_keys):
        _driver(i)
    return tracked


def run_shard_chaos(
    seed: int,
    n_workers: int = 3,
    n_keys: int = 48,
    duration: float = 90.0,
    interval: float = 0.25,
    split_threshold: int = 24,
    instrument: Optional[Callable] = None,
    obs_sample: Optional[float] = None,
    flight: bool = True,
) -> Dict:
    """One seeded sharded-catalog chaos run; returns a report dict.

    Write/delete load through the facade drives the ``app`` shard past
    its split threshold while seeded faults land mid-migration: a core
    host (carrying shard replicas) crashes and recovers, and one worker
    is partitioned away and heals. At quiescence the federation must
    show:

    * **splits-exercised** — the load actually forced at least one
      split, so the faults raced a migration rather than a quiet map;
    * **groups-converged** — within every shard replica group, the
      replicas agree on the visible state of every tracked name
      (per-shard LWW convergence);
    * **placement-clean** — every live tracked name is visible *only*
      in the group that owns it under the final map: in particular no
      name is visible in both a split parent and its child;
    * **writes-survive** — each live key's converged value is at least
      its last acknowledged write, and no retired key resurrected;
    * **queries-complete** — a scatter-gather prefix query through the
      facade returns exactly the live tracked keys.
    """
    from repro.check.oracles import ProbeBus
    from repro.rcds.records import MOVED

    env, workers = build_shard_env(seed, n_workers,
                                   split_threshold=split_threshold)
    _instrument_sim(env.sim, instrument, obs_sample)
    bus = ProbeBus()
    env.sim.probes = bus
    recorder = _arm_flight(env.sim, bus) if flight else None
    mgr = env.shard_manager
    env.settle(2.0)

    fault_stop = duration * 0.5
    t0, t1 = 3.0, fault_stop + 10.0
    load = start_shard_sessions(
        env, workers, t0, t1, n_keys=n_keys, interval=interval,
        retire_window=(fault_stop * 0.5, fault_stop * 0.9))

    rng = env.sim.rng.stream("shard-chaos.schedule")
    events: List[str] = []
    core = ["c1", "c2"]  # c0 carries the director's RC client: keep it up
    victim = core[rng.randrange(len(core))]
    t_crash = rng.uniform(8.0, fault_stop * 0.6)
    d_crash = rng.uniform(4.0, 8.0)
    env.failures.host_down_at(t_crash, victim, duration=d_crash)
    events.append(f"t={t_crash:5.1f}s crash {victim} (shard replicas) "
                  f"for {d_crash:.1f}s")
    w = workers[rng.randrange(len(workers))]
    t_part = rng.uniform(8.0, fault_stop * 0.7)
    d_part = rng.uniform(4.0, 8.0)
    env.failures.segment_down_at(t_part, f"s-{w}", duration=d_part)
    events.append(f"t={t_part:5.1f}s partition {w} for {d_part:.1f}s")
    events.sort()

    env.run(until=duration)
    env.settle(12.0)  # anti-entropy + handoff janitors drain

    # -- quiescent checks ---------------------------------------------------
    final_map = mgr.map
    groups = {sid: grp for sid, grp in mgr.servers.items()}
    tracked_set = set(load["keys"])

    diverged: List[Tuple[str, str]] = []
    misplaced: List[Tuple[str, str]] = []
    dual: List[str] = []
    for uri in sorted(tracked_set):
        owner_sid = final_map.route(uri)
        visible_in: List[str] = []
        for sid, grp in groups.items():
            views = [_visible_state(s.store, uri) for s in grp.values()]
            if any(v != views[0] for v in views[1:]):
                diverged.append((uri, sid))
            if any(views):
                visible_in.append(sid)
                if sid != owner_sid:
                    misplaced.append((uri, sid))
        if len(visible_in) > 1:
            dual.append(uri)

    # LWW-honest survival checks: an entry stamped at/after the last ack
    # (or the delete) is a *later* write that legitimately won — e.g. an
    # abandoned RPC replayed by the transport after a partition healed.
    # What the shard layer must never produce is an *older* stamp
    # resurfacing: that is a record lost or replayed across a migration.
    _EPS = 1.0
    stale: List[Tuple[str, str, Optional[int], int]] = []
    for uri, (n_acked, t_acked) in load["acked"].items():
        grp = groups[final_map.route(uri)]
        views = [_visible_state(s.store, uri) for s in grp.values()]
        got = views[0].get("v") if views and views[0] else None
        if got is None:
            stale.append((uri, final_map.route(uri), None, n_acked))
        elif got[3] < n_acked and got[0] < t_acked - _EPS:
            stale.append((uri, final_map.route(uri), got[3], n_acked))
    resurrected = []
    zombie_revived = 0
    for uri, t_deleted in load["retired"].items():
        for sid, grp in groups.items():
            views = [v for v in (_visible_state(s.store, uri)
                                 for s in grp.values()) if v]
            if not views:
                continue
            got = views[0].get("v")
            if got is not None and got[0] >= t_deleted - _EPS:
                zombie_revived += 1  # newer stamp: a legitimate LWW winner
            else:
                resurrected.append((uri, sid))

    # Ground truth for the federation query: what the owning groups
    # actually hold live at quiescence (acked state modulo zombies).
    truth = sorted(
        uri for uri in tracked_set
        if any(_visible_state(s.store, uri)
               for s in groups[final_map.route(uri)].values()))
    client = env.rc_client(workers[0])
    queried = [u for u in env.run(until=client.query("snipe://app/"))
               if u in tracked_set]
    query_missing = sorted(set(truth) - set(queried))
    query_extra = sorted(set(queried) - set(truth))

    redirects = sum(s.redirects for g in groups.values() for s in g.values())
    handoffs = sum(s.handoffs for g in groups.values() for s in g.values())
    moved_markers = sum(
        1 for g in groups.values() for s in g.values()
        for bucket in s.store.data.values()
        for e in bucket.values() if e.deleted and e.value == MOVED)

    invariants: List[Tuple[str, bool, str]] = [
        ("splits-exercised",
         mgr.splits >= 1,
         f"{mgr.splits} splits, map at epoch {final_map.epoch} with "
         f"{len(final_map.shards)} shards; {handoffs} records handed off"),
        ("groups-converged",
         not diverged,
         "every shard replica group agrees on every tracked name"
         if not diverged else f"diverged (uri, shard): {diverged[:4]}"),
        ("placement-clean",
         not misplaced and not dual,
         f"every live name only in its owning group "
         f"({moved_markers} migration tombstones left behind)"
         if not (misplaced or dual)
         else f"misplaced: {misplaced[:4]}; parent+child visible: {dual[:4]}"),
        ("writes-survive",
         not stale and not resurrected,
         f"{len(load['acked'])} live keys at/past last acked write, "
         f"{len(load['retired'])} retired keys stayed deleted "
         f"({zombie_revived} revived by later-stamped in-flight writes)"
         if not (stale or resurrected)
         else f"stale: {stale[:4]}; resurrected: {resurrected[:4]}"),
        ("queries-complete",
         not query_missing and not query_extra,
         f"facade query returned all {len(truth)} live keys"
         if not (query_missing or query_extra)
         else f"missing: {query_missing[:4]}; extra: {query_extra[:4]}"),
    ]
    ok = all(inv_ok for _, inv_ok, _ in invariants)
    flight_records = None
    if recorder is not None and not ok:
        for name, inv_ok, detail in invariants:
            if not inv_ok:
                recorder.note_violation(f"invariant:{name}", env.sim.now, detail)
        flight_records = recorder.snapshot()
    return {
        "seed": seed,
        "workers": n_workers,
        "n_keys": n_keys,
        "split_threshold": split_threshold,
        "events": events,
        "fault_log": list(env.failures.log),
        "flight": flight_records,
        "splits": mgr.splits,
        "epoch": final_map.epoch,
        "shards": sorted(final_map.shards),
        "redirects": redirects,
        "redirect_retries": sum(
            c.redirect_retries for c in env._clients.values()
            if hasattr(c, "redirect_retries")),
        "handoffs": handoffs,
        "writes_ok": load["writes_ok"],
        "writes_failed": load["writes_failed"],
        "deletes_ok": load["deletes_ok"],
        "retired": len(load["retired"]),
        "invariants": invariants,
        "ok": ok,
        "finished_at": env.sim.now,
    }


def format_shard_report(report: Dict) -> str:
    """Human-readable sharded-catalog chaos report for the CLI."""
    lines = [
        f"shard chaos run: seed={report['seed']} workers={report['workers']} "
        f"keys={report['n_keys']} split_threshold={report['split_threshold']}",
        "",
        "fault schedule:",
    ]
    lines += [f"  {e}" for e in report["events"]] or ["  (none)"]
    lines.append("")
    lines.append(
        f"federation  : {len(report['shards'])} shards at epoch "
        f"{report['epoch']} after {report['splits']} splits: "
        f"{', '.join(report['shards'])}")
    lines.append(
        f"migration   : {report['handoffs']} records handed off, "
        f"{report['redirects']} stale-epoch redirects fenced, "
        f"{report['redirect_retries']} client re-routes")
    lines.append(
        f"load        : {report['writes_ok']} writes ok / "
        f"{report['writes_failed']} failed, {report['deletes_ok']} deletes "
        f"({report['retired']} keys retired)")
    lines.append("")
    lines.append("invariants:")
    for name, ok, detail in report["invariants"]:
        lines.append(f"  [{'PASS' if ok else 'FAIL'}] {name}: {detail}")
    lines.append("")
    lines.append(f"RESULT: {'OK' if report['ok'] else 'FAILED'} "
                 f"(simulated {report['finished_at']:.1f}s)")
    return "\n".join(lines)


def format_heal_report(report: Dict) -> str:
    """Human-readable partition-heal report for the CLI."""
    rc = report["reconverge_s"]
    lines = [
        f"heal run: seed={report['seed']} mode={report['mode']} "
        f"sync={'bounded<=' + str(report['bound']) if report['bounded'] else 'unbounded (baseline)'}",
        "",
        f"fault window t={report['fault_window'][0]:.0f}.."
        f"{report['fault_window'][1]:.0f}s, {report['n_keys']} keys, "
        f"{report['writes_ok']} writes ok / {report['writes_failed']} failed, "
        f"{report['deletes_ok']} deletes ({report['retired']} keys retired)",
        f"  reconvergence: "
        + (f"{rc:.2f}s after heal ({report['diverged_at_heal']} keys diverged)"
           if rc is not None else "NEVER"),
        f"  largest sync payload: {report['max_sync_batch']:.0f} records"
        + (f" (bound {report['bound']})" if report["bounded"] else ""),
        f"  heal-window control p99 "
        + (f"{report['control_p99'] * 1000:.0f}ms" if report["control_p99"]
           is not None else "n/a")
        + (f" (max {report['control_max'] * 1000:.0f}ms, "
           f"{report['control_probe_failed']} probe failures)"
           if report["control_max"] is not None else "")
        + f", heartbeats lost {report['heartbeats_failed']} "
        f"(failovers {report['heartbeat_failovers']}), "
        f"snapshot catch-ups {report['snapshot_catchups']}",
        f"  sync failures by cause: {report['sync_failures'] or '{}'}",
        "",
        "criteria:",
    ]
    for name, ok, detail in report["criteria"]:
        lines.append(f"  [{'PASS' if ok else 'FAIL'}] {name}: {detail}")
    lines.append("")
    lines.append(f"RESULT: {'OK' if report['ok'] else 'FAILED'} "
                 f"(simulated {report['finished_at']:.1f}s)")
    return "\n".join(lines)
