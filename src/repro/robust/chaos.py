"""Seeded chaos harness: faults + self-healing + invariant checking.

Builds a star site (a stable service core, plus workers that are each
alone on a private segment behind a gateway), runs a checkpointing
workload across the workers, and drives a seeded schedule of host
crashes and partitions against them while the Guardians repair the
damage. After quiescence it checks the system-wide invariants that
self-healing must preserve:

* **completed-exactly-once** — every submitted task reports exactly one
  effective completion (duplicate reports are deduplicated and counted,
  and must agree on the result);
* **no-incarnation-regression** — the incarnations a receiver accepts
  per task never decrease, and every Guardian recovery strictly raised
  the incarnation;
* **catalogs-converged** — after anti-entropy settles, every RC replica
  independently reports the same terminal state for every task;
* **no-silent-loss** — every unit of work was reported (restart suffix
  re-reports are fine, gaps are not), no envelope is still parked in a
  reorder buffer, and everything the workers got an ack for was either
  delivered, deduplicated, or deliberately fenced at the receiver.

Worker segments go down *without* the worker host crashing — that is the
zombie scenario: the Guardian (correctly, per its lease evidence)
declares the worker dead and respawns it, and the fencing machinery must
then keep the surviving original from double-executing. Host crashes use
the refcounted injector one-shots, so overlapping fault windows compose.

Entry points: :func:`run_chaos` (one seed -> report dict), used by
``python -m repro chaos run --seed N`` and the parametrized pytest
suite in ``tests/robust/test_chaos.py``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.checkpoint import checkpoint_to_files
from repro.core.environment import SnipeEnvironment
from repro.daemon.tasks import TaskSpec, TaskState
from repro.rcds.server import RC_PORT
from repro.rpc import RpcClient

#: Seeds the CI smoke and the pytest suite pin.
DEFAULT_SEEDS = (1, 2, 3, 4, 5)


def build_chaos_env(seed: int, n_workers: int = 4) -> Tuple[SnipeEnvironment, List[str]]:
    """The chaos site: stable core (RC x3, RM, files, guardians) behind a
    gateway, each worker alone on its own segment so it can be isolated."""
    env = SnipeEnvironment(seed=seed)
    env.add_segment("core-lan")
    for name in ("c0", "c1", "c2"):
        env.add_host(name, segments=["core-lan"])
    gw = env.add_host("gw", segments=["core-lan"], forwarding=True)
    workers = []
    for i in range(n_workers):
        seg = env.add_segment(f"s-w{i}")
        env.topology.connect(gw, seg)
        env.add_host(f"w{i}", segments=[f"s-w{i}"], arch="worker")
        workers.append(f"w{i}")
    env.add_rc_servers(["c0", "c1", "c2"])
    for name in ("c0", "c1", "c2", "gw", *workers):
        env.boot_daemon(name)
    env.add_rm("c0")
    env.add_file_server("c0")
    env.add_file_server("c1")
    env.add_guardian("c1")
    env.add_guardian("c2")
    return env, workers


def _install_programs(env: SnipeEnvironment, acked: Dict[str, int], coll_state: Dict):
    @env.program("chaos-worker")
    def chaos_worker(ctx, total, ckpt_every, collector_urn, step):
        i = ctx.checkpoint_state.get("i", 0)
        # Checkpoint immediately: from the first instant there is a
        # durable state for the Guardian to restart from.
        yield checkpoint_to_files(ctx)
        while i < total:
            yield ctx.compute(step)
            i += 1
            ctx.checkpoint_state["i"] = i
            yield ctx.send(collector_urn,
                           {"urn": ctx.urn, "i": i, "inc": ctx.incarnation},
                           tag="progress")
            acked[ctx.urn] = acked.get(ctx.urn, 0) + 1
            # Output-commit discipline: checkpoint only after the report
            # for this step was acknowledged. A checkpoint that ran ahead
            # of unacknowledged output would let a crash lose the report
            # for work the successor (resuming past it) never redoes.
            if i % ckpt_every == 0:
                yield checkpoint_to_files(ctx)
        # App-level fence check before claiming completion: a superseded
        # incarnation leaves the completion report to its successor.
        try:
            fence = yield ctx.rc.get(ctx.urn, "fenced-below")
        except Exception:
            fence = None
        if fence is not None and ctx.incarnation < fence:
            return i
        yield ctx.send(collector_urn,
                       {"urn": ctx.urn, "result": i, "inc": ctx.incarnation},
                       tag="done")
        acked[ctx.urn] = acked.get(ctx.urn, 0) + 1
        return i

    @env.program("chaos-collector")
    def chaos_collector(ctx):
        while True:
            msg = yield ctx.recv()
            p = msg.payload
            urn = p["urn"]
            coll_state["incs"].setdefault(urn, []).append(msg.src_inc)
            if msg.tag == "done":
                if urn in coll_state["done"]:
                    coll_state["dup_done"][urn] = coll_state["dup_done"].get(urn, 0) + 1
                    if coll_state["done"][urn] != p["result"]:
                        coll_state["mismatch"].append(urn)
                else:
                    coll_state["done"][urn] = p["result"]
            else:
                coll_state["progress"].setdefault(urn, set()).add(p["i"])


def _schedule_faults(
    env: SnipeEnvironment,
    workers: List[str],
    fault_stop: float,
    churn: bool,
    partitions: bool,
) -> List[str]:
    """Seeded fault plan. All faults start after t=3 (first checkpoints
    are durable by then) and end by *fault_stop* so the system can
    quiesce; every window has a recovery."""
    rng = env.sim.rng.stream("chaos.schedule")
    events: List[str] = []
    if churn:
        # Scheduled crash/repair windows (refcount-safe when overlapping).
        n_crashes = max(2, len(workers))
        for _ in range(n_crashes):
            w = workers[rng.randrange(len(workers))]
            t = rng.uniform(3.0, fault_stop * 0.8)
            d = rng.uniform(1.5, 6.0)
            env.failures.host_down_at(t, w, duration=d)
            events.append(f"t={t:5.1f}s crash {w} for {d:.1f}s")
        # Plus Poisson churn on half the fleet for good measure.
        victims = workers[::2]

        def start_churn():
            yield env.sim.timeout(3.0)
            env.failures.churn_hosts(victims, mtbf=15.0, mttr=2.0,
                                     stop_at=fault_stop)

        env.sim.process(start_churn(), name="chaos:churn-start")
        events.append(f"t=  3.0s churn mtbf=15s mttr=2s on {victims} until t={fault_stop:.0f}s")
    if partitions:
        for _ in range(max(1, len(workers) // 2)):
            w = workers[rng.randrange(len(workers))]
            t = rng.uniform(4.0, fault_stop * 0.8)
            d = rng.uniform(5.0, 10.0)
            env.failures.segment_down_at(t, f"s-{w}", duration=d)
            events.append(f"t={t:5.1f}s partition {w} for {d:.1f}s (host stays up: zombie)")
    events.sort()
    return events


def _check_catalogs(env: SnipeEnvironment, urns: List[str]):
    """Direct per-replica reads (no failover): do the replicas agree?"""
    client = RpcClient(env.topology.hosts["gw"])
    disagreements = []
    for urn in urns:
        states = {}
        for replica, _port in env.rc_replicas:
            try:
                assertions = yield client.call(replica, RC_PORT, "rc.lookup", uri=urn)
            except Exception:
                states[replica] = "<unreachable>"
                continue
            info = assertions.get("state")
            states[replica] = info["value"] if info else None
        if len(set(states.values())) != 1 or set(states.values()) != {TaskState.EXITED}:
            disagreements.append((urn, states))
    client.close()
    return disagreements


def run_chaos(
    seed: int,
    n_workers: int = 4,
    total: int = 60,
    ckpt_every: int = 4,
    duration: float = 120.0,
    churn: bool = True,
    partitions: bool = True,
    step: float = 0.3,
) -> Dict:
    """One seeded chaos run; returns a report dict (``report["ok"]``)."""
    env, workers = build_chaos_env(seed, n_workers)
    acked: Dict[str, int] = {}
    coll_state: Dict = {"done": {}, "dup_done": {}, "progress": {}, "incs": {}, "mismatch": []}
    _install_programs(env, acked, coll_state)
    env.settle(2.0)

    coll = env.spawn(TaskSpec(program="chaos-collector", name="chaos-coll"), on="c0")
    tasks = []
    for i, w in enumerate(workers):
        spec = TaskSpec(
            program="chaos-worker",
            arch="worker",  # keep (re)placement on the worker fleet
            name=f"chaos-w{i}",
            params={"total": total, "ckpt_every": ckpt_every,
                    "collector_urn": coll.urn, "step": step},
        )
        tasks.append(env.spawn(spec, on=w))
    urns = [t.urn for t in tasks]

    fault_stop = min(duration * 0.45, 45.0)
    events = _schedule_faults(env, workers, fault_stop, churn, partitions)

    # Run to quiescence: everyone done, or the duration budget spent.
    deadline = env.sim.now + duration
    while env.sim.now < deadline:
        env.run(until=min(env.sim.now + 5.0, deadline))
        if len(coll_state["done"]) == len(urns) and env.sim.now > fault_stop + 12.0:
            break
    env.settle(3.0)  # let anti-entropy converge the catalogs

    recoveries = [r for g in env.guardians.values() for r in g.recoveries]
    unrecoverable: Dict[str, str] = {}
    for g in env.guardians.values():
        unrecoverable.update(g.unrecoverable)
    coll_ctx = env.daemons["c0"].contexts[coll.urn]

    invariants: List[Tuple[str, bool, str]] = []
    # 1. Every task completed exactly once.
    completed = [u for u in urns if coll_state["done"].get(u) == total]
    dups = sum(coll_state["dup_done"].values())
    invariants.append((
        "completed-exactly-once",
        len(completed) == len(urns) and not coll_state["mismatch"],
        f"{len(completed)}/{len(urns)} completed once; "
        f"{dups} duplicate reports deduplicated; "
        f"{len(coll_state['mismatch'])} result mismatches",
    ))
    # 2. Incarnations never regress.
    regressed = [
        u for u, incs in coll_state["incs"].items()
        if any(b < a for a, b in zip(incs, incs[1:]))
    ]
    bad_recs = [r for r in recoveries if (r["new_inc"] or 0) <= (r["old_inc"] or 0)]
    invariants.append((
        "no-incarnation-regression",
        not regressed and not bad_recs,
        f"{len(recoveries)} recoveries, all raised incarnation; "
        f"{len(regressed)} receivers saw a regression",
    ))
    # 3. Catalog replicas agree on terminal state.
    disagreements = env.run(until=env.sim.process(_check_catalogs(env, urns)))
    invariants.append((
        "catalogs-converged",
        not disagreements,
        "all replicas report state=exited for every task"
        if not disagreements else f"disagreeing records: {disagreements}",
    ))
    # 4. Nothing silently lost.
    missing = {
        u: sorted(set(range(1, total + 1)) - coll_state["progress"].get(u, set()))
        for u in urns
        if set(range(1, total + 1)) - coll_state["progress"].get(u, set())
    }
    held = sum(len(v) for v in coll_ctx._ooo.values())
    recv_events = coll_ctx.msgs_received + coll_ctx.msgs_deduped + coll_ctx.msgs_fenced
    acked_total = sum(acked.values())
    invariants.append((
        "no-silent-loss",
        not missing and held == 0 and recv_events >= acked_total,
        f"{acked_total} acked sends vs {coll_ctx.msgs_received} delivered + "
        f"{coll_ctx.msgs_deduped} deduped + {coll_ctx.msgs_fenced} fenced; "
        f"{held} parked out-of-order; missing work: {missing or 'none'}",
    ))

    latencies = [r["recovered_at"] - r["detected_at"] for r in recoveries]
    return {
        "seed": seed,
        "workers": n_workers,
        "total": total,
        "events": events,
        "fault_log": list(env.failures.log),
        "recoveries": recoveries,
        "unrecoverable": unrecoverable,
        "msgs_fenced": coll_ctx.msgs_fenced,
        "invariants": invariants,
        "ok": all(ok for _, ok, _ in invariants),
        "recovery_latency": {
            "count": len(latencies),
            "mean": sum(latencies) / len(latencies) if latencies else 0.0,
            "max": max(latencies) if latencies else 0.0,
        },
        "finished_at": env.sim.now,
    }


def format_report(report: Dict) -> str:
    """Human-readable chaos report for the CLI."""
    lines = [
        f"chaos run: seed={report['seed']} workers={report['workers']} "
        f"x {report['total']} steps",
        "",
        "fault schedule:",
    ]
    lines += [f"  {e}" for e in report["events"]] or ["  (none)"]
    lines.append("")
    lines.append(f"recoveries: {len(report['recoveries'])}")
    for r in report["recoveries"]:
        lines.append(
            f"  {r['urn']}: {r['from']} -> {r['to']} "
            f"inc {r['old_inc']}->{r['new_inc']} "
            f"(detected t={r['detected_at']:.1f}s, recovered t={r['recovered_at']:.1f}s)"
        )
    if report["unrecoverable"]:
        lines.append(f"unrecoverable (no checkpoint): {report['unrecoverable']}")
    rl = report["recovery_latency"]
    if rl["count"]:
        lines.append(f"recovery latency: mean {rl['mean']:.2f}s, max {rl['max']:.2f}s")
    lines.append(f"fenced messages dropped at collector: {report['msgs_fenced']}")
    lines.append("")
    lines.append("invariants:")
    for name, ok, detail in report["invariants"]:
        lines.append(f"  [{'PASS' if ok else 'FAIL'}] {name}: {detail}")
    lines.append("")
    lines.append(f"RESULT: {'OK' if report['ok'] else 'FAILED'} "
                 f"(simulated {report['finished_at']:.1f}s)")
    return "\n".join(lines)
