"""One retry discipline for every client in the system.

Before this module, each client grew its own loop: the RPC client had a
single timeout, the RC client failed over across replicas, the RM client
across managers, the file client across file-server replicas — all with
slightly different give-up rules and none with backoff. A
:class:`RetryPolicy` unifies the *temporal* half of that logic:

* exponential backoff (``base_delay * multiplier**k``, capped),
* deterministic jitter drawn from a named :mod:`repro.sim.rng` stream so
  retry storms decorrelate without breaking reproducibility,
* an overall *deadline* budget measured in virtual time from the first
  attempt — a retrying caller never outlives its caller's patience,
* obs counters (``robust.attempts``, ``robust.retries``,
  ``robust.giveups`` tagged by operation) so a report shows where the
  system is struggling.

The *spatial* half — which replica/candidate to try next — stays with
each client; a policy's ``run`` wraps one whole candidate round and
retries it as a unit. On exhaustion the last underlying exception is
re-raised, so existing ``except RpcError/ConsistencyError/...`` call
sites keep working unchanged.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple, Type


class RetryError(Exception):
    """A policy gave up without any underlying exception to re-raise
    (only possible with ``attempts < 1``)."""


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try, and how long to wait in between.

    ``attempts`` counts total tries (1 = no retry). ``deadline`` bounds
    the whole affair in virtual seconds from the first attempt: a retry
    whose backoff would cross the deadline is not taken. ``jitter`` is
    the +/- fraction applied to each backoff when an RNG is supplied.
    """

    attempts: int = 3
    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 5.0
    deadline: Optional[float] = None
    jitter: float = 0.5

    @classmethod
    def single(cls) -> "RetryPolicy":
        """No retry: one attempt, counters only (a drop-in null policy)."""
        return cls(attempts=1)

    def backoff(self, retry_index: int, rng=None) -> float:
        """Delay before retry *retry_index* (1-based), jittered if *rng*."""
        delay = min(self.max_delay, self.base_delay * self.multiplier ** (retry_index - 1))
        if rng is not None and self.jitter > 0:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, delay)

    def run(
        self,
        sim,
        make_attempt: Callable[[int], Any],
        *,
        retry_on: Tuple[Type[BaseException], ...] = (Exception,),
        rng=None,
        op: str = "op",
    ):
        """Generator: drive ``make_attempt`` under this policy.

        ``make_attempt(i)`` is called with the attempt index and may
        return a generator (delegated with ``yield from``), a sim event
        (yielded), or a plain value. Exceptions matching *retry_on* are
        retried; anything else propagates immediately. Use as
        ``result = yield from policy.run(sim, attempt, ...)``.
        """
        metrics = sim.obs.metrics
        m_attempts = metrics.counter("robust.attempts", op=op)
        m_retries = metrics.counter("robust.retries", op=op)
        m_giveups = metrics.counter("robust.giveups", op=op)
        start = sim.now
        last: Optional[BaseException] = None
        for i in range(self.attempts):
            if i:
                delay = self.backoff(i, rng)
                if self.deadline is not None and (sim.now - start) + delay > self.deadline:
                    break
                m_retries.inc()
                yield sim.timeout(delay)
            m_attempts.inc()
            try:
                result = make_attempt(i)
                if inspect.isgenerator(result):
                    result = yield from result
                elif hasattr(result, "add_callback"):  # a sim Event/Process
                    result = yield result
                return result
            except retry_on as exc:
                last = exc
        m_giveups.inc()
        if last is None:
            raise RetryError(f"{op}: no attempts made (attempts={self.attempts})")
        raise last
