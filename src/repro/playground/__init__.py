"""Playgrounds: secure execution of mobile code (§3.6, §5.8).

    "A 'playground' runs under the supervision of a SNIPE daemon and
    facilitates the secure execution of mobile code. … The playground is
    responsible for downloading the code from a file server, verifying
    its authenticity and integrity, verifying that the code has the
    rights needed to access restricted resources, enforcing access
    restrictions and resource usage quotas, and logging access violations
    and excess resource use."

The paper anticipated mobile code "written in a machine-independent
language such as Java, Python, or Limbo"; we provide our own:
**SnipeScript**, a small imperative language compiled
(:mod:`repro.playground.lang`) to a checkpointable stack VM
(:mod:`repro.playground.vm`) whose step/memory budgets map directly onto
SNIPE task quotas — and whose snapshots are exactly the "allocation of
program storage in a way that facilitates checkpointing, restart, and
migration" the paper calls for.
"""

from repro.playground.vm import SnipeVM, VmError, VmQuotaError
from repro.playground.lang import CompileError, compile_source
from repro.playground.playground import (
    CodeVerificationError,
    Playground,
    sign_mobile_code,
)

__all__ = [
    "CodeVerificationError",
    "CompileError",
    "Playground",
    "SnipeVM",
    "VmError",
    "VmQuotaError",
    "compile_source",
    "sign_mobile_code",
]
