"""A checkpointable stack VM for mobile code.

Design constraints from §3.6/§5.8:

* **quotas** — every instruction costs one step; every live value costs
  cells. The playground maps SNIPE cpu/memory quotas onto these budgets.
* **checkpoint/restart/migration** — :meth:`snapshot` captures the entire
  machine state as plain data; :meth:`restore` resumes bit-for-bit. A
  program run in slices with snapshots in between produces exactly the
  same result as an uninterrupted run (property-tested).
* **confinement** — the instruction set has no ambient authority: the
  only exits are ``EMIT`` (collected output) and ``SYS`` calls, which the
  playground gates on the code's granted rights.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

# Instruction opcodes. Programs are lists of (op, arg) pairs.
PUSH = "PUSH"      # push constant
POP = "POP"        # discard top
LOADG = "LOADG"    # push globals[arg]
STOREG = "STOREG"  # globals[arg] = pop
LOADL = "LOADL"    # push locals[arg]
STOREL = "STOREL"  # locals[arg] = pop
ADD = "ADD"
SUB = "SUB"
MUL = "MUL"
DIV = "DIV"
MOD = "MOD"
NEG = "NEG"
EQ = "EQ"
NE = "NE"
LT = "LT"
LE = "LE"
GT = "GT"
GE = "GE"
NOT = "NOT"
JMP = "JMP"        # pc = arg
JZ = "JZ"          # pop; if falsy pc = arg
CALL = "CALL"      # arg = (addr, nargs): push frame
RET = "RET"        # return top of stack to caller
MAKELIST = "MAKELIST"  # arg = n: pop n items into a list
INDEX = "INDEX"    # a[i]
SETINDEX = "SETINDEX"  # a[i] = v
LEN = "LEN"
APPEND = "APPEND"  # push(list, v)
EMIT = "EMIT"      # append pop() to the output channel
SYS = "SYS"        # arg = (name, nargs): gated host call
HALT = "HALT"


class VmError(Exception):
    """Illegal operation (type error, bad index, stack underflow...)."""


class VmQuotaError(Exception):
    """Step or memory budget exhausted."""


def _cells(value: Any) -> int:
    """Memory cost of a value in cells."""
    if isinstance(value, list):
        return 1 + sum(_cells(v) for v in value)
    if isinstance(value, str):
        return 1 + len(value) // 8
    return 1


class SnipeVM:
    """One mobile-code interpreter instance."""

    def __init__(
        self,
        code: List[Tuple[str, Any]],
        max_steps: Optional[int] = None,
        max_cells: Optional[int] = None,
        syscalls: Optional[Dict[str, Callable[..., Any]]] = None,
    ) -> None:
        self.code = list(code)
        self.max_steps = max_steps
        self.max_cells = max_cells
        self.syscalls = syscalls or {}
        self.pc = 0
        self.stack: List[Any] = []
        self.globals: Dict[str, Any] = {}
        #: call frames: (return_pc, locals list)
        self.frames: List[Tuple[int, List[Any]]] = []
        self.locals: List[Any] = []
        self.output: List[Any] = []
        self.steps = 0
        self.halted = False

    # -- quota accounting ------------------------------------------------------
    def _charge_step(self) -> None:
        self.steps += 1
        if self.max_steps is not None and self.steps > self.max_steps:
            raise VmQuotaError(f"step quota exceeded ({self.max_steps})")

    def _check_memory(self) -> None:
        if self.max_cells is None:
            return
        used = sum(_cells(v) for v in self.stack)
        used += sum(_cells(v) for v in self.globals.values())
        used += sum(_cells(v) for v in self.locals if v is not None)
        for _, frame_locals in self.frames:
            used += sum(_cells(v) for v in frame_locals if v is not None)
        if used > self.max_cells:
            raise VmQuotaError(f"memory quota exceeded ({used} > {self.max_cells} cells)")

    # -- checkpointing --------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Complete machine state as plain data.

        The whole state is deep-copied in ONE pass so aliasing is
        preserved: a list referenced from both the stack and a local must
        stay one object after restore, or mutation semantics would differ
        between an interrupted and an uninterrupted run.
        """
        import copy

        return copy.deepcopy(
            {
                "pc": self.pc,
                "stack": self.stack,
                "globals": self.globals,
                "frames": self.frames,
                "locals": self.locals,
                "output": self.output,
                "steps": self.steps,
                "halted": self.halted,
            }
        )

    def restore(self, snap: Dict[str, Any]) -> None:
        import copy

        snap = copy.deepcopy(snap)  # one pass: aliasing preserved
        self.pc = snap["pc"]
        self.stack = snap["stack"]
        self.globals = snap["globals"]
        self.frames = snap["frames"]
        self.locals = snap["locals"]
        self.output = snap["output"]
        self.steps = snap["steps"]
        self.halted = snap["halted"]

    # -- execution ----------------------------------------------------------------
    def _pop(self) -> Any:
        if not self.stack:
            raise VmError(f"stack underflow at pc={self.pc - 1}")
        return self.stack.pop()

    def run(self, max_slice: Optional[int] = None) -> bool:
        """Execute until HALT or *max_slice* instructions; True if halted."""
        executed = 0
        while not self.halted:
            if max_slice is not None and executed >= max_slice:
                return False
            if not 0 <= self.pc < len(self.code):
                raise VmError(f"pc out of range: {self.pc}")
            op, arg = self.code[self.pc]
            self.pc += 1
            self._charge_step()
            executed += 1
            self._execute(op, arg)
            if executed % 64 == 0:
                self._check_memory()
        self._check_memory()
        return True

    def _execute(self, op: str, arg: Any) -> None:
        s = self.stack
        if op == PUSH:
            import copy

            # Constants are copied so programs can't alias the code object.
            s.append(copy.deepcopy(arg) if isinstance(arg, list) else arg)
        elif op == POP:
            self._pop()
        elif op == LOADG:
            if arg not in self.globals:
                raise VmError(f"undefined variable {arg!r}")
            s.append(self.globals[arg])
        elif op == STOREG:
            self.globals[arg] = self._pop()
        elif op == LOADL:
            value = self.locals[arg]
            s.append(value)
        elif op == STOREL:
            while len(self.locals) <= arg:
                self.locals.append(None)
            self.locals[arg] = self._pop()
        elif op in (ADD, SUB, MUL, DIV, MOD, EQ, NE, LT, LE, GT, GE):
            b, a = self._pop(), self._pop()
            try:
                if op == ADD:
                    s.append(a + b)
                elif op == SUB:
                    s.append(a - b)
                elif op == MUL:
                    s.append(a * b)
                elif op == DIV:
                    s.append(a // b if isinstance(a, int) and isinstance(b, int) else a / b)
                elif op == MOD:
                    s.append(a % b)
                elif op == EQ:
                    s.append(1 if a == b else 0)
                elif op == NE:
                    s.append(1 if a != b else 0)
                elif op == LT:
                    s.append(1 if a < b else 0)
                elif op == LE:
                    s.append(1 if a <= b else 0)
                elif op == GT:
                    s.append(1 if a > b else 0)
                elif op == GE:
                    s.append(1 if a >= b else 0)
            except (TypeError, ZeroDivisionError) as exc:
                raise VmError(f"{op} failed: {exc}") from None
        elif op == NEG:
            a = self._pop()
            try:
                s.append(-a)
            except TypeError as exc:
                raise VmError(str(exc)) from None
        elif op == NOT:
            s.append(0 if self._pop() else 1)
        elif op == JMP:
            self.pc = arg
        elif op == JZ:
            if not self._pop():
                self.pc = arg
        elif op == CALL:
            addr, nargs = arg
            args = [self._pop() for _ in range(nargs)][::-1]
            self.frames.append((self.pc, self.locals))
            self.locals = args
            self.pc = addr
        elif op == RET:
            value = self._pop()
            if not self.frames:
                raise VmError("RET outside a function")
            self.pc, self.locals = self.frames.pop()
            s.append(value)
        elif op == MAKELIST:
            items = [self._pop() for _ in range(arg)][::-1]
            s.append(items)
        elif op == INDEX:
            i, a = self._pop(), self._pop()
            try:
                s.append(a[i])
            except (TypeError, IndexError, KeyError) as exc:
                raise VmError(f"index failed: {exc}") from None
        elif op == SETINDEX:
            v, i, a = self._pop(), self._pop(), self._pop()
            try:
                a[i] = v
            except (TypeError, IndexError) as exc:
                raise VmError(f"setindex failed: {exc}") from None
        elif op == LEN:
            a = self._pop()
            try:
                s.append(len(a))
            except TypeError as exc:
                raise VmError(str(exc)) from None
        elif op == APPEND:
            v, a = self._pop(), self._pop()
            if not isinstance(a, list):
                raise VmError("push() needs a list")
            a.append(v)
            s.append(0)
        elif op == EMIT:
            self.output.append(self._pop())
        elif op == SYS:
            name, nargs = arg
            fn = self.syscalls.get(name)
            if fn is None:
                raise VmError(f"syscall {name!r} denied or unknown")
            args = [self._pop() for _ in range(nargs)][::-1]
            s.append(fn(*args))
        elif op == HALT:
            self.halted = True
        else:
            raise VmError(f"unknown opcode {op!r}")
