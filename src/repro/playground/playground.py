"""The playground proper: verify, confine, meter, run (§3.6, §5.8).

Flow for ``spec.mobile_code = <lifn>``:

1. **download** the code bundle from the replicated file service (the
   read verifies the LIFN's content hash — integrity);
2. **verify authenticity**: the bundle is signed; the signer must be
   trusted for the "sign-code" purpose in this playground's policy;
3. **verify rights**: the rights the code *declares* must be within what
   this playground *grants* that signer;
4. **run confined**: SnipeScript in the VM, in slices charged to the
   task's CPU account, with step/memory quotas and a syscall table
   containing exactly the granted rights. Violations are logged with the
   daemon (§3.6 "logging access violations and excess resource use").

VM snapshots land in the task's ``checkpoint_state`` after every slice,
so mobile code is checkpointable and migratable for free — the §5.8
"hooks for checkpointing, restart, and process migration".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set, Tuple

from repro.daemon.daemon import SnipeDaemon, SpawnError
from repro.daemon.tasks import QuotaExceeded, TaskInfo, TaskSpec, new_task_urn
from repro.files.client import FileClient, FileError
from repro.playground.lang import CompileError, compile_source
from repro.playground.vm import SnipeVM, VmError, VmQuotaError
from repro.rcds import uri as uri_mod
from repro.security.hashes import canonical_bytes
from repro.security.keys import KeyPair, sign, verify
from repro.security.trust import TrustPolicy
from repro.sim.events import defuse

if TYPE_CHECKING:  # pragma: no cover
    pass


class CodeVerificationError(Exception):
    """Bad signature, untrusted signer, or rights exceeding the grant."""


def sign_mobile_code(
    source: str, signer_urn: str, signer_keys: KeyPair, rights: Tuple[str, ...] = ()
) -> Dict[str, Any]:
    """Produce a signed code bundle suitable for a file server."""
    body = canonical_bytes(
        {"source": source, "signer": signer_urn, "rights": tuple(rights)}
    )
    return {
        "source": source,
        "signer": signer_urn,
        "rights": tuple(rights),
        "signature": sign(signer_keys, body),
    }


class Playground:
    """Per-host mobile-code executor, attached to the host's daemon."""

    def __init__(
        self,
        daemon: SnipeDaemon,
        trust: TrustPolicy,
        grants: Optional[Dict[str, Set[str]]] = None,
        slice_steps: int = 2000,
        sec_per_step: float = 1e-6,
        default_max_steps: int = 10_000_000,
        default_max_cells: int = 100_000,
    ) -> None:
        self.daemon = daemon
        self.sim = daemon.sim
        self.host = daemon.host
        self.trust = trust
        #: signer URN -> set of rights this playground grants that signer.
        self.grants = grants or {}
        self.slice_steps = slice_steps
        self.sec_per_step = sec_per_step
        self.default_max_steps = default_max_steps
        self.default_max_cells = default_max_cells
        self.files = FileClient(daemon.host, daemon.rc)
        self.runs = 0
        self.rejections = 0
        daemon.playground = self
        if daemon.rc is not None:
            # Advertise capabilities in RC metadata (§5.8: "a playground's
            # capabilities are therefore advertised as RCDS metadata").
            defuse(
                self.sim.process(self._advertise(), name=f"pg-adv:{self.host.name}")
            )

    def _advertise(self):
        yield self.daemon.rc.update(
            uri_mod.host_url(self.host.name),
            {
                "playground": {
                    "languages": ["snipescript"],
                    "quotas": True,
                    "checkpointing": True,
                }
            },
        )

    # -- verification ---------------------------------------------------------
    def verify_bundle(self, bundle: Dict[str, Any]) -> None:
        """Authenticity + rights checks; raises on any failure."""
        signer = bundle.get("signer")
        rights = tuple(bundle.get("rights", ()))
        body = canonical_bytes(
            {"source": bundle.get("source"), "signer": signer, "rights": rights}
        )
        if not self.trust.trusts(signer, "sign-code"):
            self.rejections += 1
            raise CodeVerificationError(f"signer {signer!r} not trusted for sign-code")
        key = self.trust.anchor_key(signer)
        if key is None or not verify(key, body, bundle.get("signature", 0)):
            self.rejections += 1
            raise CodeVerificationError(f"signature from {signer!r} invalid")
        granted = self.grants.get(signer, set())
        excess = set(rights) - granted
        if excess:
            self.rejections += 1
            raise CodeVerificationError(
                f"code requests rights {sorted(excess)} beyond the grant"
            )

    # -- spawn path (called by the daemon) -------------------------------------
    def spawn_mobile(self, spec: TaskSpec) -> TaskInfo:
        info = TaskInfo(
            urn=new_task_urn(spec, self.host.name, sim=self.sim),
            spec=spec,
            host=self.host.name,
            started_at=self.sim.now,
        )
        ctx = self.daemon.context_factory(self.daemon, info)
        self.daemon._launch(info, ctx, self._run_mobile(ctx, spec))
        return info

    # -- execution -------------------------------------------------------------
    def _syscall_table(self, ctx, rights: Set[str], outbox: List) -> Dict[str, Any]:
        """Host calls available to the VM, gated on granted rights.

        Side-effecting calls queue their effect; the run loop flushes the
        queue between slices (syscalls themselves must be synchronous).
        """
        table: Dict[str, Any] = {
            "hostname": lambda: self.host.name,
        }
        if "clock" in rights:
            table["now"] = lambda: self.sim.now
        if "metadata" in rights:
            table["publish"] = lambda k, v: (outbox.append(("publish", k, v)), 0)[1]
        if "net" in rights:
            table["send"] = lambda dst, payload: (
                outbox.append(("send", dst, payload)),
                0,
            )[1]

        def denied(name):
            def call(*_args):
                self.daemon.log_violation(ctx.urn, f"syscall:{name}")
                raise VmError(f"syscall {name!r} denied: missing right")

            return call

        for name, right in (("now", "clock"), ("publish", "metadata"), ("send", "net")):
            if name not in table:
                table[name] = denied(name)
        return table

    def _run_mobile(self, ctx, spec: TaskSpec):
        # 1-2-3: download, verify, check rights.
        try:
            result = yield self.files.read(spec.mobile_code)
        except FileError as exc:
            raise SpawnError(f"mobile code {spec.mobile_code!r}: {exc}") from None
        bundle = result["payload"]
        self.verify_bundle(bundle)
        rights = set(bundle.get("rights", ()))
        try:
            code = compile_source(bundle["source"])
        except CompileError as exc:
            raise SpawnError(f"mobile code does not compile: {exc}") from None
        # 4: confine and meter.
        max_steps = self.default_max_steps
        if spec.cpu_quota is not None:
            max_steps = int(spec.cpu_quota / self.sec_per_step)
        max_cells = self.default_max_cells
        if spec.memory_quota is not None:
            max_cells = int(spec.memory_quota)
        outbox: List = []
        vm = SnipeVM(code, max_steps=max_steps, max_cells=max_cells,
                     syscalls=self._syscall_table(ctx, rights, outbox))
        snap = ctx.checkpoint_state.get("vm")
        if snap is not None:
            vm.restore(snap)  # resuming after migration/restart
        self.runs += 1
        while True:
            try:
                done = vm.run(max_slice=self.slice_steps)
            except VmQuotaError as exc:
                self.daemon.log_violation(ctx.urn, "vm-quota")
                raise QuotaExceeded(f"{ctx.urn}: {exc}") from None
            ctx.checkpoint_state["vm"] = vm.snapshot()
            # Flush queued side effects between slices.
            while outbox:
                effect = outbox.pop(0)
                if effect[0] == "publish":
                    yield ctx.publish({effect[1]: effect[2]})
                elif effect[0] == "send":
                    yield ctx.send(effect[1], effect[2], tag="mobile")
            if done:
                break
            yield ctx.compute(self.slice_steps * self.sec_per_step)
        results_to = spec.params.get("results_to")
        if results_to:
            yield ctx.send(results_to, list(vm.output), tag="mobile-results")
        return list(vm.output)
