"""SnipeScript: the machine-independent mobile-code language.

A small imperative language compiled to :mod:`repro.playground.vm`
bytecode. Enough to write real mobile agents (the paper's §3.6 workloads:
indexing, filtering, aggregation) while remaining trivially confinable:

.. code-block:: text

    var total = 0;
    fun weight(x) { return x * x; }
    var readings = [3, 1, 4, 1, 5];
    var i = 0;
    while (i < len(readings)) {
        total = total + weight(readings[i]);
        i = i + 1;
    }
    emit total;

Calls to names that are neither user functions nor builtins (``len``,
``push``) compile to ``SYS`` instructions — host calls the playground
grants or denies per the code's signed rights.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Tuple

from repro.playground import vm as V


class CompileError(Exception):
    """Syntax or semantic error in SnipeScript source."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|\#[^\n]*)
  | (?P<num>\d+\.\d+|\d+)
  | (?P<str>"(?:[^"\\]|\\.)*")
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>==|!=|<=|>=|[-+*/%<>=(){}\[\],;])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"var", "fun", "if", "else", "while", "return", "emit", "and", "or", "not"}


def tokenize(source: str) -> List[Tuple[str, Any]]:
    tokens: List[Tuple[str, Any]] = []
    pos = 0
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise CompileError(f"bad character {source[pos]!r} at offset {pos}")
        pos = m.end()
        if m.lastgroup == "ws":
            continue
        if m.lastgroup == "num":
            text = m.group()
            tokens.append(("num", float(text) if "." in text else int(text)))
        elif m.lastgroup == "str":
            raw = m.group()[1:-1]
            tokens.append(("str", raw.replace('\\"', '"').replace("\\n", "\n")))
        elif m.lastgroup == "name":
            text = m.group()
            tokens.append(("kw" if text in _KEYWORDS else "name", text))
        else:
            tokens.append(("op", m.group()))
    tokens.append(("eof", None))
    return tokens


class _Compiler:
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0
        # Pre-scan for function declarations so forward calls resolve as
        # CALLs rather than being misread as host syscalls.
        self._declared_funs = {
            self.tokens[i + 1][1]
            for i in range(len(self.tokens) - 1)
            if self.tokens[i] == ("kw", "fun") and self.tokens[i + 1][0] == "name"
        }
        self.code: List[Tuple[str, Any]] = []
        self.functions: Dict[str, Tuple[int, int]] = {}  # name -> (addr, arity)
        self._fn_bodies: List[Tuple[str, List[str], List]] = []
        self._call_patches: List[Tuple[int, str, int]] = []  # code idx, fn, nargs
        self.locals: Optional[Dict[str, int]] = None  # None = global scope

    # -- token helpers -----------------------------------------------------
    def peek(self) -> Tuple[str, Any]:
        return self.tokens[self.pos]

    def next(self) -> Tuple[str, Any]:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, kind: str, value: Any = None) -> Any:
        tok = self.next()
        if tok[0] != kind or (value is not None and tok[1] != value):
            raise CompileError(f"expected {value or kind}, got {tok[1]!r}")
        return tok[1]

    def accept(self, kind: str, value: Any) -> bool:
        if self.peek() == (kind, value):
            self.pos += 1
            return True
        return False

    def emit(self, op: str, arg: Any = None) -> int:
        self.code.append((op, arg))
        return len(self.code) - 1

    # -- program ------------------------------------------------------------
    def compile(self) -> List[Tuple[str, Any]]:
        while self.peek()[0] != "eof":
            self.statement()
        self.emit(V.HALT)
        # Compile function bodies after the main code.
        for name, params, body_tokens in self._fn_bodies:
            self.functions[name] = (len(self.code), len(params))
            saved, self.tokens, self.pos = (self.tokens, self.pos), body_tokens, 0
            self.locals = {p: i for i, p in enumerate(params)}
            self.expect("op", "{")
            while not self.accept("op", "}"):
                self.statement()
            self.locals = None
            (self.tokens, self.pos) = saved
            # Implicit `return 0` falls off the end.
            self.emit(V.PUSH, 0)
            self.emit(V.RET)
        # Patch call sites now that addresses are known.
        for idx, fname, nargs in self._call_patches:
            if fname not in self.functions:
                raise CompileError(f"undefined function {fname!r}")
            addr, arity = self.functions[fname]
            if arity != nargs:
                raise CompileError(f"{fname}() takes {arity} args, got {nargs}")
            self.code[idx] = (V.CALL, (addr, nargs))
        return self.code

    # -- statements ----------------------------------------------------------
    def statement(self) -> None:
        kind, value = self.peek()
        if (kind, value) == ("kw", "var"):
            self.next()
            name = self.expect("name")
            self.expect("op", "=")
            self.expression()
            self._store(name, declare=True)
            self.expect("op", ";")
        elif (kind, value) == ("kw", "fun"):
            self.next()
            name = self.expect("name")
            self.expect("op", "(")
            params = []
            if not self.accept("op", ")"):
                params.append(self.expect("name"))
                while self.accept("op", ","):
                    params.append(self.expect("name"))
                self.expect("op", ")")
            body = self._capture_block()
            self._fn_bodies.append((name, params, body))
            # Pre-register arity so calls before the body compiles resolve.
            self.functions.setdefault(name, (-1, len(params)))
        elif (kind, value) == ("kw", "if"):
            self.next()
            self.expect("op", "(")
            self.expression()
            self.expect("op", ")")
            jz = self.emit(V.JZ, None)
            self.block()
            if self.accept("kw", "else"):
                jmp = self.emit(V.JMP, None)
                self.code[jz] = (V.JZ, len(self.code))
                self.block()
                self.code[jmp] = (V.JMP, len(self.code))
            else:
                self.code[jz] = (V.JZ, len(self.code))
        elif (kind, value) == ("kw", "while"):
            self.next()
            top = len(self.code)
            self.expect("op", "(")
            self.expression()
            self.expect("op", ")")
            jz = self.emit(V.JZ, None)
            self.block()
            self.emit(V.JMP, top)
            self.code[jz] = (V.JZ, len(self.code))
        elif (kind, value) == ("kw", "return"):
            self.next()
            self.expression()
            self.expect("op", ";")
            self.emit(V.RET)
        elif (kind, value) == ("kw", "emit"):
            self.next()
            self.expression()
            self.expect("op", ";")
            self.emit(V.EMIT)
        elif kind == "name" and self.tokens[self.pos + 1] == ("op", "="):
            name = self.expect("name")
            self.next()  # '='
            self.expression()
            self._store(name)
            self.expect("op", ";")
        elif kind == "name" and self.tokens[self.pos + 1] == ("op", "["):
            # Could be `a[i] = v;` or an expression statement starting with
            # an index; scan ahead for `] =` at depth 0 to disambiguate.
            if self._is_index_assignment():
                name = self.expect("name")
                self._load(name)
                self.expect("op", "[")
                self.expression()
                self.expect("op", "]")
                self.expect("op", "=")
                self.expression()
                self.emit(V.SETINDEX)
                self.expect("op", ";")
            else:
                self.expression()
                self.emit(V.POP)
                self.expect("op", ";")
        else:
            self.expression()
            self.emit(V.POP)
            self.expect("op", ";")

    def _is_index_assignment(self) -> bool:
        depth = 0
        i = self.pos + 1
        while i < len(self.tokens):
            tok = self.tokens[i]
            if tok == ("op", "["):
                depth += 1
            elif tok == ("op", "]"):
                depth -= 1
                if depth == 0:
                    return self.tokens[i + 1] == ("op", "=") and self.tokens[
                        i + 2
                    ] != ("op", "=")
            elif tok == ("op", ";"):
                return False
            i += 1
        return False

    def _capture_block(self) -> List[Tuple[str, Any]]:
        """Capture a {...} token run (for deferred function compilation)."""
        if self.peek() != ("op", "{"):
            raise CompileError("expected '{' after function signature")
        depth = 0
        start = self.pos
        while True:
            tok = self.next()
            if tok == ("op", "{"):
                depth += 1
            elif tok == ("op", "}"):
                depth -= 1
                if depth == 0:
                    return self.tokens[start:self.pos] + [("eof", None)]
            elif tok[0] == "eof":
                raise CompileError("unterminated function body")

    def block(self) -> None:
        self.expect("op", "{")
        while not self.accept("op", "}"):
            self.statement()

    # -- variables -------------------------------------------------------------
    def _store(self, name: str, declare: bool = False) -> None:
        if self.locals is not None:
            if name in self.locals:
                self.emit(V.STOREL, self.locals[name])
                return
            if declare:
                idx = len(self.locals)
                self.locals[name] = idx
                self.emit(V.STOREL, idx)
                return
        self.emit(V.STOREG, name)

    def _load(self, name: str) -> None:
        if self.locals is not None and name in self.locals:
            self.emit(V.LOADL, self.locals[name])
        else:
            self.emit(V.LOADG, name)

    # -- expressions (precedence climbing) -----------------------------------------
    def expression(self) -> None:
        self._or()

    def _or(self) -> None:
        self._and()
        while self.accept("kw", "or"):
            # Short-circuit: if lhs truthy, skip rhs and push 1.
            jz = self.emit(V.JZ, None)
            self.emit(V.PUSH, 1)
            jmp = self.emit(V.JMP, None)
            self.code[jz] = (V.JZ, len(self.code))
            self._and()
            self.emit(V.NOT)
            self.emit(V.NOT)  # normalise to 0/1
            self.code[jmp] = (V.JMP, len(self.code))

    def _and(self) -> None:
        self._equality()
        while self.accept("kw", "and"):
            jz = self.emit(V.JZ, None)
            self._equality()
            self.emit(V.NOT)
            self.emit(V.NOT)
            jmp = self.emit(V.JMP, None)
            self.code[jz] = (V.JZ, len(self.code))
            self.emit(V.PUSH, 0)
            self.code[jmp] = (V.JMP, len(self.code))

    def _binary(self, sub, ops: Dict[str, str]) -> None:
        sub()
        while self.peek()[0] == "op" and self.peek()[1] in ops:
            op = self.next()[1]
            sub()
            self.emit(ops[op])

    def _equality(self) -> None:
        self._binary(self._comparison, {"==": V.EQ, "!=": V.NE})

    def _comparison(self) -> None:
        self._binary(self._term, {"<": V.LT, "<=": V.LE, ">": V.GT, ">=": V.GE})

    def _term(self) -> None:
        self._binary(self._factor, {"+": V.ADD, "-": V.SUB})

    def _factor(self) -> None:
        self._binary(self._unary, {"*": V.MUL, "/": V.DIV, "%": V.MOD})

    def _unary(self) -> None:
        if self.accept("op", "-"):
            self._unary()
            self.emit(V.NEG)
        elif self.accept("kw", "not"):
            self._unary()
            self.emit(V.NOT)
        else:
            self._postfix()

    def _postfix(self) -> None:
        self._primary()
        while True:
            if self.accept("op", "["):
                self.expression()
                self.expect("op", "]")
                self.emit(V.INDEX)
            else:
                return

    def _primary(self) -> None:
        kind, value = self.next()
        if kind == "num" or kind == "str":
            self.emit(V.PUSH, value)
        elif kind == "name":
            if self.peek() == ("op", "("):
                self._call(value)
            else:
                self._load(value)
        elif (kind, value) == ("op", "["):
            n = 0
            if not self.accept("op", "]"):
                self.expression()
                n = 1
                while self.accept("op", ","):
                    self.expression()
                    n += 1
                self.expect("op", "]")
            self.emit(V.MAKELIST, n)
        elif (kind, value) == ("op", "("):
            self.expression()
            self.expect("op", ")")
        else:
            raise CompileError(f"unexpected token {value!r}")

    def _call(self, name: str) -> None:
        self.expect("op", "(")
        nargs = 0
        if not self.accept("op", ")"):
            self.expression()
            nargs = 1
            while self.accept("op", ","):
                self.expression()
                nargs += 1
            self.expect("op", ")")
        if name == "len":
            if nargs != 1:
                raise CompileError("len() takes 1 argument")
            self.emit(V.LEN)
        elif name == "push":
            if nargs != 2:
                raise CompileError("push() takes 2 arguments")
            self.emit(V.APPEND)
        elif name in self._declared_funs:
            self._call_patches.append((self.emit(V.CALL, None), name, nargs))
        else:
            # Unknown name: a host syscall, gated by the playground.
            self.emit(V.SYS, (name, nargs))


def compile_source(source: str) -> List[Tuple[str, Any]]:
    """Compile SnipeScript source to VM bytecode."""
    return _Compiler(source).compile()
