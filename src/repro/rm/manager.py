"""The resource manager service (§3.5, §4).

Selection is metadata-driven: the RM queries host metadata (including the
daemons' published load gauges) from the RC catalog, filters by the
spec's requirements, and picks the least loaded candidate. In *active*
mode it then spawns as the requester's proxy (and may later suspend,
kill, or migrate the task); in *passive* mode it only records a
reservation and leaves the spawn to the requester.

Allocation goals (§3.5 "attempting to adhere to resource allocation
goals") are per-owner concurrency caps enforced before selection.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.daemon.daemon import DAEMON_PORT
from repro.daemon.tasks import TaskSpec
from repro.rcds import uri as uri_mod
from repro.rcds.client import RCClient
from repro.rm.selection import rank_hosts
from repro.rpc import RpcClient, RpcError, RpcServer

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host

#: Well-known resource manager port.
RM_PORT = 3600

PASSIVE = "passive"
ACTIVE = "active"

_tokens = itertools.count(1)


class AllocationError(Exception):
    """No suitable host, or an allocation goal would be violated."""


class ResourceManager:
    """One RM instance. Run several (on different hosts) for redundancy —
    they share no private state, so any of them can serve any request."""

    def __init__(
        self,
        host: "Host",
        rc: RCClient,
        port: int = RM_PORT,
        mode: str = ACTIVE,
        managed_hosts: Optional[List[str]] = None,
        goals: Optional[Dict[str, int]] = None,
        secret: Optional[bytes] = None,
        service_time: float = 0.0,
    ) -> None:
        if mode not in (ACTIVE, PASSIVE):
            raise ValueError(f"unknown RM mode {mode!r}")
        self.sim = host.sim
        self.host = host
        self.rc = rc
        self.port = port
        self.mode = mode
        self.managed_hosts = managed_hosts
        self.goals = goals or {}
        #: token -> {"owner", "host", "urn" (active mode)}
        self.allocations: Dict[int, Dict] = {}
        self.requests = 0
        self.rejects = 0
        metrics = self.sim.obs.metrics
        self._m_requests = metrics.counter("rm.requests")
        self._m_rejects = metrics.counter("rm.rejects")
        #: Request arrival to successful allocation (catalog queries,
        #: candidate ranking, and — in active mode — the daemon spawn RPC).
        self._m_spawn_latency = metrics.histogram("rm.spawn_latency")
        self._rng = self.sim.rng.stream(f"rm.{host.name}:{port}")
        self.rpc = RpcServer(host, port, secret=secret, service_time=service_time)
        self.rpc.register("rm.request", self._h_request)
        self.rpc.register("rm.release", self._h_release)
        self.rpc.register("rm.kill", self._h_kill)
        self.rpc.register("rm.suspend", self._h_suspend)
        self.rpc.register("rm.resume", self._h_resume)
        self.rpc.register("rm.migrate", self._h_migrate)
        self.rpc.register("rm.status", self._h_status)
        self._client = RpcClient(host, secret=secret)
        self.sim.process(self._register(), name=f"rm-reg:{host.name}")

    def _register(self):
        try:
            yield self.rc.update(
                uri_mod.service_urn("rm"),
                {f"location:{self.host.name}:{self.port}": True},
            )
        except Exception:
            pass

    # -- selection ------------------------------------------------------------
    def _owner_allocations(self, owner: str) -> int:
        return sum(1 for a in self.allocations.values() if a["owner"] == owner)

    def _collect_host_metadata(self):
        """Pull candidate host metadata from the catalog."""
        urls = yield self.rc.query("snipe://")
        metadata = {}
        for url in urls:
            host_name = uri_mod.host_of(url)
            if host_name is None or not url.endswith("/"):
                continue  # skip sub-resources like snipe://h/fileserver
            if self.managed_hosts is not None and host_name not in self.managed_hosts:
                continue
            try:
                assertions = yield self.rc.lookup(url)
            except Exception:
                continue
            if "daemon" in assertions:
                metadata[host_name] = assertions
        return metadata

    def select_hosts(self, spec: TaskSpec):
        """Ranked candidate hosts for *spec* (a process)."""
        return self.sim.process(self._select(spec), name="rm-select")

    def _select(self, spec: TaskSpec):
        metadata = yield from self._collect_host_metadata()
        return rank_hosts(spec, metadata, rng=self._rng, now=self.sim.now,
                          health=self.host.health)

    # -- RPC handlers -----------------------------------------------------------
    def _h_request(self, args: Dict):
        return self._request(args["spec"], args.get("owner", "anonymous"))

    def _request(self, spec: TaskSpec, owner: str):
        self.requests += 1
        self._m_requests.inc()
        t0 = self.sim.now
        goal = self.goals.get(owner)
        if goal is not None and self._owner_allocations(owner) >= goal:
            self.rejects += 1
            self._m_rejects.inc()
            raise AllocationError(
                f"allocation goal: {owner} already holds {goal} allocations"
            )
        ranked = yield from self._select(spec)
        if not ranked:
            self.rejects += 1
            self._m_rejects.inc()
            raise AllocationError(f"no host satisfies {spec.program!r} requirements")
        token = next(_tokens)
        if self.mode == PASSIVE:
            # Reserve only; the requester performs the spawn itself (§3.5).
            chosen = ranked[0]
            self.allocations[token] = {"owner": owner, "host": chosen, "urn": None}
            self._m_spawn_latency.observe(self.sim.now - t0)
            return {"token": token, "host": chosen, "mode": PASSIVE}
        errors = []
        for candidate in ranked:
            try:
                result = yield self._client.call(
                    candidate, DAEMON_PORT, "daemon.spawn",
                    timeout=2.0, spec=spec, direct=True,
                )
                self.allocations[token] = {
                    "owner": owner, "host": candidate, "urn": result["urn"],
                }
                self._m_spawn_latency.observe(self.sim.now - t0)
                return {
                    "token": token, "host": candidate,
                    "urn": result["urn"], "mode": ACTIVE,
                }
            except RpcError as exc:
                errors.append(f"{candidate}: {exc}")
                continue
        self.rejects += 1
        self._m_rejects.inc()
        raise AllocationError(f"all candidates failed: {errors}")

    def _h_release(self, args: Dict) -> bool:
        return self.allocations.pop(args["token"], None) is not None

    def _task_call(self, urn: str, method: str):
        """Forward a control action to the daemon supervising *urn*."""
        meta = yield self.rc.lookup(urn)
        host = (meta.get("host") or {}).get("value")
        if host is None:
            raise KeyError(f"unknown task {urn!r}")
        result = yield self._client.call(host, DAEMON_PORT, method, timeout=2.0, urn=urn)
        return result

    def _h_kill(self, args: Dict):
        return self._task_call(args["urn"], "daemon.kill")

    def _h_suspend(self, args: Dict):
        return self._task_call(args["urn"], "daemon.suspend")

    def _h_resume(self, args: Dict):
        return self._task_call(args["urn"], "daemon.resume")

    def _h_migrate(self, args: Dict):
        """RM-initiated migration (§3.5: 'or (if the code is mobile) migrate
        processes between hosts'): checkpoint out, respawn elsewhere."""
        return self._migrate(args["urn"], args.get("to"))

    def _migrate(self, urn: str, to: Optional[str]):
        meta = yield self.rc.lookup(urn)
        old_host = (meta.get("host") or {}).get("value")
        if old_host is None:
            raise KeyError(f"unknown task {urn!r}")
        shipment = yield self._client.call(
            old_host, DAEMON_PORT, "daemon.migrate_out", timeout=2.0, urn=urn
        )
        spec: TaskSpec = shipment["spec"]
        new_spec = TaskSpec(
            program=spec.program,
            params=spec.params,
            arch=spec.arch,
            os=spec.os,
            min_memory=spec.min_memory,
            cpu_quota=spec.cpu_quota,
            memory_quota=spec.memory_quota,
            name=spec.name,
            initial_state=shipment["state"],
            mobile_code=spec.mobile_code,
            owner=spec.owner,
            urn_override=urn,  # the process keeps its URN when it moves
        )
        if to is None:
            ranked = yield from self._select(new_spec)
            ranked = [h for h in ranked if h != old_host]
            if not ranked:
                raise AllocationError(f"nowhere to migrate {urn!r}")
            to = ranked[0]
        result = yield self._client.call(
            to, DAEMON_PORT, "daemon.spawn", timeout=2.0, spec=new_spec, direct=True
        )
        return {"urn": result["urn"], "from": old_host, "to": to}

    def _h_status(self, args: Dict) -> Dict:
        return {
            "mode": self.mode,
            "requests": self.requests,
            "rejects": self.rejects,
            "allocations": len(self.allocations),
        }
