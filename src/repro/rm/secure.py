"""Secure spawning: the §4 protocol wired end-to-end.

    "Before the resource manager will grant access to a resource, it must
    have two verifiable certificates… the resource manager then issues
    its own signed statement authorizing use of the requested resources
    by that process, and transmits that statement to the hosts where the
    resources reside."

:class:`SecureSpawner` extends a :class:`ResourceManager` with an
``rm.secure_request`` method implementing exactly that flow; daemons put
into *authorized mode* (:func:`require_spawn_authorization`) refuse any
spawn not accompanied by a verifiable authorization.

The §4 efficiency optimisation is implemented too: "the resource manager
may instead maintain an authenticated connection with each of its
managed resources … and transmit the resource authorization without
signatures". With ``use_sessions=True``, the RM runs a DH handshake with
each daemon once, then MAC-seals authorizations over the session — the
``signatures_issued`` counter shows the RSA operations saved.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Set

from repro.daemon.daemon import DAEMON_PORT, SnipeDaemon
from repro.rcds import uri as uri_mod
from repro.rm.manager import ResourceManager
from repro.security.authz import (
    AccessGrant,
    AuthorizationError,
    HostAttestation,
    ResourceAuthorization,
    authorize,
)
from repro.security.channels import SecureChannel
from repro.security.keys import KeyPair, PublicKey, verify
from repro.security.trust import TrustPolicy

if TYPE_CHECKING:  # pragma: no cover
    pass


class SecureSpawner:
    """RM-side verification + authorization issuance."""

    def __init__(
        self,
        rm: ResourceManager,
        manager_urn: str,
        manager_keys: KeyPair,
        user_keys: Dict[str, PublicKey],
        host_keys: Dict[str, PublicKey],
        permissions: Dict[str, Set[str]],
        use_sessions: bool = False,
    ) -> None:
        self.rm = rm
        self.sim = rm.sim
        self.manager_urn = manager_urn
        self.manager_keys = manager_keys
        #: The RM doubles as CA (§4): users/hosts exposed their keys only
        #: to this trusted party, which is why these are pinned locally.
        self.user_keys = user_keys
        self.host_keys = host_keys
        self.permissions = permissions
        self.use_sessions = use_sessions
        self._sessions: Dict[str, SecureChannel] = {}
        self.signatures_issued = 0
        self.denials = 0
        rm.rpc.register("rm.secure_request", self._h_secure_request)

    def _h_secure_request(self, args: Dict):
        return self._secure_request(args["spec"], args["grant"], args["attestation"])

    def _secure_request(self, spec, grant: AccessGrant, attestation: HostAttestation):
        user_key = self.user_keys.get(grant.user)
        host_key = self.host_keys.get(attestation.host)
        try:
            authorization = authorize(
                self.manager_urn,
                self.manager_keys,
                TrustPolicy(),
                grant,
                attestation,
                user_key,
                host_key,
                self.permissions.get(grant.user, set()),
            )
            self.signatures_issued += 1
        except AuthorizationError:
            self.denials += 1
            raise
        # The process keeps the identity the user granted access to.
        spec.urn_override = grant.process
        target = uri_mod.host_of(grant.host)
        if target is None:
            raise AuthorizationError(f"grant names unparseable host {grant.host!r}")
        if self.use_sessions:
            result = yield from self._spawn_via_session(target, spec, authorization)
        else:
            result = yield self.rm._client.call(
                target, DAEMON_PORT, "daemon.spawn",
                spec=spec, authorization=authorization,
            )
        return result

    # -- authenticated-session path (§4 optimisation) ------------------------
    def _spawn_via_session(self, target: str, spec, authorization: ResourceAuthorization):
        channel = self._sessions.get(target)
        if channel is None:
            rng = self.sim.rng.stream(f"secure-rm.{self.manager_urn}.{target}")
            channel = SecureChannel(rng)
            reply = yield self.rm._client.call(
                target, DAEMON_PORT, "daemon.secure_hello",
                peer=self.manager_urn, public=channel.public,
            )
            channel.establish(reply["public"])
            self._sessions[target] = channel
        # The sealed statement carries no RSA signature: the MAC'd session
        # is the authentication ("without signatures").
        body = {
            "manager": authorization.manager,
            "process": authorization.process,
            "host": authorization.host,
            "resources": list(authorization.resources),
        }
        result = yield self.rm._client.call(
            target, DAEMON_PORT, "daemon.spawn",
            spec=spec, sealed_authorization=channel.seal(body),
        )
        return result


def require_spawn_authorization(
    daemon: SnipeDaemon, rm_urn: str, rm_public: PublicKey
) -> None:
    """Put *daemon* in authorized mode: spawns need a verifiable §4
    authorization from the trusted RM (signed, or MAC-sealed over an
    established session)."""
    daemon._spawn_trust = (rm_urn, rm_public)
    daemon._rm_sessions = {}
    daemon.spawn_denials = 0

    original = daemon._h_spawn

    def guarded_spawn(args: Dict):
        auth = args.get("authorization")
        sealed = args.get("sealed_authorization")
        if auth is not None:
            if not isinstance(auth, ResourceAuthorization):
                daemon.spawn_denials += 1
                raise PermissionError("malformed authorization")
            if auth.manager != rm_urn or not verify(rm_public, auth.body(), auth.signature):
                daemon.spawn_denials += 1
                raise PermissionError("authorization signature invalid")
            body = {"process": auth.process, "host": auth.host}
        elif sealed is not None:
            # Session path: the MAC check IS the authentication.
            channel = daemon._rm_sessions.get(rm_urn)
            if channel is None:
                daemon.spawn_denials += 1
                raise PermissionError("no established session with the RM")
            try:
                opened = channel.open(sealed)
            except Exception as exc:
                daemon.spawn_denials += 1
                raise PermissionError(f"session authorization rejected: {exc}")
            body = {"process": opened["process"], "host": opened["host"]}
        else:
            daemon.spawn_denials += 1
            raise PermissionError("spawn requires a resource authorization")
        spec = args["spec"]
        if body["host"] != uri_mod.host_url(daemon.host.name):
            daemon.spawn_denials += 1
            raise PermissionError("authorization is for a different host")
        if spec.urn_override != body["process"]:
            daemon.spawn_denials += 1
            raise PermissionError("authorization names a different process")
        return original(args)

    daemon.rpc.handlers["daemon.spawn"] = guarded_spawn

    def secure_hello(args: Dict):
        rng = daemon.sim.rng.stream(f"secure-daemon.{daemon.host.name}.{args['peer']}")
        channel = SecureChannel(rng)
        channel.establish(args["public"])
        daemon._rm_sessions[args["peer"]] = channel
        return {"public": channel.public}

    daemon.rpc.register("daemon.secure_hello", secure_hello)
