"""Resource managers (§3.5) — descendants of PVM's General Resource Manager.

    "Resource managers are tasked with managing resources and monitoring
    the state of the resources they manage… For the sake of redundancy,
    any host may be managed by multiple resource managers."

* :class:`ResourceManager` — matches spawn requests to hosts using RC
  host metadata (requirements + load), in *passive* mode (reservations)
  or *active* mode (spawns as the requester's proxy, §3.5); enforces
  per-owner allocation goals; can suspend/kill/migrate managed tasks.
* :class:`RmClient` — requester-side redundancy: discovers RMs from RC
  service metadata and fails over between them.
"""

from repro.rm.manager import RM_PORT, AllocationError, ResourceManager
from repro.rm.client import RmClient
from repro.rm.selection import rank_hosts

__all__ = [
    "AllocationError",
    "RM_PORT",
    "ResourceManager",
    "RmClient",
    "rank_hosts",
]
