"""Host selection: requirement matching + load ranking over RC metadata.

The daemons publish host metadata (§5.2.1) including a periodically
refreshed ``load`` gauge; selection filters on the spec's requirements
and ranks by that load. This is deliberately metadata-driven — the RM has
no private state about hosts, which is what makes RMs freely replicable
(any RM reconstructs its world view from the catalog).
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional

from repro.daemon.tasks import TaskSpec


def host_matches(spec: TaskSpec, assertions: Dict[str, Dict[str, Any]]) -> bool:
    """Does a host (by its RC metadata) satisfy the spec's requirements?"""

    def val(key, default=None):
        info = assertions.get(key)
        return info["value"] if info else default

    if spec.arch is not None and val("arch") != spec.arch:
        return False
    if spec.os is not None and val("os") != spec.os:
        return False
    if spec.min_memory > (val("memory", 0.0) or 0.0):
        return False
    if spec.mobile_code is not None:
        # §5.8: "A playground's capabilities are therefore advertised as
        # RCDS metadata, which can be used by a process or resource
        # manager in scheduling mobile code."
        playground = val("playground")
        if not playground:
            return False
        if not playground.get("quotas", False):
            return False
    return True


def rank_hosts(
    spec: TaskSpec,
    host_metadata: Dict[str, Dict[str, Dict[str, Any]]],
    rng: Optional[random.Random] = None,
    now: Optional[float] = None,
    health=None,
) -> List[str]:
    """Candidate hosts for *spec*, least loaded first (ties shuffled).

    When *now* is given, hosts whose heartbeat lease has lapsed
    (``lease-expires`` < now) are excluded — the catalog may still carry
    their metadata, but a host that stopped refreshing its lease is
    presumed dead and must not receive placements.

    When *health* (a :class:`repro.robust.health.HealthBoard`) is given,
    quarantined hosts — zombies whose lease is perfectly fresh but whose
    differential score collapsed — sort after every non-quarantined
    candidate regardless of their advertised load, so new placements
    avoid them while they still exist as a last resort.
    """
    candidates = []
    for host, assertions in host_metadata.items():
        if not host_matches(spec, assertions):
            continue
        if now is not None:
            lease_info = assertions.get("lease-expires")
            if lease_info is not None and lease_info["value"] < now:
                continue
        load_info = assertions.get("load")
        load = load_info["value"] if load_info else 0.0
        quarantined = bool(health is not None and health.is_quarantined(host))
        candidates.append(((quarantined, load), host))
    if rng is not None:
        rng.shuffle(candidates)
    candidates.sort(key=lambda c: c[0])
    return [host for _, host in candidates]
