"""Requester-side RM redundancy (§3.5).

RMs register under ``urn:snipe:svc:rm``; a client discovers the current
set and fails over between them — because RMs keep no private state,
any replica can serve any request, which is exactly what makes "redundant
resource management processes" (§3) work.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.daemon.tasks import TaskSpec
from repro.rcds import uri as uri_mod
from repro.rcds.client import RCClient
from repro.rm.manager import AllocationError
from repro.robust import TIMEOUTS
from repro.robust.retry import RetryPolicy
from repro.rpc import RpcClient, RpcError

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host


class RmUnreachable(AllocationError):
    """No RM answered at all — transient, unlike a policy rejection."""


class RmClient:
    """Finds RMs via the catalog and issues requests with failover."""

    def __init__(
        self,
        host: "Host",
        rc: RCClient,
        secret: Optional[bytes] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.sim = host.sim
        self.host = host
        self.rc = rc
        self._rpc = RpcClient(host, secret=secret)
        self._rng = host.sim.rng.stream(f"rm-client.{host.name}")
        self.failovers = 0
        #: Rounds over the discovered manager set; a round that reaches no
        #: RM at all (RmUnreachable) is retried under this policy. Policy
        #: rejections (goals, no suitable host) never retry — every RM
        #: would answer the same.
        self.retry = retry or RetryPolicy.single()

    def managers(self):
        """Registered RMs as (host, port) pairs (a process)."""
        return self.sim.process(self._managers(), name="rm-discover")

    def _managers(self) -> List[Tuple[str, int]]:
        assertions = yield self.rc.lookup(uri_mod.service_urn("rm"))
        out = []
        for key, info in assertions.items():
            if key.startswith("location:") and info["value"]:
                hostname, port = key[len("location:"):].rsplit(":", 1)
                out.append((hostname, int(port)))
        return sorted(out)

    def request(self, spec: TaskSpec, owner: str = "anonymous",
                timeout: Optional[float] = None):
        """Ask any live RM to allocate/spawn per *spec* (a process)."""
        if timeout is None:
            timeout = TIMEOUTS["rm.request"]
        return self.sim.process(self._request(spec, owner, timeout), name="rm-request")

    def _request(self, spec: TaskSpec, owner: str, timeout: float):
        def one_round(_attempt: int):
            managers = yield from self._managers()
            if not managers:
                raise RmUnreachable("no resource managers registered")
            self._rng.shuffle(managers)
            # Quarantined managers sink to the back of the round: try the
            # healthy ones before spending the timeout budget on a probe.
            managers.sort(key=lambda m: self._rpc.breaker_open(*m))
            errors = []
            for rm_host, rm_port in managers:
                try:
                    result = yield self._rpc.call(
                        rm_host, rm_port, "rm.request", timeout=timeout,
                        spec=spec, owner=owner,
                    )
                    return result
                except RpcError as exc:
                    if "allocation goal" in str(exc) or "no host satisfies" in str(exc):
                        # Policy rejection: every RM will say the same; give up.
                        raise AllocationError(str(exc)) from None
                    self.failovers += 1
                    errors.append(f"{rm_host}:{rm_port}: {exc}")
            raise RmUnreachable(f"no RM reachable: {errors}")

        return (
            yield from self.retry.run(
                self.sim, one_round, retry_on=(RmUnreachable,),
                rng=self._rng, op="rm.request",
            )
        )

    def migrate(self, urn: str, to: Optional[str] = None,
                timeout: Optional[float] = None):
        """Ask any live RM to migrate *urn* (a process)."""
        if timeout is None:
            timeout = TIMEOUTS["rm.migrate"]
        return self.sim.process(self._migrate(urn, to, timeout), name=f"rm-migrate:{urn}")

    def _migrate(self, urn: str, to: Optional[str], timeout: float):
        managers = yield from self._managers()
        self._rng.shuffle(managers)
        managers.sort(key=lambda m: self._rpc.breaker_open(*m))
        errors = []
        for rm_host, rm_port in managers:
            try:
                return (
                    yield self._rpc.call(
                        rm_host, rm_port, "rm.migrate", timeout=timeout, urn=urn, to=to
                    )
                )
            except RpcError as exc:
                self.failovers += 1
                errors.append(str(exc))
        raise AllocationError(f"no RM could migrate {urn!r}: {errors}")
