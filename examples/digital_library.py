#!/usr/bin/env python3
"""Indexing the worldwide digital library — the paper's first motivating
application (§1):

    "Indexing and cataloging the worldwide digital library, which will
    have hundreds of millions of documents, produced at millions of
    different locations."

Scaled to simulator size, but structurally faithful:

* documents live on replicated file servers at three geographically
  separate sites (LANs joined by a WAN), named by LIFNs;
* indexing is done by signed **mobile code** (SnipeScript) shipped to a
  playground at each site — the computation moves to the data, under
  quota, after signature verification;
* the per-site word-count indexes come back as SNIPE messages, are
  merged, stored via the file service, and registered in the catalog;
* a forged indexing agent is rejected by every playground.

Run:  python examples/digital_library.py
"""

import random

from repro.core import SnipeEnvironment
from repro.daemon import TaskSpec
from repro.net.media import ETHERNET_100, WAN_T3
from repro.playground import Playground, sign_mobile_code
from repro.security import TrustPolicy, generate_keypair

SIGNER = "urn:snipe:user:librarian"

#: The indexing agent, written in SnipeScript: counts "words" (modelled
#: as integers) in the documents the site handed it, then emits the
#: per-site histogram. Runs fully confined — its only rights are emit.
INDEXER_SOURCE = """
var histogram = [0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
var d = 0;
while (d < len(docs)) {
    var words = docs[d];
    var w = 0;
    while (w < len(words)) {
        var bucket = words[w] % 10;
        histogram[bucket] = histogram[bucket] + 1;
        w = w + 1;
    }
    d = d + 1;
}
emit histogram;
emit len(docs);
"""


def build_site() -> SnipeEnvironment:
    """Three library sites, each its own LAN, joined by a WAN backbone."""
    env = SnipeEnvironment(seed=11)
    wan = env.add_segment("wan", WAN_T3)
    for s in range(3):
        env.add_segment(f"site{s}", ETHERNET_100)
        for i in range(3):
            host = env.add_host(
                f"s{s}h{i}", segments=[f"site{s}"], forwarding=(i == 0)
            )
            if i == 0:
                env.topology.connect(host, env.topology.segments["wan"])
    env.add_rc_servers(["s0h0", "s1h0", "s2h0"])
    for name in list(env.topology.hosts):
        env.boot_daemon(name)
    # A file server (with replication) at every site.
    for s in range(3):
        env.add_file_server(f"s{s}h1", redundancy=2)
    env.settle(2.0)
    return env


def main() -> None:
    env = build_site()
    keys = generate_keypair(random.Random(1234))
    trust = TrustPolicy()
    trust.pin_key(SIGNER, keys.public)
    trust.trust(SIGNER, "sign-code")
    # Playgrounds everywhere; the librarian's code gets no special rights
    # beyond running (it only emits results).
    for daemon in env.daemons.values():
        Playground(daemon, trust, grants={SIGNER: set()})
    env.settle(1.0)

    # ----------------------------------------------------- ingest the collection
    rng = random.Random(99)
    docs_by_site = {
        s: [[rng.randrange(1000) for _ in range(40)] for _ in range(12)]
        for s in range(3)
    }
    ingest_client = env.file_client("s0h2")

    def ingest():
        for s, docs in docs_by_site.items():
            yield ingest_client.write(
                f"library/site{s}/shard.docs", docs, 50_000, server=(f"s{s}h1", 2100)
            )

    env.run(until=env.sim.process(ingest()))
    print(f"ingested {sum(len(d) for d in docs_by_site.values())} documents "
          f"across 3 sites")

    # ------------------------------------------- ship the signed indexing agent
    bundle = sign_mobile_code(INDEXER_SOURCE, SIGNER, keys, rights=())

    def publish_code():
        yield ingest_client.write("library/indexer.code", bundle, 4_000)

    env.run(until=env.sim.process(publish_code()))

    # Each site's agent is the indexer with that site's shard bound as
    # its `docs` global — the code ships to the data, not the reverse.
    def inline_code(site):
        docs = docs_by_site[site]
        source = f"var docs = {docs};\n" + INDEXER_SOURCE
        return sign_mobile_code(source, SIGNER, keys, rights=())

    def publish_site_agents():
        for s in range(3):
            yield ingest_client.write(f"library/indexer-site{s}.code", inline_code(s), 8_000)

    env.run(until=env.sim.process(publish_site_agents()))

    infos = []
    for s in range(3):
        infos.append(
            env.daemons[f"s{s}h2"].spawn(
                TaskSpec(program="mobile",
                         mobile_code=f"library/indexer-site{s}.code",
                         cpu_quota=10.0)
            )
        )
    env.run(until=env.sim.now + 120.0)

    merged = [0] * 10
    total_docs = 0
    for s, info in enumerate(infos):
        assert info.state == "exited", f"site {s} agent: {info.state} {info.error}"
        histogram, n_docs = info.exit_value
        total_docs += n_docs
        merged = [a + b for a, b in zip(merged, histogram)]
        print(f"site {s}: indexed {n_docs} docs, histogram {histogram}")
    print(f"merged index over {total_docs} documents: {merged}")

    # --------------------------------------------------- publish the merged index
    def publish_index():
        yield ingest_client.write("library/index.merged", merged, 10_000)
        yield env.rc_client("s0h2").update(
            "urn:snipe:svc:library-index",
            {"documents": total_docs, "lifn": "library/index.merged"},
        )

    env.run(until=env.sim.process(publish_index()))

    # ------------------------------------------------------- forged agent rejected
    mallory = generate_keypair(random.Random(666))
    forged = sign_mobile_code("emit 666;", SIGNER, mallory, ())

    def publish_forged():
        yield ingest_client.write("library/evil.code", forged, 2_000)

    env.run(until=env.sim.process(publish_forged()))
    evil = env.daemons["s1h2"].spawn(
        TaskSpec(program="mobile", mobile_code="library/evil.code")
    )
    env.run(until=env.sim.now + 30.0)
    print(f"forged agent: state={evil.state} ({evil.error})")
    assert evil.state == "failed" and "signature" in evil.error
    print("\ndigital library indexing complete.")


if __name__ == "__main__":
    main()
