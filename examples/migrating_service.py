#!/usr/bin/env python3
"""A long-lived stateful service that moves around the metacomputer.

Demonstrates the §5.6 machinery end to end:

1. a counter service runs on h1 while clients address it purely by URN;
2. it migrates itself to h2 **mid-conversation** — no request is lost,
   the counter keeps its value (zero-loss migration);
3. it checkpoints to the replicated file service;
4. its host then crashes without warning — and the service is restarted
   on h3 from the checkpoint, same URN, clients none the wiser.

Run:  python examples/migrating_service.py
"""

from repro.core import SnipeEnvironment
from repro.core.checkpoint import checkpoint_to_files, restart_from_files
from repro.daemon import TaskSpec, TaskState

TOTAL_REQUESTS = 30


def main() -> None:
    env = SnipeEnvironment.lan_site(n_hosts=5, n_fs=2, seed=42)
    served_at = []

    @env.program("counter-service")
    def counter_service(ctx, quota):
        """Serves 'incr' requests; migrates at 10; checkpoints at 20."""
        count = ctx.checkpoint_state.get("count", 0)
        print(f"[{ctx.sim.now:6.2f}s] counter service live on "
              f"{ctx.host.name} (count={count})")
        while count < quota:
            msg = yield ctx.recv(tag="incr")
            count += 1
            ctx.checkpoint_state["count"] = count
            served_at.append((count, ctx.host.name))
            yield ctx.send(msg.src_urn, count, tag="count")
            if count == 10 and ctx.host.name == "h1":
                print(f"[{ctx.sim.now:6.2f}s] migrating h1 -> h2 (count={count})")
                if (yield ctx.migrate("h2")):
                    return "migrated"
            if count == 20:
                lifn = yield checkpoint_to_files(ctx)
                print(f"[{ctx.sim.now:6.2f}s] checkpointed to {lifn}")
        return count

    @env.program("client")
    def client(ctx, service_urn, target):
        """Drives the counter until it reports *target*.

        A checkpoint restart rewinds the service a few increments (work
        done after the last checkpoint is lost — the end-to-end price of
        recovery); the client simply keeps asking until the job is done.
        """
        last = 0
        while last < target:
            yield ctx.send(service_urn, None, tag="incr")
            reply = yield ctx.recv(tag="count")
            last = max(last, reply.payload)
            yield ctx.sleep(0.4)
        return last

    service = env.spawn(
        TaskSpec(program="counter-service", params={"quota": TOTAL_REQUESTS}), on="h1"
    )
    env.settle(0.5)
    env.spawn(TaskSpec(program="client",
                       params={"service_urn": service.urn, "target": TOTAL_REQUESTS}),
              on="h4")

    # Let it migrate (at 10) and checkpoint (at 20), then kill its host.
    env.settle(10.0)
    assert env.daemons["h2"].tasks[service.urn].state == TaskState.RUNNING
    count_now = max(c for c, _ in served_at)
    print(f"[{env.sim.now:6.2f}s] killing h2 with the service mid-flight "
          f"(count={count_now})")
    env.topology.hosts["h2"].crash()
    env.settle(1.0)

    # Disaster recovery: restart from the checkpoint on h3. Checkpoints
    # are versioned, so the current LIFN comes from the task's catalog
    # record, not from a guessed name.
    def latest_ckpt(sim):
        lifn = yield env.rc_client("h3").get(service.urn, "checkpoint-lifn")
        return lifn

    lifn = env.run(until=env.sim.process(latest_ckpt(env.sim)))
    urn = env.run(
        until=restart_from_files(env.topology.hosts["h3"], env.rc_client("h3"), lifn)
    )
    print(f"[{env.sim.now:6.2f}s] restarted {urn} on h3 from checkpoint")
    env.run(until=60.0)

    final = env.daemons["h3"].tasks[service.urn]
    print(f"\nservice final state: {final.state}, served {final.exit_value} requests")
    hops = []
    for count, host in served_at:
        if not hops or hops[-1][1] != host:
            hops.append((count, host))
    print("service location history:",
          " -> ".join(f"{h}@{c}" for c, h in hops))
    counts = [c for c, _ in served_at]
    # Increments between the last checkpoint (20) and the crash are lost
    # by the rewind and re-earned after restart — visible as repeated
    # counts — but every count 1..30 was served and the job completed.
    assert final.state == TaskState.EXITED
    assert final.exit_value == TOTAL_REQUESTS
    assert sorted(set(counts)) == list(range(1, TOTAL_REQUESTS + 1))
    print("\nmigrating service demo complete.")


if __name__ == "__main__":
    main()
