#!/usr/bin/env python3
"""MPI_Connect: coupling MPI applications across MPPs (§6.1).

    "Its original aim was to allow different sub-sections of an
    application to execute on different MPPs that suited each sub-task
    and utilized the vendors optimized MPI implementations on each,
    while still inter-operating across MPPs."

A coupled ocean–atmosphere model, the archetypal workload: the ocean
code runs as a 4-rank MPI job on MPP A, the atmosphere as a 4-rank job
on MPP B; each timestep they exchange boundary fields across the WAN
through MPI_Connect (SNIPE name resolution, direct task-to-task SRUDP)
while using real MPI collectives internally.

Run:  python examples/mpi_connect_demo.py
"""

from repro.bench.topologies import two_mpp_site
from repro.mpi import MpiConnectBridge, MpiJob

STEPS = 5
FIELD_BYTES = 250_000  # boundary field exchanged each step


def main() -> None:
    site = two_mpp_site(nodes_per_mpp=4, pvm=False)
    sim = site["sim"]
    bridges = {}
    log = []

    def ocean(mpi):
        """MPP A: ocean model. Rank 0 is the coupling rank."""
        bridge = bridges["ocean"]
        if mpi.rank == 0:
            yield bridge.register()
            remote = yield bridge.connect("atmos")
        sst = float(mpi.rank)  # toy sea-surface temperature
        for step in range(STEPS):
            # Internal physics: everyone computes, then reduces a mean.
            yield mpi.compute(0.02)
            mean_sst = yield mpi.allreduce(sst, lambda a, b: a + b)
            mean_sst /= mpi.size
            if mpi.rank == 0:
                # Couple: send our boundary, receive theirs.
                yield bridge.send(0, remote, 0, {"step": step, "sst": mean_sst},
                                  tag="couple", size=FIELD_BYTES)
                msg = yield bridge.recv(0, tag="couple")
                forcing = msg.payload["wind"]
                log.append((sim.now, step, mean_sst, forcing))
            else:
                forcing = None
            # Broadcast the received forcing to all ocean ranks.
            forcing = yield mpi.bcast(forcing, root=0)
            sst = sst + 0.1 * forcing  # respond to the winds
        return sst

    def atmos(mpi):
        """MPP B: atmosphere model."""
        bridge = bridges["atmos"]
        if mpi.rank == 0:
            yield bridge.register()
            remote = yield bridge.connect("ocean")
        wind = 1.0 + mpi.rank
        for step in range(STEPS):
            yield mpi.compute(0.015)
            mean_wind = yield mpi.allreduce(wind, lambda a, b: a + b)
            mean_wind /= mpi.size
            if mpi.rank == 0:
                msg = yield bridge.recv(0, tag="couple")
                sst = msg.payload["sst"]
                yield bridge.send(0, remote, 0, {"step": step, "wind": mean_wind},
                                  tag="couple", size=FIELD_BYTES)
            else:
                sst = None
            sst = yield mpi.bcast(sst, root=0)
            wind = wind + 0.05 * sst  # warm water stirs the air
        return wind

    ocean_job = MpiJob(sim, site["mpp_a"], ocean, name="ocean")
    atmos_job = MpiJob(sim, site["mpp_b"], atmos, name="atmos")
    bridges["ocean"] = MpiConnectBridge(ocean_job, site["rc_replicas"], "ocean")
    bridges["atmos"] = MpiConnectBridge(atmos_job, site["rc_replicas"], "atmos")

    sim.run(until=sim.all_of(ocean_job.procs + atmos_job.procs))

    print(f"coupled run finished at t={sim.now:.3f}s "
          f"({STEPS} steps, {FIELD_BYTES // 1000} KB boundary exchange/step)\n")
    print("step  time(s)  mean SST  wind forcing")
    for t, step, sst, wind in log:
        print(f"{step:4d}  {t:7.3f}  {sst:8.3f}  {wind:12.3f}")
    print(f"\nfinal ocean state per rank: {[f'{v:.2f}' for v in ocean_job.results]}")
    print(f"final atmos state per rank: {[f'{v:.2f}' for v in atmos_job.results]}")
    # Sanity: the coupling actually moved state across machines.
    assert all(v > 0 for v in ocean_job.results)
    print("\nMPI_Connect coupled-model demo complete.")


if __name__ == "__main__":
    main()
