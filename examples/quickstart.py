#!/usr/bin/env python3
"""Quickstart: a complete SNIPE site in ~80 lines.

Builds a four-host LAN with replicated RC catalog servers, SNIPE daemons,
a resource manager and a file server; then exercises the client API the
way the paper describes it: spawn named processes, pass URN-addressed
messages, publish and read metadata, store a result file, and inspect
everything from a console.

Run:  python examples/quickstart.py
"""

from repro.console import Console
from repro.core import SnipeEnvironment
from repro.daemon import TaskSpec


def main() -> None:
    # One LAN, four hosts; RC replicas on h0-h2, one RM, a file server.
    env = SnipeEnvironment.lan_site(n_hosts=4, n_rc=3, n_rm=1, n_fs=1)

    # -- programs are generator functions taking a SnipeContext -------------
    @env.program("greeter")
    def greeter(ctx):
        """Waits for one hello, answers it, publishes a stat, exits."""
        msg = yield ctx.recv(tag="hello")
        print(f"[{ctx.sim.now:6.3f}s] greeter on {ctx.host.name} got "
              f"{msg.payload!r} from {msg.src_urn}")
        yield ctx.send(msg.src_urn, f"hello, {msg.payload['name']}!", tag="reply")
        yield ctx.publish({"greeted": msg.payload["name"]})
        return "done"

    @env.program("visitor")
    def visitor(ctx, greeter_urn):
        yield ctx.send(greeter_urn, {"name": "world"}, tag="hello")
        reply = yield ctx.recv(tag="reply")
        print(f"[{ctx.sim.now:6.3f}s] visitor got reply: {reply.payload!r}")
        # Store the transcript on the replicated file service.
        fc = None  # file access from inside tasks goes via a FileClient
        return reply.payload

    # -- spawn the greeter directly, the visitor through its URN -------------
    greeter_info = env.spawn("greeter", on="h1")
    env.settle(0.5)
    env.spawn(
        TaskSpec(program="visitor", params={"greeter_urn": greeter_info.urn}),
        on="h2",
    )
    env.run(until=10.0)

    # -- metadata: everything is in the replicated catalog --------------------
    def inspect():
        meta = yield env.rc_client("h3").lookup(greeter_info.urn)
        print(f"[{env.sim.now:6.3f}s] greeter metadata:")
        for key in sorted(meta):
            print(f"    {key} = {meta[key]['value']!r}  (stamped {meta[key]['wall']:.3f}s)")

    env.run(until=env.sim.process(inspect()))

    # -- files: write once, read from the closest replica ----------------------
    fc = env.file_client("h3")

    def file_demo():
        yield fc.write("results/quickstart.txt", b"hello snipe", 11)
        got = yield fc.read("results/quickstart.txt")
        print(f"[{env.sim.now:6.3f}s] read back {got['payload']!r} "
              f"from {got['location']}")

    env.run(until=env.sim.process(file_demo()))

    # -- console: the operator's view ---------------------------------------------
    console = Console(env.topology.hosts["h3"], env.rc_client("h3"))
    hosts = env.run(until=console.hosts())
    tasks = env.run(until=console.tasks_on("h1"))
    print(f"registered hosts: {hosts}")
    print(f"tasks h1's daemon supervised: {tasks}")
    print("\nquickstart complete.")


if __name__ == "__main__":
    main()
