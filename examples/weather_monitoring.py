#!/usr/bin/env python3
"""Weather monitoring & catastrophic-condition prediction — the paper's
second motivating application (§1):

    "Monitoring of weather and prediction of catastrophic conditions to
    provide planning and decision support for emergency relief."

The build, exercising most of SNIPE:

* sensor tasks on field hosts publish readings into a multicast group
  (distributed data collection);
* THREE replicated forecaster processes all consume the same feed via a
  replicated pseudo-process (§5.7) — any one of them can die;
* hosts fail and recover at random (the unreliable Internet); the system
  keeps running because RC metadata, forecasters, and files are all
  replicated;
* the lead forecaster periodically checkpoints to the file service and
  publishes the current forecast through a SNIPE HTTP server that relief
  agencies' browsers can find via the catalog.

Run:  python examples/weather_monitoring.py
"""

from repro.console import SnipeHttpServer, WebClient
from repro.core import SnipeEnvironment, make_replicated_process
from repro.daemon import TaskSpec

N_SENSORS = 6
READINGS_PER_SENSOR = 15
GROUP = "weather-feed"


def main() -> None:
    env = SnipeEnvironment.lan_site(n_hosts=12, n_rc=3, n_fs=2, seed=7)
    sim = env.sim

    # ------------------------------------------------------------------ sensors
    @env.program("sensor")
    def sensor(ctx, station, period=1.0):
        """Field station: measure, publish to the feed, repeat."""
        rng = ctx.sim.rng.stream(f"sensor.{station}")
        yield ctx.join_group(GROUP)
        for i in range(READINGS_PER_SENSOR):
            yield ctx.sleep(period * (0.8 + 0.4 * rng.random()))
            reading = {
                "station": station,
                "seq": i,
                "pressure_hpa": 1013 + rng.gauss(0, 18),
                "wind_ms": abs(rng.gauss(12, 9)),
            }
            yield ctx.send_group(GROUP, reading, tag="reading")
        return f"{station}: {READINGS_PER_SENSOR} readings"

    # --------------------------------------------------------------- forecasters
    @env.program("forecaster")
    def forecaster(ctx, name, deadline):
        """Replicated consumer: aggregates the feed until the campaign
        deadline. Sensors may die with their hosts (fail-stop), so the
        loop is time-bounded, not count-bounded."""
        yield ctx.join_group(GROUP)
        seen = ctx.checkpoint_state.setdefault("seen", 0)
        worst = ctx.checkpoint_state.setdefault("worst_wind", 0.0)
        alerts = ctx.checkpoint_state.setdefault("alerts", [])
        while ctx.sim.now < deadline:
            ev = ctx.recv_group(GROUP)
            yield ctx.sim.any_of([ev, ctx.sleep(deadline - ctx.sim.now)])
            if not ev.processed:
                break  # campaign over; some sensors died with their hosts
            msg = ev.value
            if msg.tag != "reading":
                continue
            r = msg.payload
            seen += 1
            ctx.checkpoint_state["seen"] = seen
            if r["wind_ms"] > worst:
                worst = ctx.checkpoint_state["worst_wind"] = r["wind_ms"]
            if r["wind_ms"] > 25 or r["pressure_hpa"] < 980:
                alerts.append((r["station"], round(r["wind_ms"], 1)))
                print(f"[{ctx.sim.now:7.2f}s] {name}: STORM RISK at "
                      f"{r['station']} (wind {r['wind_ms']:.1f} m/s)")
        return {"name": name, "seen": seen, "worst_wind": worst, "alerts": len(alerts)}

    # Sensors on field hosts h0-h5.
    for i in range(N_SENSORS):
        env.spawn(
            TaskSpec(program="sensor", params={"station": f"st{i}"}), on=f"h{i}"
        )
    # Replicated forecasters on h6-h8 (all receive every reading).
    forecasters = [
        env.spawn(
            TaskSpec(program="forecaster", params={"name": f"fc{i}", "deadline": 45.0}),
            on=f"h{6 + i}",
        )
        for i in range(3)
    ]
    env.settle(1.0)
    # The pseudo-process (§5.7): data sent to it reaches every forecaster.
    urn = env.run(until=make_replicated_process(env.rc_client("h9"), "forecast-svc", GROUP))
    print(f"replicated forecaster pseudo-process: {urn}")

    # ------------------------------------------------------- unreliable internet
    # Two field hosts crash mid-campaign and recover later.
    env.failures.host_down_at(6.0, "h2", duration=4.0)
    env.failures.host_down_at(9.0, "h4", duration=5.0)
    # One forecaster host dies permanently: replication absorbs it.
    env.failures.host_down_at(12.0, "h7")

    # ---------------------------------------------------------- run the campaign
    env.run(until=60.0)

    # -------------------------------------------------------------- the forecast
    finals = [f for f in forecasters if f.state == "exited"]
    print(f"\nforecasters finished: {len(finals)}/3 "
          f"(h7's died with its host — by design)")
    assert finals, "no forecaster survived?!"
    lead = finals[0].exit_value
    survivors_agree = all(
        f.exit_value["worst_wind"] == lead["worst_wind"] for f in finals
    )
    print(f"surviving forecasters agree on worst wind: {survivors_agree} "
          f"({lead['worst_wind']:.1f} m/s, {lead['alerts']} alerts, "
          f"{lead['seen']} readings)")

    # Publish the forecast for the relief agencies.
    fc = env.file_client("h9")
    forecast = {
        "worst_wind_ms": lead["worst_wind"],
        "alerts": lead["alerts"],
        "readings": lead["seen"],
    }

    def store():
        yield fc.write("forecast/latest.json", forecast, 2048)

    env.run(until=sim.process(store()))
    httpd = SnipeHttpServer(
        env.topology.hosts["h9"], env.rc_client("h9"),
        "http://weather.snipe.org/",
        {"/": f"<html>worst wind {lead['worst_wind']:.1f} m/s, "
              f"{lead['alerts']} storm alerts</html>"},
    )
    env.run(until=httpd.register())
    browser = WebClient(env.topology.hosts["h11"], env.rc_client("h11"))
    page = env.run(until=browser.get("http://weather.snipe.org/"))
    print(f"relief agency browser sees: {page}")
    print("\nweather monitoring campaign complete.")


if __name__ == "__main__":
    main()
