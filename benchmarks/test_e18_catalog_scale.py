"""E18 — catalog scale: the sharded federation vs full replication."""

import pytest

from repro.bench.e18_catalog_scale import (
    catalog_scale,
    format_catalog_bench,
    split_under_load,
    summarize,
)

from .conftest import run_once

pytestmark = pytest.mark.slow


def test_e18_catalog_scale(benchmark):
    rows = run_once(benchmark, catalog_scale,
                    name_counts=(10_000, 100_000), n_shards=4, window=20.0)
    split = split_under_load()
    print(format_catalog_bench(rows, split))
    s = summarize(rows, split)
    # Feasibility: the federation sustains the 10^5-name catalog with
    # every preloaded name resolvable. Failed ops get a 0.1%-of-writes
    # allowance: at the saturated top scale a closed-loop QUORUM write
    # can exhaust its retry budget without indicting the federation.
    assert s["max_names"] >= 100_000
    sharded = [r for r in rows if r["config"] == "sharded"]
    for r in sharded:
        assert r["misses"] == 0
        assert r["failed"] <= 0.001 * (r["updates"] + r["creates"])
    # The capacity headline: at the top scale the 4-shard federation
    # (15 servers) outruns the 3-replica full-replication group, which
    # saturates under the same closed-loop session mix.
    assert s["speedup_ops"] is not None and s["speedup_ops"] > 1.5
    # Flat latency: sharded p99 does not blow up with catalog size.
    assert s["p99_flat_across_scales"]
    # The split actually happened under live load and the parent
    # drained — epoch bumped, handoff moved every record out.
    assert split["splits"] >= 1 and split["epoch"] >= 2
    assert split["drain_s"] is not None
    # Live traffic kept flowing across the migration; the fence turned
    # stale-routed ops into redirects the clients then re-routed.
    assert split["failed"] == 0
    assert split["redirects"] > 0 and split["redirect_retries"] > 0
