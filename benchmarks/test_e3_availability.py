"""E3 — availability through replication (§6's testbed observation)."""

from repro.bench.e3_availability import availability_vs_replicas
from repro.bench.table import print_table

from .conftest import run_once


def test_e3_availability(benchmark):
    rows = run_once(benchmark, availability_vs_replicas, horizon=1_000.0)
    print_table("E3: metadata availability vs replica count", rows)
    by_k = {r["replicas"]: r for r in rows}
    # One server tracks raw host uptime (within a few points).
    assert abs(by_k[1]["availability"] - by_k[1]["host_uptime"]) < 0.12
    # Replication lifts availability monotonically toward "almost
    # perfect" (>99.5 % at five replicas under this failure load).
    assert by_k[3]["availability"] > by_k[1]["availability"]
    assert by_k[5]["availability"] >= by_k[3]["availability"]
    assert by_k[5]["availability"] > 0.995
