"""E6 — zero message loss across process migration (§5.6)."""

from repro.bench.e6_migration import migration_loss
from repro.bench.table import print_table

from .conftest import run_once


def test_e6_migration_zero_loss(benchmark):
    rows = run_once(benchmark, migration_loss, hop_counts=(0, 1, 2, 3))
    print_table("E6: message accounting across migrations", rows)
    for row in rows:
        # The §5.6 guarantee, verbatim: no loss, and our sequence-number
        # dedup also forbids duplicates; delivery stays in order.
        assert row["lost"] == 0, f"{row['hops']} hops lost messages"
        assert row["duplicated"] == 0
        assert row["reordered"] == 0
        assert row["received"] == row["sent"]
    # Migration costs a bounded pause, not a stall: under 2 s here.
    for row in rows:
        if row["hops"] > 0:
            assert 0 < row["max_pause_ms"] < 2_000
