"""E2 — MPI_Connect vs PVMPI point-to-point performance (§6.1)."""

from repro.bench.e2_mpiconnect import mpiconnect_vs_pvmpi, summarize_speedup
from repro.bench.table import print_table

from .conftest import run_once


def test_e2_mpiconnect_vs_pvmpi(benchmark):
    rows = run_once(benchmark, mpiconnect_vs_pvmpi,
                    sizes=[1_024, 16_384, 131_072, 1_048_576], n_msgs=3)
    print_table("E2: inter-MPP ping-pong", rows)
    speedups = summarize_speedup(rows)
    print_table("E2: MPI_Connect speedup over PVMPI", speedups)
    for row in speedups:
        # "Slightly higher point-to-point communication performance":
        # MPI_Connect wins at every size, by a modest factor (<2x).
        assert row["speedup"] > 1.0, f"size {row['size']}: PVMPI won?!"
        assert row["speedup"] < 2.0, f"size {row['size']}: gap implausibly large"
