"""E12 — control-plane survival and goodput under overload (§3)."""

from repro.bench.e12_overload import overload_goodput
from repro.bench.table import print_table

from .conftest import run_once


def test_e12_overload_goodput(benchmark):
    rows = run_once(benchmark, overload_goodput)
    print_table("E12: overload goodput and control-plane latency", rows)
    by_key = {(r["config"], r["saturation_x"]): r for r in rows}
    for sat in (2.0, 5.0):
        adaptive = by_key[("adaptive", sat)]
        static = by_key[("static", sat)]
        # The robustness claim: under overload the adaptive stack keeps
        # the control plane clean — zero false death declarations and
        # zero dropped lease heartbeats, with bounded p99.
        assert adaptive["false_deaths"] == 0
        assert adaptive["hb_failed"] == 0
        assert adaptive["ok"]
        # ... and it does not pay for that with bulk goodput: it must do
        # at least as well as fixed timeouts at the same saturation.
        assert adaptive["goodput_ops_s"] >= static["goodput_ops_s"]
    # The baseline must actually exhibit the failure mode being fixed,
    # or the comparison is vacuous: at heavy saturation fixed timeouts
    # lose heartbeats.
    assert by_key[("static", 5.0)]["hb_failed"] > 0
