"""E4 — centralized vs redundant resource management (§2.2)."""

from repro.bench.e4_rm import rm_scalability
from repro.bench.table import print_table

from .conftest import run_once


def test_e4_rm_scalability(benchmark):
    rows = run_once(benchmark, rm_scalability,
                    n_hosts=8, rates=(20.0, 90.0), rm_counts=(1, 4), window=10.0)
    print_table("E4: spawn throughput/latency vs offered load", rows)
    low = {r["system"]: r for r in rows if r["offered_rate"] == 20.0}
    high = {r["system"]: r for r in rows if r["offered_rate"] == 90.0}
    # Below capacity everyone keeps up with comparable latency.
    for r in low.values():
        assert r["throughput"] >= 19.0
        assert r["mean_latency_ms"] < 100
    # Past one server's capacity (50 req/s): the centralized systems
    # saturate — PVM sheds load and/or latency explodes; so does a single
    # SNIPE RM. Four redundant RMs keep latency flat.
    assert high["pvm"]["failed"] > 0 or high["pvm"]["mean_latency_ms"] > 1_000
    assert high["snipe/1rm"]["mean_latency_ms"] > 1_000
    assert high["snipe/4rm"]["mean_latency_ms"] < 200
    assert high["snipe/4rm"]["throughput"] > 85.0
