"""E17 — kernel scalability: hundreds of hosts on the optimised core."""

import pytest

from repro.bench.e17_kernel_scale import kernel_scale
from repro.bench.table import print_table

from .conftest import run_once

pytestmark = pytest.mark.slow


def test_e17_kernel_scale(benchmark):
    rows = run_once(benchmark, kernel_scale, scales=(256, 512, 1024))
    print_table("E17: kernel scalability (wan_site RPC echo)", rows)
    for r in rows:
        # Feasibility: every call completes at every scale — the kernel,
        # not the workload, is what this experiment stresses.
        assert r["calls_ok"] == r["calls"]
        assert r["calls_failed"] == 0
    by_hosts = {r["hosts"]: r for r in rows}
    # The headline: a 256-host site is interactive-speed to simulate.
    assert by_hosts[256]["wall_s"] < 30.0
    # Event volume scales linearly with hosts (same per-host workload),
    # so sub-linear event counts would mean the scenario silently shrank.
    assert by_hosts[1024]["events"] > 3 * by_hosts[256]["events"]
