"""E8 — transparent route failover under link failure (§6)."""

from repro.bench.e8_failover import failover_timeline
from repro.bench.table import print_table

from .conftest import run_once


def test_e8_failover(benchmark):
    result = run_once(benchmark, failover_timeline)
    print_table("E8: summary", result["summary"])
    # Show the throughput timeline around the cut for the report.
    cut_window = [r for r in result["timeline"] if 0.0 <= r["t"] <= 0.6]
    print_table("E8: throughput timeline (MB/s per 50 ms window)", cut_window)
    summary = {r["policy"]: r for r in result["summary"]}
    multi = summary["snipe-multipath"]
    single = summary["single-interface"]
    # Multipath completes the whole transfer despite the cut, with a
    # bounded stall and at least one route switch — "without user
    # applications intervention".
    assert multi["completed"] is True
    assert multi["route_switches"] >= 1
    assert multi["failover_gap_ms"] < 1_000
    # The single-interface baseline dies with its link.
    assert single["completed"] is False
    assert single["delivered_mb"] < multi["delivered_mb"]
