"""E13 — relay-tree/multi-source bulk distribution vs naive unicast."""

from repro.bench.e13_bulk import bulk_distribution
from repro.bench.table import print_table

from .conftest import run_once


def test_e13_bulk_distribution(benchmark):
    rows = run_once(benchmark, bulk_distribution)
    print_table("E13: bulk distribution — unicast vs pipelined relay tree", rows)
    by_key = {(r["hosts"], r["strategy"], r["crash"]): r for r in rows}
    # Every configuration delivers everywhere with every digest verified.
    for r in rows:
        assert r["completed"] == r["hosts"]
        assert r["all_verified"]
    # The data-plane claim: at 16 hosts the relay tree achieves at least
    # 3x the aggregate goodput of naive root-unicast.
    assert by_key[(16, "tree", False)]["speedup_vs_unicast"] >= 3.0
    # Scaling shape: the tree's advantage grows with fan-out, because
    # unicast serializes every copy through the root's link.
    assert (by_key[(32, "tree", False)]["speedup_vs_unicast"]
            > by_key[(16, "tree", False)]["speedup_vs_unicast"])
    # Mid-transfer relay crash: the distribution still completes with
    # all digests verified, and the victim actually crashed mid-object.
    for hosts in (8, 16, 32):
        crash = by_key[(hosts, "tree", True)]
        assert crash["crashes"] >= 1
        assert crash["completed"] == hosts and crash["all_verified"]
