"""E10 — fastest-shared-medium routing vs plain IP (§5.3)."""

from repro.bench.e10_media import media_selection
from repro.bench.table import print_table

from .conftest import run_once


def test_e10_media_selection(benchmark):
    rows = run_once(benchmark, media_selection)
    print_table("E10: bulk transfer under each routing policy", rows)
    by_policy = {r["policy"]: r for r in rows}
    snipe = by_policy["snipe"]
    plain = by_policy["default-ip"]
    # SNIPE shops for the fastest shared medium: the Myrinet SAN.
    assert snipe["segment_used"] == "myr"
    # Plain IP stays on the first-configured interface (Ethernet).
    assert plain["segment_used"] == "eth"
    # The payoff is roughly the media ratio (~13x here; accept >5x).
    assert snipe["mbps"] > 5.0 * plain["mbps"]
