"""E11 — MTTR of lease-detected crash + checkpoint restart (§5.2.3, §5.6)."""

from repro.bench.e11_recovery import recovery_mttr
from repro.bench.table import print_table

from .conftest import run_once


def test_e11_recovery_mttr(benchmark):
    rows = run_once(benchmark, recovery_mttr)
    print_table("E11: recovery MTTR vs heartbeat lease TTL", rows)
    assert all(r["within_bound"] for r in rows)
    # Detection dominates MTTR, and it tracks the lease TTL: a shorter
    # lease must not recover slower than a lease 4x as long.
    by_ttl = {r["lease_ttl_s"]: r for r in rows}
    assert by_ttl[1.5]["mttr_s"] < by_ttl[6.0]["mttr_s"]
    # Detection can never beat the lease itself.
    for r in rows:
        assert r["detect_s"] >= 0.0
