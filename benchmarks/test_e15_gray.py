"""E15 — gray-failure detection: differential health vs heartbeat-only."""

import pytest

from repro.bench.e15_gray import gray_goodput, summarize
from repro.bench.table import print_table

from .conftest import run_once

pytestmark = pytest.mark.slow


def test_e15_gray_goodput(benchmark):
    rows = run_once(benchmark, gray_goodput)
    print_table("E15: gray-failure goodput and detection", rows)
    s = summarize(rows)
    diff = [r for r in rows if r["config"] == "differential"]
    base = [r for r in rows if r["config"] == "heartbeat-only"]
    for r in diff:
        # The robustness claim: the zombie is quarantined within
        # seconds by failed *work*, no live host is ever declared dead,
        # and no bit-flipped payload reaches an application.
        assert r["completed_ok"]
        assert r["detection_s"] is not None and r["detection_s"] < 5.0
        assert r["false_lease_deaths"] == 0
        assert r["corrupt_delivered"] == 0
    # The headline: ≥ 2x the heartbeat-only goodput through the zombie
    # window. (Measured ~4x; the bar leaves room for seed noise.)
    assert s["goodput_ratio"] >= 2.0
    # The baseline must actually exhibit the failure modes being fixed,
    # or the comparison is vacuous: it never detects the zombie and
    # turns lapsed leases into false deaths of healthy hosts.
    for r in base:
        assert r["detection_s"] is None
        assert r["false_lease_deaths"] > 0
