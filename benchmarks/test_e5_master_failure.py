"""E5 — master-host failure: PVM dies, SNIPE degrades gracefully (§2.2)."""

from repro.bench.e5_master import master_failure
from repro.bench.table import print_table

from .conftest import run_once


def test_e5_master_failure(benchmark):
    rows = run_once(benchmark, master_failure)
    print_table("E5: operation success rate around the critical-host crash", rows)
    by_key = {(r["system"], r["phase"]): r["success_rate"] for r in rows}
    # Both healthy before.
    assert by_key[("pvm", "before")] == 1.0
    assert by_key[("snipe", "before")] == 1.0
    # "PVM can tolerate slave failures but not failure of its master."
    assert by_key[("pvm", "after")] == 0.0
    # SNIPE has no master: killing an RC+RM host leaves it fully usable.
    assert by_key[("snipe", "after")] >= 0.95
