"""E1 / Fig. 1 — bandwidth offered to SNIPE clients on various media."""

from repro.bench.fig1 import fig1_bandwidth, srudp_window_ablation
from repro.bench.table import print_table

from .conftest import run_once

SIZES = [16_384, 131_072, 1_048_576, 4_194_304]


def test_fig1_bandwidth(benchmark):
    rows = run_once(benchmark, fig1_bandwidth, sizes=SIZES)
    print_table("Fig. 1: bandwidth (MB/s) vs message size", rows,
                ["series", "size", "mbps"])

    def series(name):
        return {r["size"]: r["mbps"] for r in rows if r["series"] == name}

    srudp_eth = series("srudp/ethernet-100")
    tcp_eth = series("tcp/ethernet-100")
    srudp_atm = series("srudp/atm-155")
    mcast = series("mcast/ethernet-100")
    big = SIZES[-1]
    # Shape 1: throughput rises with message size on every series.
    assert srudp_eth[big] > srudp_eth[SIZES[0]]
    # Shape 2: large messages approach (but don't exceed) the media
    # ceilings: 12.5 MB/s Ethernet line rate, ~17.6 MB/s ATM after the
    # cell tax. The 1997 testbed showed the same saturation behaviour.
    assert 10.5 < srudp_eth[big] < 12.2
    assert 15.0 < srudp_atm[big] < 17.6
    # Shape 3: ATM beats Ethernet; SRUDP >= TCP at the small end (less
    # header + no handshake).
    assert srudp_atm[big] > srudp_eth[big]
    assert srudp_eth[SIZES[0]] >= tcp_eth[SIZES[0]]
    # Shape 4: multicast tracks unicast Ethernet within ~15 %.
    assert mcast[big] > 0.85 * srudp_eth[big]


def test_fig1_ablation_srudp_window(benchmark):
    rows = run_once(benchmark, srudp_window_ablation)
    print_table("Ablation: SRUDP window on a satellite link", rows)
    by_window = {r["window"]: r["mbps"] for r in rows}
    # Small windows stall on the bandwidth-delay product; large flatten.
    assert by_window[4] < by_window[64]
    assert by_window[256] >= 0.95 * by_window[64]


def test_fig1_ablation_multicast_fanout(benchmark):
    from repro.bench.fig1 import multicast_fanout_ablation

    rows = run_once(benchmark, multicast_fanout_ablation,
                    receiver_counts=(1, 4, 8), size=524_288)
    print_table("Ablation: multicast vs N sequential unicasts", rows)
    by_n = {r["receivers"]: r for r in rows}
    # Unicast cost grows ~linearly with receivers; multicast stays ~flat.
    assert by_n[8]["unicast_s"] > 6.0 * by_n[1]["unicast_s"]
    assert by_n[8]["mcast_s"] < 2.0 * by_n[1]["mcast_s"]
    assert by_n[8]["speedup"] > 4.0
