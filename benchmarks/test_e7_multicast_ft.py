"""E7 — multicast majority registration vs single-router baseline (§5.4)."""

from repro.bench.e7_mcast import mcast_fault_tolerance, router_density_ablation
from repro.bench.table import print_table

from .conftest import run_once


def test_e7_multicast_fault_tolerance(benchmark):
    rows = run_once(benchmark, mcast_fault_tolerance, router_kills=(0, 1))
    print_table("E7: delivery rate with dead routers", rows)
    by_key = {(r["mode"], r["killed"]): r["delivery_rate"] for r in rows}
    # No failures: both disciplines deliver to everyone.
    assert by_key[("majority", 0)] == 1.0
    assert by_key[("single", 0)] == 1.0
    # Minority router failure: majority registration guarantees a path
    # ("at least one path from the sending process to each recipient");
    # the single-registration baseline goes dark.
    assert by_key[("majority", 1)] == 1.0
    assert by_key[("single", 1)] == 0.0


def test_e7_ablation_router_density(benchmark):
    rows = run_once(benchmark, router_density_ablation, n_members=8)
    print_table("E7 ablation: election density vs relay cost", rows)
    by_density = {r["min_routers"]: r for r in rows}
    # Everyone still hears the message at every density...
    for r in rows:
        assert r["delivered"] == 7
    # ...but more routers mean more relay work.
    assert by_density[5]["relay_ops"] >= by_density[1]["relay_ops"]
