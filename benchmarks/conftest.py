"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's figures/tables on the
deterministic simulator and prints the rows; pytest-benchmark reports
the harness's wall-clock cost. Shape assertions (who wins, by what
factor) run on the returned rows, so a benchmark run is also a
reproduction check.

Each run also leaves a machine-readable twin next to the printed table:
``BENCH_<name>.json`` in the repository root, written through
:func:`repro.obs.report.write_bench_json` — rows, wall-clock seconds,
and the scenario name — so runs can be archived and diffed
(``python -m repro obs diff``).
"""

import pathlib
import time

#: Where BENCH_<name>.json files land: the repository root.
BENCH_DIR = pathlib.Path(__file__).resolve().parents[1]


def run_once(benchmark, fn, **kwargs):
    """Run *fn* exactly once under pytest-benchmark and return its rows.

    Side effect: writes ``BENCH_<fn-name>.json`` with the rows and the
    measured wall-clock time of the single run.
    """
    from repro.obs.report import write_bench_json

    t0 = time.perf_counter()
    rows = benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
    wall_s = time.perf_counter() - t0
    name = fn.__name__
    try:
        write_bench_json(name, rows, str(BENCH_DIR), wall_s=wall_s,
                         seed=kwargs.get("seed"))
    except (TypeError, OSError):
        # Unserialisable rows or a read-only checkout must not fail the
        # benchmark itself; the printed table is still authoritative.
        pass
    return rows
