"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's figures/tables on the
deterministic simulator and prints the rows; pytest-benchmark reports
the harness's wall-clock cost. Shape assertions (who wins, by what
factor) run on the returned rows, so a benchmark run is also a
reproduction check.
"""

import pytest


def run_once(benchmark, fn, **kwargs):
    """Run *fn* exactly once under pytest-benchmark and return its rows."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
