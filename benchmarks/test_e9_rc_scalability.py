"""E9 — master–master vs single-master metadata updates (§7)."""

from repro.bench.e9_rc import anti_entropy_ablation, rc_update_scaling
from repro.bench.table import print_table

from .conftest import run_once


def test_e9_rc_scalability(benchmark):
    rows = run_once(benchmark, rc_update_scaling,
                    replica_counts=(1, 4), n_writers=8, window=10.0)
    print_table("E9: update throughput vs replica count", rows)
    by_key = {(r["model"], r["replicas"]): r for r in rows}
    mm1 = by_key[("master-master", 1)]
    mm4 = by_key[("master-master", 4)]
    sm1 = by_key[("single-master", 1)]
    sm4 = by_key[("single-master", 4)]
    # "A true master-master update data model … inherently more
    # scalable": write throughput grows with replicas (>2x at 4).
    assert mm4["throughput"] > 2.0 * mm1["throughput"]
    # The LDAP/MDS-style single master gains nothing from extra replicas.
    assert sm4["throughput"] < 1.2 * sm1["throughput"]
    # And master-master write latency at 4 replicas beats the saturated
    # single master.
    assert mm4["mean_latency_ms"] < sm4["mean_latency_ms"]


def test_e9_ablation_anti_entropy(benchmark):
    rows = run_once(benchmark, anti_entropy_ablation)
    print_table("E9 ablation: anti-entropy period vs propagation", rows)
    by_interval = {r["sync_interval"]: r["propagation_s"] for r in rows}
    # Propagation delay tracks the gossip period.
    assert by_interval[0.2] < by_interval[1.0] < by_interval[5.0]
