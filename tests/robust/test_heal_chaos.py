"""End-to-end partition-heal scenario (E16's engine).

Three full seeded runs: bounded anti-entropy healing a long partition
must pass every heal criterion with real compaction/catch-up activity;
the unbounded baseline must actually exhibit the heal storm (one huge
sync blob, degraded control-lane latency or lost heartbeats during the
heal window); and a blackout of all three replicas must come back from
durable snapshots with zero resurrected deletes. Long multi-fault
simulations, hence the slow marker — CI runs them in the chaos job,
not tier-1.
"""

import pytest

from repro.robust.chaos import run_partition_heal

pytestmark = pytest.mark.slow


def test_heal_bounded_seed1_passes_all_criteria():
    report = run_partition_heal(1, flight=False)
    assert report["ok"], [n for n, ok, _ in report["criteria"] if not ok]
    assert report["reconverge_s"] is not None
    assert report["max_sync_batch"] <= report["bound"]
    assert report["resurrected"] == []
    assert report["heartbeats_failed"] == 0
    assert report["heartbeat_failovers"] == 0
    # The partition outlived the compaction horizon, so the heal really
    # exercised snapshot catch-up and the logs really compacted.
    assert report["snapshot_catchups"] > 0
    stats = report["replica_stats"]
    assert sum(s["compactions"] for s in stats.values()) > 0
    assert sum(s["tombstones_collected"] for s in stats.values()) > 0
    assert report["writes_ok"] > 0 and report["retired"] > 0


def test_heal_unbounded_baseline_exhibits_the_storm():
    report = run_partition_heal(1, bounded=False, flight=False)
    # One giant blob instead of bounded batches...
    assert report["max_sync_batch"] > 1000
    # ...which visibly damages the control lane during the heal window.
    assert (report["control_probe_failed"] > 0
            or report["heartbeat_failovers"] > 0
            or report["control_p99"] > 0.010)


def test_heal_blackout_restores_from_durable_snapshots():
    report = run_partition_heal(1, blackout=True, flight=False)
    assert report["ok"], [n for n, ok, _ in report["criteria"] if not ok]
    stats = report["replica_stats"]
    assert all(s["restores"] == 1 for s in stats.values())
    assert report["resurrected"] == []
    assert report["reconverge_s"] is not None
