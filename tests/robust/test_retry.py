"""Unit tests for the unified retry policy."""

import pytest

from repro.robust import RetryPolicy
from repro.sim import Simulator


def drive(sim, gen):
    """Run a retry generator to completion inside a sim process."""
    return sim.run(until=sim.process(gen, name="retry-test"))


def test_backoff_is_exponential_and_capped():
    p = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0)
    assert p.backoff(1) == pytest.approx(0.1)
    assert p.backoff(2) == pytest.approx(0.2)
    assert p.backoff(3) == pytest.approx(0.4)
    assert p.backoff(4) == pytest.approx(0.5)  # capped
    assert p.backoff(10) == pytest.approx(0.5)


def test_backoff_jitter_is_seed_deterministic():
    p = RetryPolicy(base_delay=1.0, jitter=0.5)

    def delays(seed):
        rng = Simulator(seed=seed).rng.stream("jitter-test")
        return [p.backoff(i, rng) for i in range(1, 5)]

    assert delays(3) == delays(3)
    assert delays(3) != delays(4)
    # Jitter stays within +/- 50%.
    for d in delays(3):
        assert 0.5 <= d / 1.0 or d <= 1.5


def test_run_retries_until_success_and_sleeps_backoff():
    sim = Simulator()
    p = RetryPolicy(attempts=4, base_delay=0.1, multiplier=2.0, jitter=0.0)
    calls = []

    def attempt(i):
        calls.append((i, sim.now))
        if i < 2:
            raise ValueError(f"flaky {i}")
        return "ok"

    result = drive(sim, p.run(sim, attempt, retry_on=(ValueError,)))
    assert result == "ok"
    assert [i for i, _ in calls] == [0, 1, 2]
    # Backoffs 0.1 then 0.2 accumulate in virtual time.
    assert calls[1][1] == pytest.approx(0.1)
    assert calls[2][1] == pytest.approx(0.3)
    m = sim.obs.metrics
    assert m.counter("robust.attempts", op="op").value == 3
    assert m.counter("robust.retries", op="op").value == 2
    assert m.counter("robust.giveups", op="op").value == 0


def test_run_exhaustion_reraises_last_underlying_error():
    sim = Simulator()
    p = RetryPolicy(attempts=3, base_delay=0.01, jitter=0.0)

    def attempt(i):
        raise ValueError(f"always broken ({i})")

    with pytest.raises(ValueError, match=r"always broken \(2\)"):
        drive(sim, p.run(sim, attempt, retry_on=(ValueError,)))
    assert sim.obs.metrics.counter("robust.giveups", op="op").value == 1


def test_run_does_not_retry_unlisted_exceptions():
    sim = Simulator()
    p = RetryPolicy(attempts=5, base_delay=0.01, jitter=0.0)
    calls = []

    def attempt(i):
        calls.append(i)
        raise KeyError("fatal")

    with pytest.raises(KeyError):
        drive(sim, p.run(sim, attempt, retry_on=(ValueError,)))
    assert calls == [0]


def test_deadline_budget_stops_retrying():
    sim = Simulator()
    # Backoffs 1, 2, 4... with a 2.5s budget: attempt 0 (t=0), attempt 1
    # (t=1), then the 2s backoff would cross the deadline -> give up.
    p = RetryPolicy(attempts=10, base_delay=1.0, multiplier=2.0,
                    max_delay=10.0, deadline=2.5, jitter=0.0)
    calls = []

    def attempt(i):
        calls.append(i)
        raise ValueError("down")

    with pytest.raises(ValueError):
        drive(sim, p.run(sim, attempt, retry_on=(ValueError,)))
    assert calls == [0, 1]
    assert sim.now == pytest.approx(1.0)


def test_single_policy_never_sleeps_or_draws_jitter():
    sim = Simulator()
    p = RetryPolicy.single()
    draws = []

    class Rng:
        def random(self):
            draws.append(1)
            return 0.5

    def attempt(i):
        return i

    assert drive(sim, p.run(sim, attempt, rng=Rng())) == 0
    assert sim.now == 0.0
    assert draws == []  # determinism: no RNG consumed on the happy path


def test_run_accepts_generator_attempts():
    sim = Simulator()
    p = RetryPolicy(attempts=3, base_delay=0.05, jitter=0.0)

    def attempt(i):
        yield sim.timeout(0.1)
        if i == 0:
            raise ValueError("first round fails after work")
        return f"round-{i}"

    result = drive(sim, p.run(sim, attempt, retry_on=(ValueError,)))
    assert result == "round-1"
    # 0.1 (failed round) + 0.05 (backoff) + 0.1 (winning round).
    assert sim.now == pytest.approx(0.25)
