"""Property-based tests for the overload-control primitives.

These state machines (RTT estimation, circuit breaking, lane queueing)
guard the failure detectors; a single bad transition under an unusual
op sequence is exactly the kind of bug example-based tests miss, so
each primitive is driven with arbitrary operation sequences and checked
against its invariants after every step.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.robust.overload import (
    BULK,
    CLOSED,
    CONTROL,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    LaneStore,
    RttEstimator,
)
from repro.sim import Simulator

# -- RttEstimator -----------------------------------------------------------

rtts = st.floats(min_value=1e-6, max_value=10.0,
                 allow_nan=False, allow_infinity=False)


@given(st.lists(st.one_of(rtts, st.just("backoff")), max_size=60))
def test_rto_always_within_bounds(ops):
    """Whatever mix of samples and timeouts, the RTO stays in
    [min_rto, max_rto] — never below the floor, never above the cap."""
    est = RttEstimator(initial_rto=0.05, min_rto=0.002, max_rto=2.0)
    for op in ops:
        if op == "backoff":
            est.backoff()
        else:
            est.observe(op)
        assert est.min_rto <= est.rto() <= est.max_rto


@given(st.lists(rtts, max_size=20), st.integers(min_value=1, max_value=40))
def test_rto_monotone_under_backoff(samples, n_backoffs):
    """Consecutive timeouts never *shrink* the RTO (exponential backoff
    is monotone non-decreasing up to the cap), and one fresh sample
    resets the backoff completely."""
    est = RttEstimator(initial_rto=0.05, min_rto=0.002, max_rto=2.0)
    for rtt in samples:
        est.observe(rtt)
    base = est.rto()
    prev = base
    for _ in range(n_backoffs):
        est.backoff()
        cur = est.rto()
        assert cur >= prev
        prev = cur
    assert prev >= base
    est.observe(0.01)
    assert est.rto() <= est.max_rto
    assert est._shift == 0  # a sample resets the backoff exponent


@given(rtts)
def test_first_sample_initialises_rfc6298(rtt):
    est = RttEstimator(min_rto=0.0, max_rto=100.0)
    est.observe(rtt)
    assert est.srtt == rtt
    assert est.rttvar == rtt / 2
    assert abs(est.rto() - (rtt + 4 * (rtt / 2))) < 1e-12


# -- CircuitBreaker ---------------------------------------------------------

breaker_ops = st.lists(
    st.tuples(st.sampled_from(("allow", "ok", "fail")),
              st.floats(min_value=0.0, max_value=5.0)),
    max_size=80,
)


@given(breaker_ops)
@settings(max_examples=200)
def test_breaker_state_machine_valid_from_any_sequence(ops):
    """Drive a breaker with an arbitrary op sequence and check, at every
    step: the state is one of the three valid states, transitions follow
    the CLOSED -> OPEN -> HALF_OPEN -> {CLOSED, OPEN} diagram, an OPEN
    breaker never admits a call before its window elapses, and
    ``open_for`` stays within [base, max_open]."""
    transitions = []
    br = CircuitBreaker(
        window=8, min_samples=2, failure_threshold=0.5,
        open_for=1.0, max_open=8.0,
        on_transition=lambda old, new: transitions.append((old, new)),
    )
    now = 0.0
    allowed = {CLOSED: {OPEN}, OPEN: {HALF_OPEN}, HALF_OPEN: {CLOSED, OPEN}}
    for op, dt in ops:
        now += dt
        if op == "allow":
            admitted = br.allow(now)
            if not admitted:
                # Refusal only ever happens in quarantine.
                assert (br.state == OPEN and now - br.opened_at < br.open_for) \
                    or (br.state == HALF_OPEN and br._probing)
        else:
            br.record(op == "ok", now)
        assert br.state in (CLOSED, OPEN, HALF_OPEN)
        assert br.base_open_for <= br.open_for <= br.max_open
    for old, new in transitions:
        assert new in allowed[old], f"illegal transition {old} -> {new}"


@given(st.integers(min_value=1, max_value=6))
def test_breaker_reopen_doubles_up_to_cap(n_probe_failures):
    """Each failed half-open probe doubles the quarantine, capped."""
    br = CircuitBreaker(window=4, min_samples=2, failure_threshold=0.5,
                        open_for=1.0, max_open=4.0)
    now = 0.0
    br.record(False, now)
    br.record(False, now)
    assert br.state == OPEN
    expected = 1.0
    for _ in range(n_probe_failures):
        now = br.opened_at + br.open_for  # quarantine elapsed: probe due
        assert br.allow(now)  # the single half-open probe
        br.record(False, now)
        assert br.state == OPEN
        expected = min(4.0, expected * 2)
        assert br.open_for == expected
    # A successful probe recloses and resets the quarantine duration.
    now = br.opened_at + br.open_for
    assert br.allow(now)
    br.record(True, now)
    assert br.state == CLOSED
    assert br.open_for == br.base_open_for


# -- LaneStore --------------------------------------------------------------

lane_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.sampled_from((CONTROL, BULK))),
        st.tuples(st.just("get"), st.none()),
    ),
    max_size=60,
)


@given(lane_ops, st.integers(min_value=1, max_value=5), st.booleans())
@settings(max_examples=200)
def test_lanestore_capacity_and_priority(ops, cap, shed_oldest):
    """For any put/get interleaving: the bulk lane never exceeds its
    capacity, control items are never lost or shed, and a get never
    returns a bulk item while control items are queued."""
    sim = Simulator()
    shed = []
    store = LaneStore(sim, bulk_capacity=cap, shed_oldest=shed_oldest,
                      on_shed=shed.append)
    seq = 0
    control_in, control_out = [], []
    waiting = []
    for op, lane in ops:
        if op == "put":
            seq += 1
            item = (lane, seq)
            admitted = store.try_put(item, lane=lane)
            if lane == CONTROL:
                assert admitted, "control admission is unconditional"
                control_in.append(item)
            elif not admitted:
                assert not shed_oldest and not waiting
        else:
            waiting.append(store.get())
        assert len(store.bulk) <= cap
        assert all(it[0] == BULK for it in shed), "control must never be shed"
        # Triggered getters consume in order; collect what they received.
        for ev in waiting[:]:
            if ev.triggered:
                waiting.remove(ev)
                if ev.value[0] == CONTROL:
                    control_out.append(ev.value)
    # Drain: everything control that went in comes out, before any
    # queued bulk, and exactly once.
    while len(store):
        ev = store.get()
        assert ev.triggered
        if ev.value[0] == CONTROL:
            assert not control_out or control_out[-1][1] < ev.value[1]
            control_out.append(ev.value)
        else:
            assert not store.control, "bulk served while control queued"
    assert control_out == control_in


@given(st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=10))
def test_lanestore_shed_oldest_keeps_newest(cap, extra):
    """RPC mode sheds the *oldest* bulk item: after overflow, the queue
    holds exactly the newest ``cap`` items, in order."""
    sim = Simulator()
    shed = []
    store = LaneStore(sim, bulk_capacity=cap, shed_oldest=True,
                      on_shed=shed.append)
    n = cap + extra
    for i in range(n):
        assert store.try_put(i)
    assert list(store.bulk) == list(range(n - cap, n))
    assert shed == list(range(extra))
