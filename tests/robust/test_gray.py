"""End-to-end gray-failure scenario (E15's engine).

One full seeded run each way: the differential detector must pass all
gray criteria; the heartbeat-only baseline must visibly exhibit the
gray failure modes (never detecting the zombie, falsely killing hosts
whose only crime is a delayed heartbeat). Both are multi-fault 40 s
simulations, hence the slow marker — CI runs them in the chaos job's
sweep, not tier-1.
"""

import pytest

from repro.robust.chaos import run_gray

pytestmark = pytest.mark.slow


def test_gray_differential_seed1_passes_all_criteria():
    report = run_gray(1, flight=False)
    assert report["ok"], [n for n, ok, _ in report["criteria"] if not ok]
    assert report["false_lease_deaths"] == 0
    assert report["corrupt_delivered"] == 0
    assert report["rx_corrupt_dropped"] > 0      # the corruptor did fire
    assert report["detection_s"] is not None and report["detection_s"] < 5.0
    assert report["probe_saved"] > 0             # lapsed leases were probed


def test_gray_heartbeat_only_baseline_exhibits_the_failure():
    report = run_gray(1, differential=False, flight=False)
    # The baseline never quarantines the zombie...
    assert report["detection_s"] is None
    # ...and declares healthy hosts dead off their lapsed leases.
    assert report["false_lease_deaths"] > 0
    assert report["probe_saved"] == 0
