"""Unit tests for the differential HealthBoard.

The load-bearing semantics, each pinned by a test:

* application kinds (rpc, digest) trump transport kinds (srudp,
  heartbeat) — a zombie whose NIC acks every frame must still be
  quarantinable on failed work alone;
* ``iface_quarantined`` never falls back to the aggregate cell — a
  peer-wide quarantine must not condemn every sibling path at once;
* hysteresis: quarantine needs ``min_samples`` and a score below the
  threshold, release needs recovery *above* a higher one or a lapsed
  probation window;
* the heartbeat-only baseline (``enabled = False``) scores everything
  1.0 and quarantines nothing.
"""

from repro.robust.health import APP_KINDS, KIND_WEIGHTS, HealthBoard
from repro.sim import Simulator


def fresh(**kw):
    return HealthBoard(Simulator(), owner="t", **kw)


def feed(board, peer, ok, kind, n, iface="*"):
    for _ in range(n):
        board.note_outcome(peer, ok, kind=kind, iface=iface)


def test_app_kinds_trump_transport():
    """The zombie case: healthy srudp (its NIC acks everything) plus
    failing rpc. With weighted averaging the transport EWMA of 1.0
    would floor the score at w_srudp/(w_rpc+w_srudp) = 0.43 — above the
    quarantine threshold, an undetectable zombie. App evidence must
    exclude the transport kinds instead."""
    b = fresh()
    feed(b, "z", True, "srudp", 20)
    feed(b, "z", False, "rpc", 8)
    assert b.score("z") < b.quarantine_below
    assert b.is_quarantined("z")


def test_transport_fills_in_without_app_evidence():
    """Per-iface cells fed purely by srudp outcomes still score and
    quarantine — transport evidence counts when it is all there is."""
    b = fresh()
    feed(b, "p", False, "srudp", 6, iface="eth0")
    assert b.score("p", "eth0") < b.quarantine_below
    assert b.iface_quarantined("p", "eth0")


def test_iface_quarantined_never_falls_back_to_aggregate():
    """rpc outcomes carry no iface: they quarantine the aggregate cell
    only. The per-iface check must stay clean or the path selector
    would see every sibling path condemned at once."""
    b = fresh()
    feed(b, "p", False, "rpc", 8)
    assert b.is_quarantined("p")
    assert b.is_quarantined("p", "eth0")       # aggregate fallback: yes
    assert not b.iface_quarantined("p", "eth0")  # strict check: no


def test_min_samples_gate():
    """A burst shorter than min_samples never quarantines — one lost
    frame (or three) must not flap a peer. alpha=0.5 drives the score
    below threshold by the second failure, so the gate is the only
    thing holding the flag back."""
    b = fresh(min_samples=4, alpha=0.5)
    feed(b, "p", False, "rpc", 3)
    assert b.score("p") < b.quarantine_below
    assert not b.is_quarantined("p")
    feed(b, "p", False, "rpc", 1)
    assert b.is_quarantined("p")


def test_probation_then_recovery():
    """The flag clears after probation even at a low score (the peer
    earns a re-probe), and successes above recover_above release it."""
    b = fresh(probation=10.0)
    feed(b, "p", False, "rpc", 8)
    assert b.is_quarantined("p")
    b.sim.run(until=10.0)
    assert not b.is_quarantined("p")
    feed(b, "p", True, "rpc", 12)
    assert b.score("p") > b.recover_above
    assert not b.is_quarantined("p")
    assert [w for _, _, _, w in b.transitions] == ["quarantine", "release"]


def test_heartbeat_only_baseline_is_blind():
    b = fresh()
    b.enabled = False
    feed(b, "p", False, "rpc", 50)
    assert b.score("p") == 1.0
    assert not b.is_quarantined("p")
    assert not b.iface_quarantined("p", "eth0")
    assert b.transitions == []


def test_weights_cover_app_kinds():
    assert APP_KINDS <= set(KIND_WEIGHTS)
    assert abs(sum(KIND_WEIGHTS.values()) - 1.0) < 1e-9
