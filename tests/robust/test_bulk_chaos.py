"""Bulk-distribution chaos: kill relays mid-object, every invariant holds."""

import pytest

from repro.robust.chaos import DEFAULT_SEEDS, format_bulk_report, run_bulk_chaos


@pytest.mark.parametrize("seed", DEFAULT_SEEDS[:2])
def test_bulk_chaos_invariants_hold(seed):
    report = run_bulk_chaos(seed)
    assert report["ok"], format_bulk_report(report)
    # The run must actually have exercised failover, not just idled: the
    # assassin kills both victims strictly mid-object (progress-triggered,
    # so this holds on every seed), and their fetches must resume.
    assert len(report["killed"]) == 2
    assert report["crashes"] >= 2
    assert report["completed"] == report["hosts"]


@pytest.mark.slow
@pytest.mark.parametrize("seed", DEFAULT_SEEDS[2:])
def test_bulk_chaos_invariants_hold_slow(seed):
    report = run_bulk_chaos(seed)
    assert report["ok"], format_bulk_report(report)


def test_bulk_chaos_is_seed_deterministic():
    a = run_bulk_chaos(2)
    b = run_bulk_chaos(2)
    assert a["events"] == b["events"]
    assert a["killed"] == b["killed"]
    assert a["chunk_commits"] == b["chunk_commits"]
    assert a["elapsed"] == b["elapsed"]
    assert a["ok"] and b["ok"]
    assert run_bulk_chaos(3)["events"] != a["events"]
