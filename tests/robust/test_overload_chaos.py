"""Scenario tests: the control plane survives overload (E12 smoke).

The unit tests in test_overload.py cover the primitives; these drive
full sites. The key property throughout: a host that is *slow* — CPU
starved, behind a congested link, or serving a saturated queue — is not
*dead*, and the Guardian must never declare it so.
"""

import pytest

from repro.core.checkpoint import checkpoint_to_files
from repro.core.environment import SnipeEnvironment
from repro.daemon.tasks import TaskSpec
from repro.robust.chaos import run_overload


def test_guardian_does_not_declare_overloaded_host_dead():
    """A worker slowed 10x mid-run keeps its lease; no false death."""
    env = SnipeEnvironment(seed=3)
    env.add_segment("lan")
    for name in ("h0", "h1", "w0"):
        env.add_host(name, segments=["lan"])
    env.add_rc_servers(["h0", "h1"])
    for name in ("h0", "h1", "w0"):
        env.boot_daemon(name)
    env.add_rm("h0")
    env.add_file_server("h0")
    env.add_guardian("h1")

    @env.program("grind")
    def grind(ctx, total):
        yield checkpoint_to_files(ctx)  # recoverable: Guardian watches it
        for _ in range(total):
            yield ctx.compute(0.2)
        return total

    env.settle(2.0)
    env.spawn(TaskSpec(program="grind", params={"total": 100}), on="w0")
    # Starve the worker's CPU for far longer than the lease TTL (3s):
    # compute stretches 10x but the daemon's heartbeat keeps running.
    env.failures.slow_host_at(3.0, "w0", factor=10.0, duration=12.0)
    env.run(until=20.0)

    guardian = env.guardians["h1"]
    assert guardian.deaths_declared == 0
    assert guardian.recoveries == []
    # The slowdown really happened and was undone.
    kinds = [k for _, k, _ in env.failures.log]
    assert kinds == ["host_slowed", "host_unslowed"]
    assert env.topology.hosts["w0"].cpu_speed == pytest.approx(
        env.topology.hosts["h0"].cpu_speed
    )


def test_overload_scenario_adaptive_keeps_control_plane_clean():
    """E12 smoke at 5x saturation: zero false deaths, zero lost
    heartbeats, bounded control p99."""
    report = run_overload(seed=2, saturation=5.0, adaptive=True)
    assert report["deaths_declared"] == 0
    assert report["recoveries"] == 0
    assert report["heartbeats_failed"] == 0
    assert report["control_calls"] > 0
    assert report["control_p99_s"] <= 0.5
    assert report["ok"], report["criteria"]
    # Overload control was actually exercised, not idled through: the
    # site saw several times its capacity and shed bulk load somewhere
    # (client fast-fail via breakers, server shed, or backpressure).
    assert report["load"]["offered"] > report["load"]["ok"] * 2
    assert report["breaker_opens"] + report["requests_shed"] > 0


def test_overload_scenario_is_seed_deterministic():
    a = run_overload(seed=4, saturation=3.0, adaptive=True)
    b = run_overload(seed=4, saturation=3.0, adaptive=True)
    for key in ("goodput_ops_s", "control_p99_s", "deaths_declared",
                "heartbeats_ok", "heartbeats_failed", "load"):
        assert a[key] == b[key]


def test_overload_static_baseline_shows_the_failure_mode():
    """Fixed timeouts at 5x saturation lose heartbeats — the regression
    guard that keeps the E12 comparison meaningful."""
    report = run_overload(seed=1, saturation=5.0, adaptive=False)
    assert report["heartbeats_failed"] > 0
    assert not report["ok"]
