"""Unit tests for the overload-control primitives (repro.robust.overload)."""

import pytest

from repro.robust.overload import (
    BULK,
    CLOSED,
    CONTROL,
    HALF_OPEN,
    OPEN,
    AdaptiveTimeouts,
    BreakerBoard,
    CircuitBreaker,
    LaneStore,
    OverloadConfig,
    RttEstimator,
    lane_for_request,
)
from repro.sim import Simulator


# -- RTT estimation ---------------------------------------------------------

def test_estimator_cold_start_uses_initial_rto():
    est = RttEstimator(initial_rto=0.5, min_rto=0.01, max_rto=10.0)
    assert est.cold
    assert est.rto() == pytest.approx(0.5)


def test_estimator_converges_to_steady_rtt():
    est = RttEstimator(initial_rto=5.0, min_rto=0.001, max_rto=30.0)
    for _ in range(50):
        est.observe(0.1)
    # Constant samples: srtt -> rtt, rttvar -> 0, so rto -> ~srtt.
    assert est.srtt == pytest.approx(0.1, rel=1e-6)
    assert est.rttvar == pytest.approx(0.0, abs=1e-6)
    assert est.rto() == pytest.approx(0.1, rel=0.01)


def test_estimator_first_sample_initialises_rfc6298():
    est = RttEstimator()
    est.observe(0.2)
    assert est.srtt == pytest.approx(0.2)
    assert est.rttvar == pytest.approx(0.1)
    assert est.rto() == pytest.approx(0.2 + 4 * 0.1)


def test_estimator_variance_widens_rto_under_jitter():
    est = RttEstimator(initial_rto=1.0, min_rto=0.001, max_rto=30.0)
    for rtt in (0.1, 0.5, 0.1, 0.5, 0.1, 0.5):
        est.observe(rtt)
    # Alternating samples keep rttvar well above zero: the rto carries
    # real headroom over the mean instead of hugging it.
    assert est.rto() > est.srtt * 1.5


def test_estimator_backoff_doubles_and_caps():
    est = RttEstimator(initial_rto=0.1, min_rto=0.001, max_rto=1.0)
    est.observe(0.1)  # rto = 0.1 + 4*0.05 = 0.3
    base = est.rto()
    est.backoff()
    assert est.rto() == pytest.approx(min(1.0, base * 2))
    for _ in range(10):
        est.backoff()
    assert est.rto() == pytest.approx(1.0)  # capped at max_rto
    # A fresh sample resets the backoff shift.
    est.observe(0.1)
    assert est.rto() < 1.0


def test_estimator_respects_floor():
    est = RttEstimator(initial_rto=1.0, min_rto=0.5, max_rto=30.0)
    for _ in range(20):
        est.observe(0.001)  # suspiciously fast path
    assert est.rto() >= 0.5


# -- circuit breaker --------------------------------------------------------

def test_breaker_needs_min_samples_before_tripping():
    br = CircuitBreaker(window=8, min_samples=4, failure_threshold=0.5)
    for _ in range(3):
        br.record(False, now=0.0)
    assert br.state == CLOSED  # 3 failures, but below min_samples


def test_breaker_opens_at_failure_threshold_and_rejects():
    br = CircuitBreaker(window=8, min_samples=4, failure_threshold=0.5, open_for=1.0)
    for ok in (True, False, False, True, False, False):
        br.record(ok, now=0.0)
    assert br.state == OPEN
    assert not br.allow(now=0.5)  # still inside the open window


def test_breaker_half_open_probe_then_reclose():
    br = CircuitBreaker(window=8, min_samples=2, failure_threshold=0.5, open_for=1.0)
    br.record(False, now=0.0)
    br.record(False, now=0.0)
    assert br.state == OPEN
    # Past the open window: exactly one probe is admitted.
    assert br.allow(now=1.5)
    assert br.state == HALF_OPEN
    assert not br.allow(now=1.5)  # second caller still rejected
    br.record(True, now=1.6)
    assert br.state == CLOSED
    assert br.allow(now=1.7)


def test_breaker_failed_probe_reopens_with_doubled_window():
    br = CircuitBreaker(window=8, min_samples=2, failure_threshold=0.5,
                        open_for=1.0, max_open=3.0)
    br.record(False, now=0.0)
    br.record(False, now=0.0)
    assert br.allow(now=1.5)  # probe
    br.record(False, now=1.6)  # probe fails
    assert br.state == OPEN
    assert br.open_for == pytest.approx(2.0)
    assert not br.allow(now=3.0)  # 1.4s into a 2s window
    assert br.allow(now=3.7)  # next probe
    br.record(False, now=3.8)
    assert br.open_for == pytest.approx(3.0)  # capped at max_open
    # A successful probe resets the penalty to its base value.
    assert br.allow(now=7.0)
    br.record(True, now=7.1)
    assert br.state == CLOSED
    assert br.open_for == pytest.approx(1.0)


def test_breaker_ignores_stragglers_while_open():
    br = CircuitBreaker(window=8, min_samples=2, failure_threshold=0.5, open_for=5.0)
    br.record(False, now=0.0)
    br.record(False, now=0.0)
    assert br.state == OPEN
    br.record(True, now=1.0)  # late reply from before the trip
    assert br.state == OPEN  # only the probe may reclose it


def test_breaker_board_peek_and_due_probe_via_record():
    sim = Simulator()
    board = BreakerBoard(sim, scope="test", window=8, min_samples=2,
                         failure_threshold=0.5, open_for=1.0)
    key = ("b", "eth0")
    board.record(key, False)
    board.record(key, False)
    assert board.is_open(key)
    assert not board.is_open(("other", "eth0"))  # unknown key: closed
    sim.run(until=2.0)
    # Past due: the peek reports available so candidate ordering lets a
    # probe happen...
    assert not board.is_open(key)
    # ...and a recorded outcome from a peek-only user acts as that probe.
    board.record(key, True)
    assert board.breaker(key).state == CLOSED


def test_breaker_board_counts_rejections():
    sim = Simulator()
    board = BreakerBoard(sim, scope="test", window=8, min_samples=2,
                         failure_threshold=0.5, open_for=10.0)
    board.record(("x", 1), False)
    board.record(("x", 1), False)
    assert not board.allow(("x", 1))
    assert sim.obs.metrics.counter("robust.breaker_rejected", scope="test").value == 1
    assert sim.obs.metrics.counter("robust.breaker_opened", scope="test").value == 1


# -- priority lanes ---------------------------------------------------------

def test_lanestore_control_jumps_bulk():
    sim = Simulator()
    q = LaneStore(sim)
    q.try_put("b1", lane=BULK)
    q.try_put("c1", lane=CONTROL)
    q.try_put("b2", lane=BULK)
    assert q.get().value == "c1"
    assert q.get().value == "b1"
    assert q.get().value == "b2"


def test_lanestore_backpressure_rejects_when_full():
    sim = Simulator()
    q = LaneStore(sim, bulk_capacity=2)
    assert q.try_put("b1")
    assert q.try_put("b2")
    assert not q.try_put("b3")  # bulk full -> backpressure
    assert q.rejected == 1
    assert q.try_put("c1", lane=CONTROL)  # control always admitted
    assert len(q) == 3


def test_lanestore_shed_oldest_evicts_head():
    sim = Simulator()
    shed = []
    q = LaneStore(sim, bulk_capacity=2, shed_oldest=True, on_shed=shed.append)
    q.try_put("b1")
    q.try_put("b2")
    assert q.try_put("b3")  # admitted by evicting b1
    assert shed == ["b1"]
    assert q.sheds == 1
    assert q.get().value == "b2"
    assert q.get().value == "b3"


def test_lanestore_direct_handoff_to_waiting_getter():
    sim = Simulator()
    q = LaneStore(sim, bulk_capacity=0)  # no queueing capacity at all
    ev = q.get()
    assert not ev.triggered
    assert q.try_put("item")  # waiting consumer: no queue forms
    assert ev.triggered and ev.value == "item"


# -- lane classification ----------------------------------------------------

class _Req:
    def __init__(self, method, lane=None):
        self.method = method
        if lane is not None:
            self.lane = lane


def test_lane_for_request_explicit_tag_wins():
    assert lane_for_request(_Req("rc.lookup", lane=CONTROL)) == CONTROL


def test_lane_for_request_method_table_is_the_safety_net():
    assert lane_for_request(_Req("daemon.fence")) == CONTROL
    assert lane_for_request(_Req("rc.sync")) == CONTROL
    assert lane_for_request(_Req("rc.lookup")) == BULK
    assert lane_for_request("not-a-request") == BULK


# -- adaptive timeouts ------------------------------------------------------

def test_adaptive_timeouts_static_when_disabled():
    at = AdaptiveTimeouts(OverloadConfig(adaptive=False))
    at.observe("h", 1, "m", 5.0, 0.01)
    assert at.timeout_for("h", 1, "m", 5.0) == 5.0
    assert at.estimators == {}  # nothing learned, nothing stored


def test_adaptive_timeouts_cold_start_is_static_value():
    at = AdaptiveTimeouts(OverloadConfig())
    assert at.timeout_for("h", 1, "m", 5.0) == pytest.approx(5.0)


def test_adaptive_timeouts_learn_per_method_with_floor():
    cfg = OverloadConfig(timeout_floor_factor=0.5, max_timeout=30.0)
    at = AdaptiveTimeouts(cfg)
    for _ in range(30):
        at.observe("h", 1, "fast", 5.0, 0.01)
    # Learned timeout collapses toward the observed RTT but never below
    # floor_factor x static.
    assert at.timeout_for("h", 1, "fast", 5.0) == pytest.approx(2.5)
    # A different method on the same destination is a separate estimator.
    assert at.timeout_for("h", 1, "slow", 5.0) == pytest.approx(5.0)


def test_adaptive_timeouts_backoff_after_timeouts():
    at = AdaptiveTimeouts(OverloadConfig(max_timeout=30.0))
    at.observe("h", 1, "m", 5.0, 1.0)
    base = at.timeout_for("h", 1, "m", 5.0)
    at.note_timeout("h", 1, "m", 5.0)
    assert at.timeout_for("h", 1, "m", 5.0) == pytest.approx(min(30.0, base * 2))


def test_sim_overload_property_is_lazy_and_stable():
    sim = Simulator()
    cfg = sim.overload
    assert isinstance(cfg, OverloadConfig)
    cfg.adaptive = False
    assert sim.overload is cfg  # same object every access
