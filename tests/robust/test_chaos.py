"""The seeded chaos suite: every invariant must hold for every seed."""

import pytest

from repro.robust.chaos import DEFAULT_SEEDS, format_report, run_chaos


@pytest.mark.parametrize("seed", DEFAULT_SEEDS)
def test_chaos_invariants_hold(seed):
    report = run_chaos(seed)
    assert report["ok"], format_report(report)
    # The run must actually have exercised self-healing, not just idled.
    assert report["recoveries"], "fault schedule produced no recoveries"
    for rec in report["recoveries"]:
        assert rec["new_inc"] > (rec["old_inc"] or 0)
    assert not report["unrecoverable"]


def test_chaos_is_seed_deterministic():
    a = run_chaos(2)
    b = run_chaos(2)
    # The fault schedule (and hence the injector's event log) is wholly
    # seed-driven, and URN/incarnation counters are per-Simulator, so two
    # same-seed runs agree on *everything*: fault timing, which tasks
    # died, which incarnations replaced them, and when — even within one
    # process.
    assert a["events"] == b["events"]
    assert [(t, k, w) for t, k, w in a["fault_log"]] == [
        (t, k, w) for t, k, w in b["fault_log"]
    ]
    assert a["recoveries"] == b["recoveries"]
    assert a["msgs_fenced"] == b["msgs_fenced"]
    assert a["ok"] and b["ok"]
    assert run_chaos(3)["events"] != a["events"]


def test_chaos_mttr_bounded_by_detection_window():
    """Recovery latency (detection -> respawned) must be bounded by the
    spawn/fetch slack; detection itself is bounded by lease + scan +
    grace. Together: MTTR from crash is bounded, which E11 measures.

    Budget: quorum confirm + fence write + checkpoint fetch (with
    retries) + RM placement + up to 5 s polling for the successor's
    registration — comfortably under 8 s even mid-churn."""
    report = run_chaos(1)
    assert report["ok"], format_report(report)
    for rec in report["recoveries"]:
        assert rec["recovered_at"] - rec["detected_at"] < 8.0
