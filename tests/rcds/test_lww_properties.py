"""Property tests: LWW merge is a join, so replicas converge.

The convergence oracle in :mod:`repro.check.oracles` mirrors every
replica through :func:`repro.check.oracles.lww_merge` — these tests
prove that shared specification is a commutative, associative,
idempotent join over entries with distinct stamps, and that the real
:class:`~repro.rcds.records.RCStore` computes the same fold no matter
what order records arrive in. Stamps are unique by construction (the
origin id is the final tiebreak and every generated entry gets a
distinct one), matching production where two replicas can never mint
the same stamp.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.oracles import LwwMap, lww_merge
from repro.rcds.records import Entry, RCStore

walls = st.floats(min_value=0.0, max_value=100.0,
                  allow_nan=False, allow_infinity=False)


def entries(n: int):
    """Strategy: *n* entries with pairwise-distinct stamps.

    Distinctness comes for free from unique origin ids — the stamp's
    final component — while walls and lamports are free to collide,
    which is exactly where a broken comparator would slip.
    """
    one = st.tuples(walls, st.integers(min_value=0, max_value=20),
                    st.integers(), st.booleans())
    return st.lists(one, min_size=n, max_size=n).map(lambda rows: [
        Entry(value=v, lamport=l, origin=f"s{i}", wall=w, deleted=d)
        for i, (w, l, v, d) in enumerate(rows)
    ])


@given(entries(2))
def test_merge_commutative(es):
    a, b = es
    assert lww_merge(a, b) == lww_merge(b, a)


@given(entries(3))
def test_merge_associative(es):
    a, b, c = es
    assert lww_merge(lww_merge(a, b), c) == lww_merge(a, lww_merge(b, c))


@given(entries(1))
def test_merge_idempotent(es):
    (a,) = es
    assert lww_merge(a, a) == a


@given(entries(6), st.integers())
def test_lwwmap_fold_is_order_independent(es, shuffle_seed):
    """Folding any permutation of the same entries into the reference
    model yields the same register value — convergence, in miniature."""
    forward, shuffled = LwwMap(), LwwMap()
    perm = list(es)
    random.Random(shuffle_seed).shuffle(perm)
    for e in es:
        forward.apply("uri", "k", e)
    for e in perm:
        shuffled.apply("uri", "k", e)
    assert forward.get("uri", "k") == shuffled.get("uri", "k")
    assert forward.get("uri", "k") == max(es, key=lambda e: e.stamp())


# -- the real store against the model --------------------------------------

writes = st.lists(
    st.tuples(
        st.sampled_from(("rc-a", "rc-b", "rc-c")),     # accepting origin
        st.sampled_from(("uri:x", "uri:y")),           # register uri
        st.sampled_from(("state", "host")),            # register key
        st.integers(min_value=0, max_value=99),        # value
        walls,                                         # accept timestamp
    ),
    min_size=1, max_size=30,
)


def _accept_all(ws):
    """Run each write at its origin replica; return (origins, records)."""
    origins = {o: RCStore(o) for o in ("rc-a", "rc-b", "rc-c")}
    records = []
    for origin, uri, key, value, wall in ws:
        records.extend(origins[origin].local_update(uri, {key: value}, wall))
    return origins, records


@given(writes, st.integers())
@settings(max_examples=150)
def test_store_apply_is_permutation_invariant(ws, shuffle_seed):
    """Two fresh replicas fed the same records in different orders end
    up with identical registers — the convergence claim of §2.1."""
    _, records = _accept_all(ws)
    forward, shuffled = RCStore("rc-f"), RCStore("rc-s")
    perm = list(records)
    random.Random(shuffle_seed).shuffle(perm)
    forward.apply_remote(records)
    shuffled.apply_remote(perm)
    assert forward.data == shuffled.data
    assert forward.snapshot() == shuffled.snapshot()


@given(writes)
@settings(max_examples=150)
def test_store_registers_match_reference_model(ws):
    """After merging everything everywhere, every replica's register
    holds exactly the :class:`LwwMap` fold of all accepted entries —
    the store and the oracle's model agree on what LWW *means*."""
    origins, records = _accept_all(ws)
    model = LwwMap()
    for rec in records:
        model.apply(rec.uri, rec.key, rec.entry)
    for store in origins.values():
        store.apply_remote(records)
        for (uri, key), want in model.regs.items():
            assert store.data[uri][key] == want


@given(writes)
def test_store_resync_is_idempotent(ws):
    """Re-applying an already-merged record batch changes nothing (the
    version vector dedupes), so repeated anti-entropy rounds are safe."""
    _, records = _accept_all(ws)
    store = RCStore("rc-f")
    assert store.apply_remote(records) == len(records)
    before = {u: dict(b) for u, b in store.data.items()}
    assert store.apply_remote(records) == 0
    assert store.data == before
