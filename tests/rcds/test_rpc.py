"""Unit tests for the RPC layer."""

import pytest

from repro.rpc import RpcClient, RpcError, RpcServer

from ..transport.conftest import make_lan


def test_basic_call():
    sim, topo, (a, b) = make_lan()
    server = RpcServer(b, 9000)
    server.register("add", lambda args: args["x"] + args["y"])
    client = RpcClient(a)

    def go(sim):
        result = yield client.call("h1", 9000, "add", x=2, y=3)
        return result

    p = sim.process(go(sim))
    assert sim.run(until=p) == 5


def test_unknown_method_is_error():
    sim, topo, (a, b) = make_lan()
    RpcServer(b, 9000)
    client = RpcClient(a)

    def go(sim):
        try:
            yield client.call("h1", 9000, "nope")
        except RpcError as exc:
            return str(exc)

    p = sim.process(go(sim))
    assert "no method" in sim.run(until=p)


def test_handler_exception_becomes_error_response():
    sim, topo, (a, b) = make_lan()
    server = RpcServer(b, 9000)

    def boom(args):
        raise ValueError("kaput")

    server.register("boom", boom)
    client = RpcClient(a)

    def go(sim):
        with pytest.raises(RpcError, match="kaput"):
            yield client.call("h1", 9000, "boom")
        return "done"

    p = sim.process(go(sim))
    assert sim.run(until=p) == "done"


def test_generator_handler_can_wait():
    sim, topo, (a, b) = make_lan()
    server = RpcServer(b, 9000)

    def slow(args):
        yield b.sim.timeout(0.5)
        return "slept"

    server.register("slow", slow)
    client = RpcClient(a)

    def go(sim):
        result = yield client.call("h1", 9000, "slow")
        return (result, sim.now)

    p = sim.process(go(sim))
    result, t = sim.run(until=p)
    assert result == "slept"
    assert t >= 0.5


def test_call_to_dead_host_raises():
    sim, topo, (a, b) = make_lan()
    RpcServer(b, 9000)
    b.crash()
    client = RpcClient(a)

    def go(sim):
        try:
            yield client.call("h1", 9000, "x", timeout=0.5)
        except RpcError:
            return "error"

    p = sim.process(go(sim))
    assert sim.run(until=p) == "error"


def test_hmac_auth_rejects_wrong_secret():
    sim, topo, (a, b) = make_lan()
    server = RpcServer(b, 9000, secret=b"right")
    server.register("op", lambda args: "ok")
    good = RpcClient(a, secret=b"right")
    bad = RpcClient(a, secret=b"wrong")

    def go(sim):
        ok = yield good.call("h1", 9000, "op")
        try:
            yield bad.call("h1", 9000, "op")
            denied = False
        except RpcError as exc:
            denied = "auth" in str(exc)
        return ok, denied

    p = sim.process(go(sim))
    assert sim.run(until=p) == ("ok", True)
    assert server.auth_failures == 1


def test_unauthenticated_request_rejected_when_secret_set():
    sim, topo, (a, b) = make_lan()
    server = RpcServer(b, 9000, secret=b"s")
    server.register("op", lambda args: "ok")
    noauth = RpcClient(a)  # sends no tag at all

    def go(sim):
        try:
            yield noauth.call("h1", 9000, "op")
        except RpcError:
            return "denied"

    p = sim.process(go(sim))
    assert sim.run(until=p) == "denied"


def test_concurrent_calls_matched_by_request_id():
    sim, topo, (a, b) = make_lan()
    server = RpcServer(b, 9000)
    server.register("echo", lambda args: args["v"])
    client = RpcClient(a)

    def go(sim):
        calls = [client.call("h1", 9000, "echo", v=i) for i in range(10)]
        got = yield sim.all_of(calls)
        return sorted(got.values())

    p = sim.process(go(sim))
    assert sim.run(until=p) == list(range(10))


def test_service_time_serialises_requests():
    """A server with service_time handles requests one at a time."""
    sim, topo, (a, b) = make_lan()
    server = RpcServer(b, 9000, service_time=0.1)
    server.register("tick", lambda args: sim.now)
    client = RpcClient(a)

    def go(sim):
        calls = [client.call("h1", 9000, "tick") for _ in range(3)]
        got = yield sim.all_of(calls)
        return sorted(got.values())

    p = sim.process(go(sim))
    times = sim.run(until=p)
    # Each response is ~0.1s after the previous: the queue is serial.
    assert times[1] - times[0] == pytest.approx(0.1, abs=0.02)
    assert times[2] - times[1] == pytest.approx(0.1, abs=0.02)
