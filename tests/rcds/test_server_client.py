"""Integration tests: RC servers + clients over the simulated network."""


from repro.rcds import ALL, MASTER, ONE, QUORUM, ConsistencyError, RCClient, RCServer
from repro.rcds.lifn import LifnRegistry

from ..transport.conftest import make_lan


def cluster(n_servers=3, n_hosts=5, seed=0, **server_kw):
    sim, topo, hosts = make_lan(n_hosts=n_hosts, seed=seed)
    replicas = [(f"h{i}", 385) for i in range(n_servers)]
    servers = [
        RCServer(hosts[i], peers=[r for r in replicas if r[0] != f"h{i}"], **server_kw)
        for i in range(n_servers)
    ]
    return sim, topo, hosts, servers, replicas


def run_proc(sim, gen):
    p = sim.process(gen)
    return sim.run(until=p)


def test_update_then_lookup_one():
    sim, topo, hosts, servers, replicas = cluster()
    client = RCClient(hosts[4], replicas)

    def go(sim):
        yield client.update("urn:snipe:proc:t1", {"state": "running", "host": "h4"})
        got = yield client.lookup("urn:snipe:proc:t1")
        return got

    got = run_proc(sim, go(sim))
    assert got["state"]["value"] == "running"
    assert got["state"]["wall"] >= 0  # automatic timestamping


def test_anti_entropy_propagates_to_all_replicas():
    sim, topo, hosts, servers, replicas = cluster()
    client = RCClient(hosts[4], replicas)

    def go(sim):
        yield client.update("urn:x", {"v": 42}, consistency=ONE)
        yield sim.timeout(5.0)  # several anti-entropy rounds
        return None

    run_proc(sim, go(sim))
    for server in servers:
        assert server.store.get("urn:x", "v") == 42


def test_lookup_fails_over_to_live_replica():
    sim, topo, hosts, servers, replicas = cluster()
    client = RCClient(hosts[4], replicas, rpc_timeout=0.3)

    def go(sim):
        yield client.update("urn:x", {"v": 1}, consistency=ALL)
        hosts[0].crash()
        hosts[1].crash()
        got = yield client.lookup("urn:x", consistency=ONE)
        return got["v"]["value"]

    assert run_proc(sim, go(sim)) == 1
    assert client.failovers >= 0


def test_quorum_write_survives_minority_failure():
    sim, topo, hosts, servers, replicas = cluster()
    client = RCClient(hosts[4], replicas, rpc_timeout=0.3)

    def go(sim):
        hosts[2].crash()  # 2 of 3 replicas still up
        yield client.update("urn:x", {"v": "q"}, consistency=QUORUM)
        got = yield client.lookup("urn:x", consistency=QUORUM)
        return got["v"]["value"]

    assert run_proc(sim, go(sim)) == "q"


def test_quorum_fails_under_majority_failure():
    sim, topo, hosts, servers, replicas = cluster()
    client = RCClient(hosts[4], replicas, rpc_timeout=0.2)

    def go(sim):
        hosts[0].crash()
        hosts[1].crash()
        try:
            yield client.update("urn:x", {"v": 1}, consistency=QUORUM)
        except ConsistencyError:
            return "failed"
        return "ok"

    assert run_proc(sim, go(sim)) == "failed"


def test_quorum_read_sees_freshest_write():
    """R+W overlap: a QUORUM read after a QUORUM write returns the new value
    even before anti-entropy runs."""
    sim, topo, hosts, servers, replicas = cluster(sync_interval=1000.0)
    client = RCClient(hosts[4], replicas)

    def go(sim):
        yield client.update("urn:x", {"v": "old"}, consistency=ALL)
        yield client.update("urn:x", {"v": "new"}, consistency=QUORUM)
        got = yield client.lookup("urn:x", consistency=QUORUM)
        return got["v"]["value"]

    assert run_proc(sim, go(sim)) == "new"


def test_master_mode_fails_when_master_down():
    """The LDAP/MDS-style baseline loses write availability with its master."""
    sim, topo, hosts, servers, replicas = cluster()
    client = RCClient(hosts[4], replicas, rpc_timeout=0.2)

    def go(sim):
        yield client.update("urn:x", {"v": 1}, consistency=MASTER)
        hosts[0].crash()  # replicas[0] is the master
        try:
            yield client.update("urn:x", {"v": 2}, consistency=MASTER)
        except ConsistencyError:
            return "write-unavailable"
        return "ok"

    assert run_proc(sim, go(sim)) == "write-unavailable"


def test_shared_secret_cluster():
    sim, topo, hosts, servers, replicas = cluster(secret=b"rc-secret")
    good = RCClient(hosts[4], replicas, secret=b"rc-secret")
    bad = RCClient(hosts[3], replicas, secret=b"intruder", rpc_timeout=0.2)

    def go(sim):
        yield good.update("urn:x", {"v": 1})
        try:
            yield bad.update("urn:x", {"v": 666})
        except ConsistencyError:
            return (yield good.get("urn:x", "v"))

    assert run_proc(sim, go(sim)) == 1


def test_query_lists_registered_processes():
    sim, topo, hosts, servers, replicas = cluster()
    client = RCClient(hosts[4], replicas)

    def go(sim):
        yield client.update("urn:snipe:proc:a", {"state": "running"}, consistency=ALL)
        yield client.update("urn:snipe:proc:b", {"state": "exited"}, consistency=ALL)
        return (yield client.query("urn:snipe:proc:"))

    assert run_proc(sim, go(sim)) == ["urn:snipe:proc:a", "urn:snipe:proc:b"]


def test_lifn_bind_resolve_closest():
    sim, topo, hosts, servers, replicas = cluster()
    client = RCClient(hosts[4], replicas)
    lifns = LifnRegistry(client)

    def go(sim):
        yield lifns.bind("data.bin", "file://h0/data.bin", content_hash="abc123")
        yield lifns.bind("data.bin", "file://h4/data.bin")
        locs = yield lifns.locations("data.bin")
        closest = yield lifns.closest_location("data.bin")
        chash = yield lifns.content_hash("data.bin")
        return locs, closest, chash

    locs, closest, chash = run_proc(sim, go(sim))
    assert locs == ["file://h0/data.bin", "file://h4/data.bin"]
    assert closest == "file://h4/data.bin"  # local replica preferred
    assert chash == "abc123"


def test_recovered_replica_catches_up():
    sim, topo, hosts, servers, replicas = cluster(sync_interval=0.3)
    client = RCClient(hosts[4], replicas, rpc_timeout=0.3)

    def go(sim):
        hosts[2].crash()
        yield client.update("urn:x", {"v": "while-down"}, consistency=QUORUM)
        yield sim.timeout(2.0)
        hosts[2].recover()
        yield sim.timeout(5.0)  # anti-entropy heals it
        return servers[2].store.get("urn:x", "v")

    assert run_proc(sim, go(sim)) == "while-down"
