"""Durable catalog state: snapshot + journal survive replica crashes.

The RC server journals every record entering its log (digest stamped)
and periodically folds the journal into a digest-verified snapshot, both
in the host's crash-surviving disk dict. These tests pin the restore
paths: a cold restart rebuilds the full visible state including
tombstones, a corrupted snapshot generation falls back to the previous
one, and a blackout of *every* replica — nobody left to anti-entropy
from — comes back from disk alone.
"""

from repro.rcds import ALL, RCClient, RCServer

from ..transport.conftest import make_lan


def one_server(snapshot_every=4, seed=0, **kw):
    sim, topo, hosts = make_lan(n_hosts=1, seed=seed)
    server = RCServer(hosts[0], peers=[], snapshot_every=snapshot_every, **kw)
    return sim, hosts[0], server


def test_cold_restart_recovers_state_and_tombstones():
    sim, host, server = one_server()
    store = server.store
    for i in range(1, 8):
        store.local_update("u", {"k": i}, wall=float(i))
    store.local_update("gone", {"k": "x"}, wall=8.0)
    store.local_delete("gone", None, wall=9.0)
    assert server.snapshots_written >= 1      # rotation actually happened

    host.crash()
    assert store.data == {}                   # memory really gone
    host.recover()

    assert server.restores == 1
    assert store.get("u", "k") == 7
    assert store.get("gone", "k") is None     # tombstone restored, not lost
    assert store.tombstone_count() == 1
    assert store.vector[store.server_id] == 9
    # The restored replica keeps accepting writes with fresh sequence
    # numbers — no fork of its own origin log.
    store.local_update("u", {"k": 99}, wall=10.0)
    assert store.vector[store.server_id] == 10


def test_double_crash_replays_the_same_disk():
    sim, host, server = one_server()
    store = server.store
    for i in range(1, 6):
        store.local_update("u", {"k": i}, wall=float(i))
    host.crash()
    host.recover()
    host.crash()
    host.recover()
    assert server.restores == 2
    assert store.get("u", "k") == 5


def test_corrupt_snapshot_falls_back_to_previous_generation():
    sim, host, server = one_server(snapshot_every=4)
    store = server.store
    for i in range(1, 4):                     # journal: 3 clean records
        store.local_update("u", {"k": i}, wall=float(i))
    host.corrupt_ckpt_writes = True
    store.local_update("u", {"k": 4}, wall=4.0)   # rots the journal entry
    host.corrupt_ckpt_writes = False              # ...and the snapshot it sealed
    for i in range(5, 7):
        store.local_update("u", {"k": i}, wall=float(i))

    host.crash()
    host.recover()

    assert server.snapshots_rejected == 1     # torn snapshot caught by digest
    assert server.journal_skipped == 1        # torn journal record caught too
    assert store.get("u", "k") == 6           # newest surviving write wins
    # The skipped record leaves a vector gap: knowledge stalls at the
    # contiguous point so anti-entropy would refill 4 from a peer.
    assert store.vector[store.server_id] == 3


def test_blackout_of_every_replica_restores_from_disk():
    sim, topo, hosts = make_lan(n_hosts=4, seed=7)
    replicas = [(f"h{i}", 385) for i in range(3)]
    servers = [
        RCServer(hosts[i], peers=[r for r in replicas if r[0] != f"h{i}"],
                 snapshot_every=8)
        for i in range(3)
    ]
    client = RCClient(hosts[3], replicas)

    def go(sim):
        yield client.update("urn:a", {"v": 1}, consistency=ALL)
        yield client.update("urn:b", {"v": 2}, consistency=ALL)
        yield client.delete("urn:b", None, consistency=ALL)
        yield sim.timeout(2.0)
        for h in hosts[:3]:
            h.crash()
        yield sim.timeout(1.0)
        for h in hosts[:3]:
            h.recover()
        yield sim.timeout(3.0)                # a few anti-entropy rounds
        got = yield client.lookup("urn:a")
        return got

    p = sim.process(go(sim))
    got = sim.run(until=p)
    assert got["v"]["value"] == 1
    for server in servers:
        assert server.restores == 1
        assert server.store.get("urn:a", "v") == 1
        assert server.store.get("urn:b", "v") is None   # delete survived
