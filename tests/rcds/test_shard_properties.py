"""Property tests: the shard router is a partition, splits are monotone.

The shard map's safety story rests on three structural facts the check
oracles and the client facade assume without re-checking:

* **Exactly one owner** — at any epoch, every URN matches exactly one
  longest owned prefix, so routing is a total function onto shard ids
  (the matching prefixes always form a nested chain).
* **Monotone splits** — a split only ever moves a name from the split
  shard to one of its children; no name moves sideways between
  unrelated shards, which is what lets per-shard convergence checks
  reason about split boundaries.
* **Deterministic router** — routing is a pure function of the
  serialized map: any replica or client that deserializes the same
  epoch routes every name identically.

Maps are generated the way production evolves them — an initial carve
plus a random sequence of ``plan_split``/``with_split`` steps over
random name populations — so the properties quantify over reachable
maps, not arbitrary prefix soups.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rcds.shard.map import ROOT_SID, ShardMap, plan_split

#: Small alphabet so generated names collide into shared prefixes often
#: (the interesting case for a radix router).
names_st = st.text(alphabet="abc/", min_size=0, max_size=8).map(
    lambda s: "s://" + s)


@st.composite
def evolutions(draw):
    """A reachable map evolution: ``(steps, names)`` where each step is
    ``(map_before, split_sid, child_sids, map_after)`` and the final
    element of the last step is the current map."""
    names = draw(st.lists(names_st, min_size=2, max_size=32, unique=True))
    m = ShardMap.initial([("r0", 385)]).with_shard(
        "app", ("s://",), (("n0", 1400),), parent=ROOT_SID)
    steps = []
    for i in range(draw(st.integers(min_value=0, max_value=4))):
        sid = draw(st.sampled_from(sorted(m.shards)))
        if sid == ROOT_SID:
            continue
        info = m.shards[sid]
        prefix = draw(st.sampled_from(sorted(info.prefixes)))
        owned = [n for n in names
                 if m.route(n) == sid and n.startswith(prefix)]
        groups = plan_split(prefix, owned,
                            fanout=draw(st.integers(min_value=2, max_value=3)))
        if not groups:
            continue
        children = [(f"{sid}.{i}{chr(ord('a') + j)}", g, (("n0", 1500 + i),))
                    for j, g in enumerate(groups)]
        after = m.with_split(sid, children)
        steps.append((m, sid, [c[0] for c in children], after))
        m = after
    return steps, names, m


@given(evolutions())
def test_exactly_one_owner_per_name_per_epoch(ev):
    """Every name has exactly one longest matching prefix, the matching
    prefixes form a chain, and route() returns that unique owner."""
    _steps, names, m = ev
    for uri in names:
        matches = [(p, sid) for sid, info in m.shards.items()
                   for p in info.prefixes if uri.startswith(p)]
        assert matches, f"{uri!r} matched no shard (root owns '')"
        # Matching prefixes of one string are nested: sorting by length
        # must give a chain under startswith.
        ordered = sorted(p for p, _ in matches)
        for shorter, longer in zip(ordered, ordered[1:]):
            assert longer.startswith(shorter)
        best_len = max(len(p) for p, _ in matches)
        owners = {sid for p, sid in matches if len(p) == best_len}
        assert len(owners) == 1
        assert m.route(uri) == owners.pop()


@given(evolutions())
def test_splits_are_monotone(ev):
    """Across every split in the evolution, a name either keeps its
    owner or moves to a child of the shard that split — never sideways."""
    steps, names, _m = ev
    for before, sid, child_sids, after in steps:
        for uri in names:
            src, dst = before.route(uri), after.route(uri)
            if dst != src:
                assert src == sid, (
                    f"{uri!r} moved {src} -> {dst} in a split of {sid}")
                assert dst in child_sids
        # Child prefixes strictly extend a prefix of the split shard.
        parent_prefixes = before.shards[sid].prefixes
        for child_sid in child_sids:
            for p in after.shards[child_sid].prefixes:
                assert any(p.startswith(pp) and p != pp
                           for pp in parent_prefixes)


@given(evolutions())
def test_router_is_deterministic_across_serialization(ev):
    """from_dict(to_dict(m)) is the same router: same epoch, same owner
    for every name — what makes every client/replica holding one epoch
    route identically."""
    _steps, names, m = ev
    clone = ShardMap.from_dict(m.to_dict())
    assert clone.epoch == m.epoch
    assert sorted(clone.shards) == sorted(m.shards)
    for uri in names:
        assert clone.route(uri) == m.route(uri) == m.route(uri)


@given(st.text(alphabet="abc/", min_size=0, max_size=4),
       st.lists(names_st, min_size=0, max_size=32))
@settings(max_examples=200)
def test_plan_split_buckets_partition_the_branching_names(prefix, names):
    """plan_split's child prefixes strictly extend the parent prefix and
    bucket the branching names disjointly (a name matches at most one
    child; names equal to the common path stay with the parent)."""
    prefix = "s://" + prefix
    groups = plan_split(prefix, names, fanout=2)
    child_prefixes = [p for g in groups for p in g]
    for p in child_prefixes:
        assert p.startswith(prefix) and p != prefix
    # Disjoint buckets: the branching characters are partitioned.
    assert len(set(child_prefixes)) == len(child_prefixes)
    for n in set(names):
        owners = [p for p in child_prefixes if n.startswith(p)]
        assert len(owners) <= 1
    if groups:
        # A split that happened has at least two buckets to route to.
        assert len(groups) >= 2
        covered = sum(1 for n in set(names)
                      if any(n.startswith(p) for p in child_prefixes))
        assert covered >= 2  # both sides of the branch are populated
