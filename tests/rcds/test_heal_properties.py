"""Property tests: compaction and tombstone GC are invisible to sync.

Two laws the partition-heal machinery must obey for any workload:

* syncing from a replica that compacted its logs (forcing the receiver
  through snapshot catch-up and gap-carrying batches) yields exactly
  the same visible snapshot as syncing from one that kept everything;
* tombstone GC at a watermark every peer has acked past can never make
  a deleted key visible again, no matter what a peer merges in later.

The sync model below is the wire protocol minus the RPCs: vector
exchange, snapshot catch-up when the peer predates the compaction
horizon, then record batches — i.e. what ``RCServer._sync_bounded``
drives over the network.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rcds.records import RCStore

ORIGINS = ("rc-a", "rc-b", "rc-c")

walls = st.floats(min_value=0.0, max_value=100.0,
                  allow_nan=False, allow_infinity=False)

#: (origin, uri, key, value, wall, delete?) — deletes tombstone the key.
ops = st.lists(
    st.tuples(
        st.sampled_from(ORIGINS),
        st.sampled_from(("uri:x", "uri:y")),
        st.sampled_from(("state", "host")),
        st.integers(min_value=0, max_value=99),
        walls,
        st.booleans(),
    ),
    min_size=1, max_size=30,
)


def accept_all(os):
    """Run each op at its origin replica; return (origins, records)."""
    origins = {o: RCStore(o) for o in ORIGINS}
    records = []
    for origin, uri, key, value, wall, delete in os:
        if delete:
            records.extend(origins[origin].local_delete(uri, [key], wall))
        else:
            records.extend(origins[origin].local_update(uri, {key: value}, wall))
    return origins, records


def sync_from(dst: RCStore, src: RCStore, rounds: int = 8) -> None:
    """One-way sync, modelled exactly like the bounded protocol: snapshot
    catch-up if *dst* predates *src*'s compaction horizon, then record
    batches until *src* has nothing more for *dst*."""
    if src.snapshot_needed_for(dst.digest()):
        dst.install_entries(src.state_entries())
        dst.adopt_vector(src.digest())
    for _ in range(rounds):
        batch = src.missing_for(dst.digest())
        if not batch:
            return
        dst.apply_remote(batch)


def visible(store: RCStore):
    return {
        (uri, key): entry.value
        for uri, bucket in store.data.items()
        for key, entry in bucket.items() if not entry.deleted
    }


@given(ops, st.integers(min_value=0, max_value=10**6))
@settings(max_examples=120, deadline=None)
def test_compacted_sync_equals_uncompacted_sync(os, cut_seed):
    """A receiver that syncs from a compacted replica (snapshot catch-up
    + gapped batches) ends with the same visible snapshot as one that
    syncs from an identical replica which kept its entire log."""
    _, records = accept_all(os)
    rng = random.Random(cut_seed)

    keeper, compactor = RCStore("rc-k"), RCStore("rc-m")
    keeper.apply_remote(records)
    compactor.apply_remote(records)
    # Compact at an arbitrary per-origin watermark <= the vector (every
    # watermark is legal: stability only ever *under*-approximates).
    stable = {o: rng.randint(0, v) for o, v in compactor.vector.items()}
    compactor.compact(stable)

    via_keeper, via_compactor = RCStore("rc-p"), RCStore("rc-q")
    sync_from(via_keeper, keeper)
    sync_from(via_compactor, compactor)
    assert visible(via_compactor) == visible(via_keeper)
    assert via_compactor.digest() == via_keeper.digest()


@given(ops, st.integers(min_value=0, max_value=10**6))
@settings(max_examples=120, deadline=None)
def test_fully_compacted_replica_serves_snapshot_catchup(os, _seed):
    """The extreme: a replica that compacted *everything* (empty logs)
    can still bring a blank peer fully up to date — via the snapshot."""
    _, records = accept_all(os)
    src = RCStore("rc-s")
    src.apply_remote(records)
    src.compact(dict(src.vector))
    assert src.record_count() == 0

    dst = RCStore("rc-d")
    sync_from(dst, src)
    assert visible(dst) == visible(src)
    assert dst.digest() == src.digest()


@given(ops)
@settings(max_examples=120, deadline=None)
def test_safe_gc_never_resurrects(os):
    """After GC at a watermark covered by every peer, merging any peer's
    full state back in leaves every deleted key deleted."""
    origins, records = accept_all(os)
    stores = {name: RCStore(name) for name in ("rc-x", "rc-y")}
    for s in stores.values():
        s.apply_remote(records)

    x, y = stores["rc-x"], stores["rc-y"]
    deleted = {
        (uri, key)
        for uri, bucket in x.data.items()
        for key, entry in bucket.items() if entry.deleted
    }
    # Everyone holds everything, so the full vector is a legal GC
    # watermark — the strongest (most collectable) safe stability.
    x.gc_tombstones(dict(x.vector))
    # A peer that never GC'd pushes its complete state (the snapshot
    # path — record batches are deduped by the vector anyway).
    x.install_entries(y.state_entries())
    x.apply_remote(records)
    for uri, key in deleted:
        entry = x.data.get(uri, {}).get(key)
        assert entry is None or entry.deleted, (uri, key)


@given(ops)
@settings(max_examples=120, deadline=None)
def test_gc_then_sync_keeps_replicas_convergent(os):
    """GC on one replica but not the other must not break convergence of
    the *visible* state in either sync direction."""
    _, records = accept_all(os)
    a, b = RCStore("rc-1"), RCStore("rc-2")
    a.apply_remote(records)
    b.apply_remote(records)
    a.gc_tombstones(dict(a.vector))
    sync_from(a, b)
    sync_from(b, a)
    assert visible(a) == visible(b)
