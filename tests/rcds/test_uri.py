"""Unit tests for the naming helpers."""

from repro.rcds import uri


def test_constructors():
    assert uri.host_url("tux") == "snipe://tux/"
    assert uri.daemon_url("tux") == "snipe://tux/daemon"
    assert uri.process_urn("worker.1") == "urn:snipe:proc:worker.1"
    assert uri.service_urn("rm") == "urn:snipe:svc:rm"
    assert uri.mcast_urn("feed") == "urn:snipe:mcast:feed"
    assert uri.user_urn("alice") == "urn:snipe:user:alice"
    assert uri.lifn_name("data") == "lifn:data"
    assert uri.file_url("tux", "/a/b") == "file://tux/a/b"


def test_scheme_of():
    assert uri.scheme_of("snipe://h/") == "snipe"
    assert uri.scheme_of("urn:snipe:proc:x") == "urn"
    assert uri.scheme_of("lifn:x") == "lifn"
    assert uri.scheme_of("nocolon") == ""


def test_host_of():
    assert uri.host_of("snipe://tux/") == "tux"
    assert uri.host_of("snipe://tux/daemon") == "tux"
    assert uri.host_of("file://nfs1/path/to/file") == "nfs1"
    assert uri.host_of("urn:snipe:proc:x") is None
    assert uri.host_of("snipe://") is None


def test_urn_kind():
    assert uri.urn_kind("urn:snipe:proc:worker.1") == ("proc", "worker.1")
    assert uri.urn_kind("urn:snipe:mcast:a:b") == ("mcast", "a:b")
    assert uri.urn_kind("snipe://h/") is None
    assert uri.urn_kind("urn:other:proc:x") is None
