"""Unit + property tests for the replicated assertion store."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rcds.records import RCStore


def test_local_update_and_lookup():
    s = RCStore("a")
    s.local_update("urn:x", {"cpu": 4, "os": "unix"}, wall=1.0)
    got = s.lookup("urn:x")
    assert got["cpu"]["value"] == 4
    assert got["os"]["wall"] == 1.0


def test_overwrite_takes_latest():
    s = RCStore("a")
    s.local_update("urn:x", {"v": 1}, wall=1.0)
    s.local_update("urn:x", {"v": 2}, wall=2.0)
    assert s.get("urn:x", "v") == 2


def test_delete_tombstones():
    s = RCStore("a")
    s.local_update("urn:x", {"v": 1, "w": 2}, wall=1.0)
    s.local_delete("urn:x", ["v"], wall=2.0)
    assert s.get("urn:x", "v") is None
    assert s.get("urn:x", "w") == 2


def test_delete_all_keys():
    s = RCStore("a")
    s.local_update("urn:x", {"v": 1, "w": 2}, wall=1.0)
    s.local_delete("urn:x", None, wall=2.0)
    assert s.lookup("urn:x") == {}
    assert "urn:x" not in s.query("urn:")


def test_query_prefix():
    s = RCStore("a")
    s.local_update("urn:snipe:proc:p1", {"v": 1}, wall=1.0)
    s.local_update("urn:snipe:proc:p2", {"v": 1}, wall=1.0)
    s.local_update("snipe://h/", {"v": 1}, wall=1.0)
    assert s.query("urn:snipe:proc:") == ["urn:snipe:proc:p1", "urn:snipe:proc:p2"]


def test_sync_transfers_exactly_missing():
    a, b = RCStore("a"), RCStore("b")
    a.local_update("urn:x", {"v": 1}, wall=1.0)
    missing = a.missing_for(b.digest())
    assert len(missing) == 1
    b.apply_remote(missing)
    assert b.get("urn:x", "v") == 1
    # Nothing more to ship in either direction.
    assert a.missing_for(b.digest()) == []
    assert b.missing_for(a.digest()) == []


def test_concurrent_writes_converge_to_same_winner():
    a, b = RCStore("a"), RCStore("b")
    a.local_update("urn:x", {"v": "from-a"}, wall=1.0)
    b.local_update("urn:x", {"v": "from-b"}, wall=1.0)
    # Exchange both ways.
    b.apply_remote(a.missing_for(b.digest()))
    a.apply_remote(b.missing_for(a.digest()))
    assert a.get("urn:x", "v") == b.get("urn:x", "v")
    # Equal lamport clocks: origin id breaks the tie ('b' > 'a').
    assert a.get("urn:x", "v") == "from-b"


def test_later_lamport_wins_regardless_of_apply_order():
    a, b = RCStore("a"), RCStore("b")
    a.local_update("urn:x", {"v": 1}, wall=1.0)
    b.apply_remote(a.missing_for(b.digest()))
    b.local_update("urn:x", {"v": 2}, wall=2.0)  # causally after a's write
    a.apply_remote(b.missing_for(a.digest()))
    assert a.get("urn:x", "v") == 2
    assert b.get("urn:x", "v") == 2


def test_transitive_propagation_through_intermediary():
    """a -> b -> c: c learns a's records it never saw directly."""
    a, b, c = RCStore("a"), RCStore("b"), RCStore("c")
    a.local_update("urn:x", {"v": 1}, wall=1.0)
    b.apply_remote(a.missing_for(b.digest()))
    c.apply_remote(b.missing_for(c.digest()))
    assert c.get("urn:x", "v") == 1


def test_apply_remote_idempotent():
    a, b = RCStore("a"), RCStore("b")
    a.local_update("urn:x", {"v": 1}, wall=1.0)
    recs = a.missing_for(b.digest())
    assert b.apply_remote(recs) == 1
    assert b.apply_remote(recs) == 0
    assert b.get("urn:x", "v") == 1


@settings(max_examples=50)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),  # which replica writes
            st.sampled_from(["u1", "u2"]),  # uri
            st.sampled_from(["k1", "k2"]),  # key
            st.integers(),  # value
        ),
        max_size=30,
    )
)
def test_full_exchange_converges(ops):
    """Any write sequence + full pairwise sync ⇒ identical snapshots."""
    stores = [RCStore(f"s{i}") for i in range(3)]
    for t, (who, uri, key, value) in enumerate(ops):
        stores[who].local_update(uri, {key: value}, wall=float(t))
    # Two full rounds of pairwise push guarantee transitive closure.
    for _round in range(2):
        for src in stores:
            for dst in stores:
                if src is not dst:
                    dst.apply_remote(src.missing_for(dst.digest()))
    snaps = [s.snapshot() for s in stores]
    assert snaps[0] == snaps[1] == snaps[2]


def _naive_query(store, prefix):
    """The pre-index linear scan, kept as the reference semantics."""
    return sorted(
        uri
        for uri, bucket in store.data.items()
        if uri.startswith(prefix) and any(not e.deleted for e in bucket.values())
    )


@settings(max_examples=60)
@given(
    st.lists(
        st.tuples(
            st.booleans(),  # delete?
            st.text(alphabet="abc:/", min_size=0, max_size=6),  # uri
            st.sampled_from(["k1", "k2"]),
        ),
        max_size=40,
    ),
    st.text(alphabet="abc:/", max_size=3),  # query prefix
)
def test_indexed_query_matches_naive_scan(ops, prefix):
    """The bisected index query must agree with the O(n) scan it replaced,
    across interleaved updates, deletes, and tombstone GC."""
    s = RCStore("a")
    for t, (is_delete, uri, key) in enumerate(ops):
        if is_delete:
            s.local_delete(uri, [key], wall=float(t))
        else:
            s.local_update(uri, {key: t}, wall=float(t))
    assert s.query(prefix) == _naive_query(s, prefix)
    assert s.live_uri_count() == len(_naive_query(s, ""))
    # GC every tombstone (single replica: its own vector is the stable
    # watermark) and check the index survived the bucket removals.
    s.gc_tombstones(dict(s.vector))
    assert s.query(prefix) == _naive_query(s, prefix)
    assert s._index == sorted(s.data)


@settings(max_examples=40)
@given(
    st.lists(st.text(alphabet="ab:", min_size=1, max_size=5), min_size=1, max_size=30),
    st.integers(min_value=1, max_value=4),
)
def test_paged_query_concatenates_to_full_result(uris, page):
    """Walking query(after=..., limit=...) pages reassembles the exact
    unpaged result, with no duplicates or skips."""
    s = RCStore("a")
    for t, uri in enumerate(uris):
        s.local_update(uri, {"k": t}, wall=float(t))
    full = s.query("")
    paged, after = [], None
    while True:
        chunk = s.query("", after=after, limit=page)
        if not chunk:
            break
        assert len(chunk) <= page
        paged.extend(chunk)
        after = chunk[-1]
    assert paged == full == _naive_query(s, "")


def test_import_entry_preserves_stamp_and_replicates():
    """A migrated register keeps its LWW stamp but re-originates locally,
    so it both loses to newer racing writes and reaches group peers."""
    src, dst, peer = RCStore("src"), RCStore("dst"), RCStore("peer")
    src.local_update("urn:m", {"v": "old"}, wall=5.0)
    entry = src.data["urn:m"]["v"]
    assert dst.import_entry("urn:m", "v", entry) is not None
    # Idempotent: the same handoff from another parent replica is a no-op.
    assert dst.import_entry("urn:m", "v", entry) is None
    assert dst.get("urn:m", "v") == "old"
    assert dst.data["urn:m"]["v"].wall == 5.0
    # The import replicates through dst's own log like any local write.
    peer.apply_remote(dst.missing_for(peer.digest()))
    assert peer.get("urn:m", "v") == "old"
    # A client write with a later wall beats the migrated value.
    dst.local_update("urn:m", {"v": "new"}, wall=6.0)
    assert dst.get("urn:m", "v") == "new"


@settings(max_examples=30)
@given(st.lists(st.tuples(st.integers(0, 1), st.booleans(), st.integers()), max_size=20))
def test_updates_and_deletes_converge(ops):
    stores = [RCStore("a"), RCStore("b")]
    for t, (who, is_delete, value) in enumerate(ops):
        if is_delete:
            stores[who].local_delete("u", ["k"], wall=float(t))
        else:
            stores[who].local_update("u", {"k": value}, wall=float(t))
    for _round in range(2):
        stores[1].apply_remote(stores[0].missing_for(stores[1].digest()))
        stores[0].apply_remote(stores[1].missing_for(stores[0].digest()))
    assert stores[0].snapshot() == stores[1].snapshot()
    assert stores[0].get("u", "k") == stores[1].get("u", "k")
