"""Unit + property tests for the replicated assertion store."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rcds.records import RCStore


def test_local_update_and_lookup():
    s = RCStore("a")
    s.local_update("urn:x", {"cpu": 4, "os": "unix"}, wall=1.0)
    got = s.lookup("urn:x")
    assert got["cpu"]["value"] == 4
    assert got["os"]["wall"] == 1.0


def test_overwrite_takes_latest():
    s = RCStore("a")
    s.local_update("urn:x", {"v": 1}, wall=1.0)
    s.local_update("urn:x", {"v": 2}, wall=2.0)
    assert s.get("urn:x", "v") == 2


def test_delete_tombstones():
    s = RCStore("a")
    s.local_update("urn:x", {"v": 1, "w": 2}, wall=1.0)
    s.local_delete("urn:x", ["v"], wall=2.0)
    assert s.get("urn:x", "v") is None
    assert s.get("urn:x", "w") == 2


def test_delete_all_keys():
    s = RCStore("a")
    s.local_update("urn:x", {"v": 1, "w": 2}, wall=1.0)
    s.local_delete("urn:x", None, wall=2.0)
    assert s.lookup("urn:x") == {}
    assert "urn:x" not in s.query("urn:")


def test_query_prefix():
    s = RCStore("a")
    s.local_update("urn:snipe:proc:p1", {"v": 1}, wall=1.0)
    s.local_update("urn:snipe:proc:p2", {"v": 1}, wall=1.0)
    s.local_update("snipe://h/", {"v": 1}, wall=1.0)
    assert s.query("urn:snipe:proc:") == ["urn:snipe:proc:p1", "urn:snipe:proc:p2"]


def test_sync_transfers_exactly_missing():
    a, b = RCStore("a"), RCStore("b")
    a.local_update("urn:x", {"v": 1}, wall=1.0)
    missing = a.missing_for(b.digest())
    assert len(missing) == 1
    b.apply_remote(missing)
    assert b.get("urn:x", "v") == 1
    # Nothing more to ship in either direction.
    assert a.missing_for(b.digest()) == []
    assert b.missing_for(a.digest()) == []


def test_concurrent_writes_converge_to_same_winner():
    a, b = RCStore("a"), RCStore("b")
    a.local_update("urn:x", {"v": "from-a"}, wall=1.0)
    b.local_update("urn:x", {"v": "from-b"}, wall=1.0)
    # Exchange both ways.
    b.apply_remote(a.missing_for(b.digest()))
    a.apply_remote(b.missing_for(a.digest()))
    assert a.get("urn:x", "v") == b.get("urn:x", "v")
    # Equal lamport clocks: origin id breaks the tie ('b' > 'a').
    assert a.get("urn:x", "v") == "from-b"


def test_later_lamport_wins_regardless_of_apply_order():
    a, b = RCStore("a"), RCStore("b")
    a.local_update("urn:x", {"v": 1}, wall=1.0)
    b.apply_remote(a.missing_for(b.digest()))
    b.local_update("urn:x", {"v": 2}, wall=2.0)  # causally after a's write
    a.apply_remote(b.missing_for(a.digest()))
    assert a.get("urn:x", "v") == 2
    assert b.get("urn:x", "v") == 2


def test_transitive_propagation_through_intermediary():
    """a -> b -> c: c learns a's records it never saw directly."""
    a, b, c = RCStore("a"), RCStore("b"), RCStore("c")
    a.local_update("urn:x", {"v": 1}, wall=1.0)
    b.apply_remote(a.missing_for(b.digest()))
    c.apply_remote(b.missing_for(c.digest()))
    assert c.get("urn:x", "v") == 1


def test_apply_remote_idempotent():
    a, b = RCStore("a"), RCStore("b")
    a.local_update("urn:x", {"v": 1}, wall=1.0)
    recs = a.missing_for(b.digest())
    assert b.apply_remote(recs) == 1
    assert b.apply_remote(recs) == 0
    assert b.get("urn:x", "v") == 1


@settings(max_examples=50)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),  # which replica writes
            st.sampled_from(["u1", "u2"]),  # uri
            st.sampled_from(["k1", "k2"]),  # key
            st.integers(),  # value
        ),
        max_size=30,
    )
)
def test_full_exchange_converges(ops):
    """Any write sequence + full pairwise sync ⇒ identical snapshots."""
    stores = [RCStore(f"s{i}") for i in range(3)]
    for t, (who, uri, key, value) in enumerate(ops):
        stores[who].local_update(uri, {key: value}, wall=float(t))
    # Two full rounds of pairwise push guarantee transitive closure.
    for _round in range(2):
        for src in stores:
            for dst in stores:
                if src is not dst:
                    dst.apply_remote(src.missing_for(dst.digest()))
    snaps = [s.snapshot() for s in stores]
    assert snaps[0] == snaps[1] == snaps[2]


@settings(max_examples=30)
@given(st.lists(st.tuples(st.integers(0, 1), st.booleans(), st.integers()), max_size=20))
def test_updates_and_deletes_converge(ops):
    stores = [RCStore("a"), RCStore("b")]
    for t, (who, is_delete, value) in enumerate(ops):
        if is_delete:
            stores[who].local_delete("u", ["k"], wall=float(t))
        else:
            stores[who].local_update("u", {"k": value}, wall=float(t))
    for _round in range(2):
        stores[1].apply_remote(stores[0].missing_for(stores[1].digest()))
        stores[0].apply_remote(stores[1].missing_for(stores[0].digest()))
    assert stores[0].snapshot() == stores[1].snapshot()
    assert stores[0].get("u", "k") == stores[1].get("u", "k")
