"""Unit tests: log compaction, tombstone GC, and the contiguous vector.

These pin the store-level invariants the partition-heal machinery rests
on: compaction forgets history but never state, a gapped batch cannot
advance the version vector past records that were skipped (the
``vector-gap`` regression), snapshot catch-up is equivalent to replaying
the compacted prefix, and tombstones are only collected once every
configured peer has acked past them (the ``early-gc`` regression).
"""

import pytest

from repro.rcds.records import RCStore


def filled(origin="rc-a", n=10, uri="u", key="k"):
    store = RCStore(origin)
    for i in range(1, n + 1):
        store.local_update(uri, {key: i}, wall=float(i))
    return store


@pytest.fixture
def bug(request):
    """Flip one RCStore class switch off for the duration of a test."""

    def _set(attr):
        saved = getattr(RCStore, attr)
        setattr(RCStore, attr, False)
        request.addfinalizer(lambda: setattr(RCStore, attr, saved))

    return _set


def test_compact_drops_history_keeps_registers():
    store = filled(n=10)
    dropped = store.compact({"rc-a": 6})
    assert dropped == 6
    assert sorted(store.logs["rc-a"]) == [7, 8, 9, 10]
    assert store.compacted["rc-a"] == 6
    assert store.get("u", "k") == 10          # state untouched
    assert store.vector["rc-a"] == 10
    assert store.compactions == 1 and store.records_compacted == 6
    # Idempotent at the same watermark; clipped at our own knowledge.
    assert store.compact({"rc-a": 6}) == 0
    assert store.compact({"rc-a": 99}) == 4
    assert store.compacted["rc-a"] == 10


def test_missing_for_carries_gap_receiver_refuses_to_jump_it():
    src = filled(n=10)
    src.compact({"rc-a": 6})
    # A peer that has nothing gets a batch starting past the horizon:
    batch = src.missing_for({"rc-a": 0})
    assert [r.seq for r in batch] == [7, 8, 9, 10]
    fresh = RCStore("rc-c")
    fresh.apply_remote(batch)
    # The contiguous watermark refuses to advance over the 1..6 gap, so
    # the next vector exchange still reports zero knowledge and the
    # compaction-horizon check routes this peer to snapshot catch-up.
    assert fresh.vector.get("rc-a", 0) == 0
    assert src.snapshot_needed_for(fresh.digest())
    assert not src.snapshot_needed_for({"rc-a": 6})


def test_vector_gap_regression(bug):
    """The seeded ``vector-gap`` bug: a gapped batch must not bump the
    vector past skipped records — in bug mode it does, and the skipped
    records are never requested again."""
    src = filled(n=10)
    src.compact({"rc-a": 6})
    batch = src.missing_for({"rc-a": 0})

    bug("contiguous_vector_enabled")
    broken = RCStore("rc-b")
    broken.apply_remote(batch)
    assert broken.vector["rc-a"] == 10        # jumped the 1..6 gap
    assert src.missing_for(broken.digest()) == []  # ...so never healed


def test_snapshot_catchup_equivalent_to_replaying_the_prefix():
    src = RCStore("rc-a")
    src.local_update("u1", {"k": "old"}, wall=1.0)
    src.local_update("u2", {"k": "keep"}, wall=2.0)
    src.local_delete("u1", None, wall=3.0)
    src.compact({"rc-a": 3})
    src.local_update("u2", {"k": "new"}, wall=4.0)

    dst = RCStore("rc-b")
    assert src.snapshot_needed_for(dst.digest())
    dst.install_entries(src.state_entries())   # tombstones included
    dst.adopt_vector(src.digest())
    assert src.missing_for(dst.digest()) == []
    assert dst.snapshot() == src.snapshot()
    assert dst.get("u1", "k") is None          # delete survived the snapshot
    # Contiguity resumes cleanly past the adopted point.
    more = src.local_update("u2", {"k": "newer"}, wall=5.0)
    dst.apply_remote(more)
    assert dst.vector["rc-a"] == src.vector["rc-a"]
    assert dst.get("u2", "k") == "newer"


def test_safe_gc_waits_for_every_peer_ack():
    store = RCStore("rc-a")
    store.local_update("u", {"k": 1}, wall=1.0)
    store.local_delete("u", None, wall=2.0)    # tombstone at seq 2
    assert store.tombstone_count() == 1
    # A peer that never acked (or acked only seq 1) pins the tombstone.
    assert store.gc_tombstones({}) == 0
    assert store.gc_tombstones({"rc-a": 1}) == 0
    assert store.tombstone_count() == 1
    # Once every peer acked past the delete, it can go.
    assert store.gc_tombstones({"rc-a": 2}) == 1
    assert store.tombstone_count() == 0
    assert store.tombstones_collected == 1
    assert "u" not in store.data               # empty bucket pruned


def test_early_gc_lets_a_stale_snapshot_resurrect(bug):
    """The seeded ``early-gc`` bug end to end: collect a tombstone no
    peer acked, then take a snapshot from a peer that still holds the
    pre-delete write — the key comes back from the dead. With the guard
    on, the tombstone wins the same merge."""
    stale_peer = RCStore("rc-b")
    stale_peer.apply_remote(filled(origin="rc-a", n=1).missing_for({}))
    assert stale_peer.get("u", "k") == 1

    def deleting_store():
        s = RCStore("rc-a")
        s.local_update("u", {"k": 1}, wall=1.0)
        s.local_delete("u", None, wall=2.0)
        return s

    safe = deleting_store()
    safe.gc_tombstones({})                     # no peer acked: kept
    safe.install_entries(stale_peer.state_entries())
    assert safe.get("u", "k") is None          # tombstone wins the merge

    bug("safe_gc_enabled")
    broken = deleting_store()
    broken.gc_tombstones({})                   # collected anyway
    broken.install_entries(stale_peer.state_entries())
    assert broken.get("u", "k") == 1           # resurrected


def test_clear_preserves_observer_hooks():
    store = filled(n=3)
    applied, recorded = [], []
    store.on_apply = lambda uri, key, entry: applied.append((uri, key))
    store.on_record = lambda rec: recorded.append(rec.seq)
    store.clear()
    assert store.data == {} and store.vector == {} and store.compacted == {}
    store.local_update("u", {"k": 1}, wall=1.0)
    assert applied == [("u", "k")] and recorded == [1]


def test_record_and_tombstone_counts():
    store = filled(n=4)
    store.local_delete("u", None, wall=9.0)
    assert store.record_count() == 5
    assert store.tombstone_count() == 1
    store.compact({"rc-a": 5})
    assert store.record_count() == 0
    assert store.tombstone_count() == 1        # GC is separate from compaction
