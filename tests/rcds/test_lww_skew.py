"""Property tests: LWW under skewed and regressing wall clocks.

The catalog's last-writer-wins stamp is ``(wall, lamport, origin)``
(:meth:`repro.rcds.records.Entry.stamp`) and ``wall`` comes from the
*accepting server's* clock — which the gray-fault injector can skew by a
fixed offset or even run backwards. These tests pin down exactly what
clock skew can and cannot break:

* **Convergence is clock-independent.** The merge is a total order over
  distinct stamps, so replicas agree on a winner no matter how wrong the
  walls are — skew changes *which* write wins, never *whether* replicas
  converge. (Hybrid-logical-clock literature calls this the split
  between convergence and external consistency.)
* **The staleness bound.** If every clock is within ``±D`` of true time,
  the winning write's *true* write time is at least ``t_max - 2D`` where
  ``t_max`` is the true time of the latest write: a fast clock can
  promote a write at most ``D`` old-looking seconds, a slow clock demote
  one by at most ``D``, and the two add. A write can only be shadowed by
  one less than ``2D`` older — never by ancient history.
* **Regression shadows until the clock re-passes.** A writer whose clock
  jumps backwards has its newer writes (higher lamport) lose to its own
  older ones until its wall climbs back past the old maximum — the
  shadow window is bounded by the regression amount, and the first write
  stamped beyond the old wall wins again.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.oracles import LwwMap, lww_merge
from repro.rcds.records import Entry

#: Maximum clock error ("±D") used by the staleness-bound property —
#: matches the worst skew the gray chaos plan injects (30 s).
MAX_SKEW = 30.0

true_times = st.lists(
    st.floats(min_value=0.0, max_value=1000.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=12,
)
origin_ids = st.integers(min_value=0, max_value=3)
offsets = st.lists(
    st.floats(min_value=-MAX_SKEW, max_value=MAX_SKEW,
              allow_nan=False, allow_infinity=False),
    min_size=4, max_size=4,
)


def skewed_history(times, origins, offs):
    """Entries for writes at true times *times*, each accepted by origin
    ``s<origins[i]>`` whose clock is off by ``offs[origins[i]]``.

    Lamports increase per origin, so stamps are distinct by
    construction (same guarantee the real store's counter provides).
    """
    lamports = {}
    out = []
    for i, t in enumerate(times):
        o = origins[i % len(origins)]
        lamports[o] = lamports.get(o, 0) + 1
        out.append((t, Entry(value=i, lamport=lamports[o], origin=f"s{o}",
                             wall=t + offs[o], deleted=False)))
    return out


@settings(max_examples=200)
@given(true_times, st.lists(origin_ids, min_size=1, max_size=12), offsets)
def test_winner_is_at_most_two_skews_stale(times, origins, offs):
    """With every clock within ±D of true time, the LWW winner's true
    write time is >= t_max - 2D: bounded staleness, not unbounded."""
    history = skewed_history(times, origins, offs)
    t_winner, _ = max(history, key=lambda pair: pair[1].stamp())
    t_max = max(t for t, _ in history)
    assert t_winner >= t_max - 2 * MAX_SKEW - 1e-9


@settings(max_examples=200)
@given(true_times, st.lists(origin_ids, min_size=1, max_size=12), offsets,
       st.integers())
def test_convergence_survives_skew(times, origins, offs, shuffle_seed):
    """Replicas folding any permutation of skew-stamped writes agree —
    wrong clocks pick a different winner, never a different winner *per
    replica*."""
    entries = [e for _, e in skewed_history(times, origins, offs)]
    perm = list(entries)
    random.Random(shuffle_seed).shuffle(perm)
    forward, shuffled = LwwMap(), LwwMap()
    for e in entries:
        forward.apply("uri", "k", e)
    for e in perm:
        shuffled.apply("uri", "k", e)
    assert forward.get("uri", "k") == shuffled.get("uri", "k")


@settings(max_examples=200)
@given(
    st.floats(min_value=0.0, max_value=1000.0,
              allow_nan=False, allow_infinity=False),
    st.floats(min_value=1e-6, max_value=MAX_SKEW,
              allow_nan=False, allow_infinity=False),
)
def test_regression_shadow_ends_when_clock_repasses(wall, regression):
    """A writer's post-regression writes lose to its own pre-regression
    write (higher lamport notwithstanding) — and the first write stamped
    past the old wall maximum wins again, ending the shadow."""
    before = Entry(value="old", lamport=1, origin="a", wall=wall, deleted=False)
    during = Entry(value="shadowed", lamport=2, origin="a",
                   wall=wall - regression, deleted=False)
    # The clock jumped back: the newer write (by lamport, i.e. by real
    # causality) is shadowed by the older one.
    assert lww_merge(before, during) is before
    # Once the wall climbs past the old maximum, causality wins again.
    after = Entry(value="new", lamport=3, origin="a",
                  wall=wall + 1e-6, deleted=False)
    assert lww_merge(lww_merge(before, during), after) is after


@settings(max_examples=200)
@given(true_times, st.lists(origin_ids, min_size=1, max_size=12), offsets,
       st.integers())
def test_merge_agrees_with_fold_under_skew(times, origins, offs, shuffle_seed):
    """Pairwise merging in any order equals the fold: the join-semilattice
    properties that make anti-entropy safe hold for skewed stamps too."""
    entries = [e for _, e in skewed_history(times, origins, offs)]
    perm = list(entries)
    random.Random(shuffle_seed).shuffle(perm)
    acc = perm[0]
    for e in perm[1:]:
        acc = lww_merge(acc, e)
    assert acc == max(entries, key=lambda e: e.stamp())
