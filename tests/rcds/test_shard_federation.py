"""Integration tests for the sharded federation: routing, split, drain.

These pin the two director behaviours the E18 split-under-load run
depends on and that the property tests (which work on maps, not
stores) cannot see:

* a split's plan must cover *every* branch of the owned namespace, not
  just the branches visible in the lexicographic head page — a biased
  sample strands the unseen branches on the parent forever;
* a shard whose records are still draining to an earlier split's
  children must not be re-split over those records (their prefixes now
  belong to the children; re-planning them would mint duplicate
  ownership).
"""

import pytest

from repro.bench.e18_catalog_scale import _preload, _site
from repro.rcds.client import QUORUM


def _federation(n_names, n_branches=4, split_threshold=None):
    env, placement, clients = _site(1, 2)
    env.add_rc_servers(["r0", "r1", "r2"], sharded=True, service_time=0.0002)
    mgr = env.enable_sharding(placement_hosts=placement, replicas_per_shard=3,
                              split_threshold=split_threshold,
                              server_kw=dict(service_time=0.0002))
    mgr.add_shard("app", ("snipe://app/",))
    mgr.start()
    mgr.seed_map()
    parent = list(mgr.servers["app"].values())
    _preload([s.store for s in parent], range(n_names), n_branches)
    return env, mgr, parent, clients


def test_sharded_client_routes_and_reads_preloaded_names():
    env, mgr, parent, hosts = _federation(80)
    sim = env.sim
    got = {}

    def reader():
        client = env.rc_client(hosts[0])
        yield sim.timeout(0.5)
        got["a"] = (yield client.lookup("snipe://app/g0/d00000/n000000000"))
        yield client.update("snipe://app/g1/d00000/n000000013", {"v": 7},
                            consistency=QUORUM)
        got["b"] = (yield client.lookup("snipe://app/g1/d00000/n000000013",
                                        consistency=QUORUM))

    sim.process(reader(), name="reader")
    sim.run(until=3.0)
    assert got["a"] and got["a"]["v"]["value"] == 0
    assert got["b"]["v"]["value"] == 7


def test_split_plan_covers_every_branch_and_parent_drains():
    # 900 names over 4 radix branches — more than split_sample (512), so
    # a head-page sample would only ever see g0/g1/g2 and the plan would
    # leave every g3 name stranded on the parent (the pre-fix behaviour:
    # a permanent 225-name residual per replica).
    env, mgr, parent, _ = _federation(900)
    sim = env.sim

    def trigger():
        yield sim.timeout(1.0)
        ok = yield from mgr._split("app")
        assert ok

    sim.process(trigger(), name="trigger")
    sim.run(until=20.0)
    assert mgr.splits == 1 and mgr.map.epoch >= 2
    assert all(s.store.live_uri_count() == 0 for s in parent)
    assert sum(s.handoffs for s in parent) >= 900


def test_resplit_during_drain_plans_nothing_not_duplicate_ownership():
    # Split once, then force a second split attempt while the handoff is
    # still draining. The parent's store still *holds* the records it
    # gave away; planning over them used to mint child prefixes that
    # collide with the first split's children (ValueError from ShardMap).
    env, mgr, parent, _ = _federation(900)
    sim = env.sim
    results = {}

    def trigger():
        yield sim.timeout(1.0)
        results["first"] = yield from mgr._split("app")
        # Immediately, mid-drain: the map routes everything away, so the
        # routed pool is empty and the plan must come up empty.
        results["second"] = yield from mgr._split("app")

    sim.process(trigger(), name="trigger")
    sim.run(until=20.0)
    assert results["first"] is True
    assert results["second"] is False
    assert mgr.splits == 1
    # The map stayed a partition: every preloaded name has one owner.
    for i in (0, 1, 450, 899):
        uri = f"snipe://app/g{i % 4}/d{(i // 4) // 100:05d}/n{i:09d}"
        assert mgr.map.route(uri) != "app"


def test_threshold_split_fires_and_moved_names_stay_readable():
    env, mgr, parent, hosts = _federation(600, split_threshold=400)
    sim = env.sim
    reads = {"miss": 0, "ok": 0}

    def reader():
        client = env.rc_client(hosts[0])
        rng = sim.rng.stream("reader")
        while sim.now < 25.0:
            i = rng.randrange(600)
            uri = f"snipe://app/g{i % 4}/d{(i // 4) // 100:05d}/n{i:09d}"
            try:
                got = yield client.lookup(uri)
            except Exception:
                reads["miss"] += 1
            else:
                reads["ok" if got else "miss"] += 1
            yield sim.timeout(0.05)

    sim.process(reader(), name="reader")
    sim.run(until=30.0)
    assert mgr.splits >= 1
    assert all(s.store.live_uri_count() == 0 for s in parent)
    assert reads["ok"] > 100
    # Mid-migration misses are bounded: the fence redirects, the client
    # re-routes; only the install-in-flight window can read empty.
    assert reads["miss"] < reads["ok"] * 0.15


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-x", "-q"]))
