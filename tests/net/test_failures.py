"""Unit tests for the failure injector."""

from repro.net import FailureInjector, Medium, Topology
from repro.sim import Simulator

LAN = Medium(name="lan", bandwidth=1e6, latency=0.001, mtu=1500, frame_overhead=0)


def small_topo(n=4):
    sim = Simulator()
    topo = Topology(sim)
    seg = topo.add_segment("lan", LAN)
    for i in range(n):
        topo.connect(topo.add_host(f"h{i}"), seg)
    return sim, topo


def test_scheduled_host_down_and_recovery():
    sim, topo = small_topo()
    inj = FailureInjector(sim, topo)
    inj.host_down_at(5.0, "h1", duration=3.0)
    sim.run(until=4.9)
    assert topo.hosts["h1"].up
    sim.run(until=5.1)
    assert not topo.hosts["h1"].up
    sim.run(until=8.1)
    assert topo.hosts["h1"].up
    assert [(k, w) for _, k, w in inj.log] == [("host_down", "h1"), ("host_up", "h1")]


def test_scheduled_segment_down_permanent():
    sim, topo = small_topo()
    inj = FailureInjector(sim, topo)
    inj.segment_down_at(2.0, "lan")
    sim.run()
    assert not topo.segments["lan"].up


def _partition_topo():
    sim = Simulator()
    topo = Topology(sim)
    seg_a = topo.add_segment("side-a", LAN)
    seg_b = topo.add_segment("side-b", LAN)
    seg_x = topo.add_segment("cross", LAN)
    a1 = topo.add_host("a1")
    a2 = topo.add_host("a2")
    b1 = topo.add_host("b1")
    topo.connect(a1, seg_a)
    topo.connect(a2, seg_a)
    topo.connect(a1, seg_x)
    topo.connect(b1, seg_x)
    topo.connect(b1, seg_b)
    return sim, topo


def test_partition_cuts_spanning_segments_only():
    sim, topo = _partition_topo()
    inj = FailureInjector(sim, topo)
    inj.partition_at(1.0, ["a1", "a2"], ["b1"], duration=5.0)
    sim.run(until=2.0)
    cross = topo.segments["cross"]
    # Only the directed cross-side pairs on the spanning segment are cut;
    # the segment itself stays administratively up, and non-spanning
    # segments are untouched.
    assert topo.segments["side-a"].up and not topo.segments["side-a"]._gray
    assert topo.segments["side-b"].up and not topo.segments["side-b"]._gray
    assert cross.up
    assert cross.link_blocked("a1", "b1") and cross.link_blocked("b1", "a1")
    # Per-direction hold records land in the log (symmetric = both ways).
    kinds = [(k, w) for _, k, w in inj.log]
    assert ("link_down", "cross:a1->b1") in kinds
    assert ("link_down", "cross:b1->a1") in kinds
    sim.run(until=7.0)
    assert not cross.link_blocked("a1", "b1")
    assert not cross.link_blocked("b1", "a1")
    kinds = [(k, w) for _, k, w in inj.log]
    assert ("link_up", "cross:a1->b1") in kinds and ("link_up", "cross:b1->a1") in kinds


def test_oneway_partition_cuts_single_direction():
    sim, topo = _partition_topo()
    inj = FailureInjector(sim, topo)
    inj.partition_oneway_at(1.0, ["a1"], ["b1"], duration=5.0)
    sim.run(until=2.0)
    cross = topo.segments["cross"]
    assert cross.up
    assert cross.link_blocked("a1", "b1")
    assert not cross.link_blocked("b1", "a1")  # the gray part: replies flow
    sim.run(until=7.0)
    assert not cross.link_blocked("a1", "b1")


def test_churn_produces_alternating_up_down():
    sim, topo = small_topo()
    inj = FailureInjector(sim, topo)
    inj.churn_hosts(["h0", "h1"], mtbf=10.0, mttr=2.0, stop_at=200.0)
    sim.run(until=200.0)
    # Each host's log alternates down/up.
    for h in ("h0", "h1"):
        events = [k for _, k, w in inj.log if w == h]
        assert len(events) > 2
        for i, ev in enumerate(events):
            assert ev == ("host_down" if i % 2 == 0 else "host_up")


def test_churn_is_seed_deterministic():
    def run(seed):
        sim = Simulator(seed=seed)
        topo = Topology(sim)
        seg = topo.add_segment("lan", LAN)
        topo.connect(topo.add_host("h0"), seg)
        inj = FailureInjector(sim, topo)
        inj.churn_hosts(["h0"], mtbf=5.0, mttr=1.0, stop_at=100.0)
        sim.run(until=100.0)
        return inj.log

    assert run(7) == run(7)
    assert run(7) != run(8)


def test_overlapping_scripts_do_not_double_crash_or_early_recover():
    """A scheduled outage overlapping churn must not re-crash a downed
    host, and must not recover a host another script still holds down."""
    sim, topo = small_topo()
    inj = FailureInjector(sim, topo)
    # Script A holds h1 down over [2, 10); script B over [4, 6).
    inj.host_down_at(2.0, "h1", duration=8.0)
    inj.host_down_at(4.0, "h1", duration=2.0)
    sim.run(until=5.0)
    assert not topo.hosts["h1"].up
    kinds = [(k, w) for _, k, w in inj.log]
    assert ("host_down_skipped", "h1") in kinds  # B's crash was a no-op
    # B releases at t=6: h1 must STAY down (A still holds it).
    sim.run(until=7.0)
    assert not topo.hosts["h1"].up
    kinds = [(k, w) for _, k, w in inj.log]
    assert ("host_up_skipped", "h1") in kinds
    # A releases at t=10: now it really recovers.
    sim.run(until=11.0)
    assert topo.hosts["h1"].up
    effective = [k for _, k, w in inj.log if not k.endswith("_skipped")]
    assert effective == ["host_down", "host_up"]


def test_overlapping_segment_holds_refcount():
    sim, topo = small_topo()
    inj = FailureInjector(sim, topo)
    inj.segment_down_at(1.0, "lan", duration=10.0)
    inj.segment_down_at(2.0, "lan", duration=2.0)
    sim.run(until=5.0)
    assert not topo.segments["lan"].up  # first hold still active
    sim.run(until=12.0)
    assert topo.segments["lan"].up


def test_injector_emits_obs_counters_and_trace_events():
    sim, topo = small_topo()
    sim.obs.tracer.enabled = True
    inj = FailureInjector(sim, topo)
    inj.host_down_at(1.0, "h0", duration=1.0)
    inj.segment_down_at(2.0, "lan", duration=1.0)
    sim.run(until=5.0)
    metrics = sim.obs.metrics
    assert metrics.counter("failures.host_down").value == 1
    assert metrics.counter("failures.host_up").value == 1
    assert metrics.counter("failures.segment_down").value == 1
    assert metrics.counter("failures.segment_up").value == 1
    kinds = [ev["kind"] for ev in sim.obs.tracer.events()]
    for kind in ("failure.host_down", "failure.host_up",
                 "failure.segment_down", "failure.segment_up"):
        assert kind in kinds


def test_congest_segment_degrades_and_restores_medium():
    sim, topo = small_topo()
    inj = FailureInjector(sim, topo)
    base = topo.segments["lan"].medium
    inj.congest_segment_at(2.0, "lan", factor=4.0, duration=3.0)
    sim.run(until=2.1)
    congested = topo.segments["lan"].medium
    assert congested.bandwidth == base.bandwidth / 4.0
    assert congested.latency == base.latency * 4.0
    assert congested.mtu == base.mtu  # only speed degrades, not framing
    sim.run(until=5.1)
    restored = topo.segments["lan"].medium
    assert restored.bandwidth == base.bandwidth
    assert restored.latency == base.latency
    assert [(k, w) for _, k, w in inj.log] == [
        ("segment_congested", "lan"), ("segment_decongested", "lan"),
    ]
    assert sim.obs.metrics.counter("failures.segment_congested").value == 1
    assert sim.obs.metrics.counter("failures.segment_decongested").value == 1


def test_congestion_windows_stack_multiplicatively():
    sim, topo = small_topo()
    inj = FailureInjector(sim, topo)
    base = topo.segments["lan"].medium
    inj.congest_segment_at(1.0, "lan", factor=2.0, duration=4.0)
    inj.congest_segment_at(2.0, "lan", factor=3.0, duration=1.0)
    sim.run(until=2.5)  # both windows active
    assert topo.segments["lan"].medium.bandwidth == base.bandwidth / 6.0
    sim.run(until=3.5)  # inner window unwound
    assert topo.segments["lan"].medium.bandwidth == base.bandwidth / 2.0
    sim.run(until=5.5)  # fully restored
    assert topo.segments["lan"].medium.bandwidth == base.bandwidth


def test_slow_host_scales_cpu_and_restores():
    sim, topo = small_topo()
    inj = FailureInjector(sim, topo)
    base = topo.hosts["h1"].cpu_speed
    inj.slow_host_at(1.0, "h1", factor=10.0, duration=2.0)
    sim.run(until=1.5)
    assert topo.hosts["h1"].cpu_speed == base / 10.0
    assert topo.hosts["h1"].up  # slow, not dead
    sim.run(until=3.5)
    assert topo.hosts["h1"].cpu_speed == base
    assert sim.obs.metrics.counter("failures.host_slowed").value == 1
    assert sim.obs.metrics.counter("failures.host_unslowed").value == 1
