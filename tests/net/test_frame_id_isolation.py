"""Frame and datagram ids are per-simulation, never process-global.

Regression test for a replay-determinism bug: frame ids used to come
from a process-global ``itertools.count`` (and datagram ids from a
module-level counter), so the ids a run produced depended on how many
simulations had executed earlier in the same Python process. Any logic
or log keyed on those ids — flight-recorder records, trace events,
dedup tables — would then differ between "run the seed alone" and "run
the seed after the rest of the suite", which is exactly what replayable
seeds must rule out.
"""

from __future__ import annotations

from repro.net import ETHERNET_100, Topology
from repro.sim import Simulator
from repro.transport import SrudpEndpoint
from repro.transport.datagram import DatagramEndpoint


def _run_traffic(seed: int = 7, n: int = 5):
    """A tiny two-host exchange; returns the delivered frame ids."""
    sim = Simulator(seed=seed)
    topo = Topology(sim)
    seg = topo.add_segment("lan", ETHERNET_100)
    a = topo.add_host("a")
    b = topo.add_host("b")
    topo.connect(a, seg)
    topo.connect(b, seg)
    tx = SrudpEndpoint(a, 5000)
    rx = SrudpEndpoint(b, 5000)
    dg_tx = DatagramEndpoint(a, 6000)
    dg_rx = DatagramEndpoint(b, 6000)

    got = []
    frame_ids = []

    def record(frame):
        frame_ids.append(frame.frame_id)
        rx._on_frame(frame)

    rx.binding.handler = record

    def sender():
        for i in range(n):
            yield tx.send("b", 5000, f"m{i}", 2000)
            dg_tx.send("b", 6000, f"d{i}", 100)

    def drain():
        for _ in range(n):
            msg = yield rx.recv()
            got.append(msg.payload)

    sim.process(sender(), name="sender")
    sim.process(drain(), name="drain")
    sim.run()
    dgrams = [m.msg_id for m in dg_rx.pending()] if hasattr(dg_rx, "pending") else []
    return frame_ids, got, dgrams, sim.frames_constructed


def test_frame_ids_identical_across_repeated_sims():
    """The same seed yields the same frame ids no matter how many
    simulations ran before it in this process."""
    first = _run_traffic()
    for _ in range(3):
        again = _run_traffic()
        assert again == first


def test_frame_ids_start_fresh_per_sim():
    frame_ids, got, _, constructed = _run_traffic()
    assert got == [f"m{i}" for i in range(5)]
    # Ids are 1-based per simulation: a fresh sim's first frame is #1,
    # and every stamped id stays within what this sim constructed.
    assert min(frame_ids) >= 1
    assert max(frame_ids) <= constructed
    assert 1 <= len(set(frame_ids)) == len(frame_ids)


def test_datagram_ids_are_per_sim_sequences():
    """udp datagram ids come from sim.sequence, not a module global."""
    ids = []
    for _ in range(2):
        sim = Simulator(seed=3)
        topo = Topology(sim)
        seg = topo.add_segment("lan", ETHERNET_100)
        a = topo.add_host("a")
        b = topo.add_host("b")
        topo.connect(a, seg)
        topo.connect(b, seg)
        tx = DatagramEndpoint(a, 6000)
        rx = DatagramEndpoint(b, 6000)
        seen = []

        def drain(rx=rx, seen=seen):
            for _ in range(3):
                msg = yield rx.recv()
                seen.append(msg.msg_id)

        def send(tx=tx):
            for i in range(3):
                tx.send("b", 6000, f"d{i}", 100)
                yield sim.timeout(0.01)

        sim.process(drain(), name="drain")
        sim.process(send(), name="send")
        sim.run()
        ids.append(seen)
    assert ids[0] == ids[1]
    assert ids[0] == [1, 2, 3]
