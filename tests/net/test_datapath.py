"""Integration tests for NIC/segment/host frame delivery and routing."""

import pytest

from repro.net import ETHERNET_100, Frame, Medium, Topology, WAN_T3
from repro.sim import Simulator

LOSSLESS = Medium(name="test-lan", bandwidth=1e6, latency=0.001, mtu=1500, frame_overhead=0)


def lan_pair():
    sim = Simulator()
    topo = Topology(sim)
    seg = topo.add_segment("lan", LOSSLESS)
    a = topo.add_host("a")
    b = topo.add_host("b")
    topo.connect(a, seg)
    topo.connect(b, seg)
    return sim, topo, a, b


def mkframe(src_host, dst_host, size=100, proto="test", port=5000):
    return Frame(
        src=list(src_host.nics.values())[0].address,
        dst_ip=list(dst_host.nics.values())[0].address.ip,
        proto=proto,
        src_port=1,
        dst_port=port,
        payload=b"x",
        size=size,
    )


def test_frame_delivered_to_bound_port():
    sim, topo, a, b = lan_pair()
    binding = b.bind("test", 5000)
    got = []

    def rx(sim, binding):
        f = yield binding.get()
        got.append((f.size, sim.now))

    sim.process(rx(sim, binding))
    list(a.nics.values())[0].send(mkframe(a, b, size=1000))
    sim.run()
    # 1000 bytes at 1e6 B/s = 1ms serialisation + 1ms latency.
    assert got == [(1000, pytest.approx(0.002))]


def test_unbound_port_counts_unclaimed():
    sim, topo, a, b = lan_pair()
    list(a.nics.values())[0].send(mkframe(a, b))
    sim.run()
    assert b.unclaimed_frames == 1


def test_serialization_is_serial_per_nic():
    """Two frames queued back-to-back arrive one serialisation apart."""
    sim, topo, a, b = lan_pair()
    binding = b.bind("test", 5000)
    times = []

    def rx(sim, binding):
        for _ in range(2):
            yield binding.get()
            times.append(sim.now)

    sim.process(rx(sim, binding))
    nic = list(a.nics.values())[0]
    nic.send(mkframe(a, b, size=1000))
    nic.send(mkframe(a, b, size=1000))
    sim.run()
    assert times[0] == pytest.approx(0.002)
    assert times[1] == pytest.approx(0.003)  # second waits for the wire


def test_oversize_frame_ip_fragmented():
    """Frames above the MTU are fragmented: delivered whole, charged per
    fragment for wire time and counted as multiple tx frames."""
    sim, topo, a, b = lan_pair()
    binding = b.bind("test", 5000)
    got = []

    def rx(sim, binding):
        f = yield binding.get()
        got.append((f.size, sim.now))

    sim.process(rx(sim, binding))
    nic = list(a.nics.values())[0]
    nic.send(mkframe(a, b, size=4000))  # MTU 1500 -> 3 fragments
    sim.run()
    assert got[0][0] == 4000
    assert got[0][1] == pytest.approx(4000 / 1e6 + 0.001)
    assert nic.tx_frames == 3


def test_down_segment_eats_frames():
    sim, topo, a, b = lan_pair()
    b.bind("test", 5000)
    topo.segments["lan"].up = False
    list(a.nics.values())[0].send(mkframe(a, b))
    sim.run()
    assert topo.segments["lan"].frames_lost == 1


def test_crashed_host_receives_nothing():
    sim, topo, a, b = lan_pair()
    binding = b.bind("test", 5000)
    b.crash()
    list(a.nics.values())[0].send(mkframe(a, b))
    sim.run()
    assert binding.rx_frames == 0


def test_crash_and_recover_roundtrip():
    sim, topo, a, b = lan_pair()
    crashed, recovered = [], []
    b.on_crash.append(lambda h: crashed.append(h.name))
    b.on_recover.append(lambda h: recovered.append(h.name))
    b.crash()
    b.crash()  # idempotent
    b.recover()
    assert crashed == ["b"] and recovered == ["b"]
    assert b.up and all(nic.up for nic in b.nics.values())


def test_broadcast_reaches_all_but_sender():
    sim = Simulator()
    topo = Topology(sim)
    seg = topo.add_segment("lan", LOSSLESS)
    hosts = [topo.add_host(f"h{i}") for i in range(4)]
    for h in hosts:
        topo.connect(h, seg)
    received = []
    for h in hosts:
        binding = h.bind("test", 7)

        def rx(sim, binding, name):
            yield binding.get()
            received.append(name)

        sim.process(rx(sim, binding, h.name))

    f = Frame(
        src=list(hosts[0].nics.values())[0].address,
        dst_ip="*",
        proto="test",
        src_port=1,
        dst_port=7,
        payload=None,
        size=10,
    )
    list(hosts[0].nics.values())[0].send(f)
    sim.run(until=1.0)
    assert sorted(received) == ["h1", "h2", "h3"]


def test_multihop_forwarding_through_gateway():
    """a —lan1— gw —lan2— b: frames for b are forwarded by gw."""
    sim = Simulator()
    topo = Topology(sim)
    lan1 = topo.add_segment("lan1", LOSSLESS)
    lan2 = topo.add_segment("lan2", LOSSLESS)
    a = topo.add_host("a")
    gw = topo.add_host("gw", forwarding=True)
    b = topo.add_host("b")
    topo.connect(a, lan1)
    topo.connect(gw, lan1)
    topo.connect(gw, lan2)
    topo.connect(b, lan2)
    binding = b.bind("test", 5000)

    hop = topo.next_hop("a", b.ip_on_segment("lan2"))
    assert hop is not None
    nic, l2_ip = hop
    assert l2_ip == gw.ip_on_segment("lan1")

    frame = Frame(
        src=nic.address,
        dst_ip=b.ip_on_segment("lan2"),
        proto="test",
        src_port=1,
        dst_port=5000,
        payload=None,
        size=100,
        l2_dst=l2_ip,
    )
    nic.send(frame)
    sim.run()
    assert binding.rx_frames == 1
    assert gw.forwarded_frames == 1


def test_non_gateway_does_not_forward():
    sim = Simulator()
    topo = Topology(sim)
    lan1 = topo.add_segment("lan1", LOSSLESS)
    lan2 = topo.add_segment("lan2", LOSSLESS)
    a = topo.add_host("a")
    mid = topo.add_host("mid")  # forwarding=False
    b = topo.add_host("b")
    topo.connect(a, lan1)
    topo.connect(mid, lan1)
    topo.connect(mid, lan2)
    topo.connect(b, lan2)
    assert topo.route("a", "b") is None


def test_route_prefers_fast_path_and_fails_over():
    """Two routes a→b: direct fast LAN and a 2-hop WAN detour."""
    sim = Simulator()
    topo = Topology(sim)
    lan = topo.add_segment("lan", ETHERNET_100)
    wan1 = topo.add_segment("wan1", WAN_T3)
    wan2 = topo.add_segment("wan2", WAN_T3)
    a = topo.add_host("a")
    b = topo.add_host("b")
    r = topo.add_host("r", forwarding=True)
    topo.connect(a, lan)
    topo.connect(b, lan)
    topo.connect(a, wan1)
    topo.connect(r, wan1)
    topo.connect(r, wan2)
    topo.connect(b, wan2)

    assert topo.route("a", "b") == ["a", "lan", "b"]
    lan.up = False
    topo.bump_version()
    assert topo.route("a", "b") == ["a", "wan1", "r", "wan2", "b"]
    lan.up = True
    topo.bump_version()
    assert topo.route("a", "b") == ["a", "lan", "b"]


def test_shared_segments_sorted_by_bandwidth():
    from repro.net import MYRINET

    sim = Simulator()
    topo = Topology(sim)
    eth = topo.add_segment("eth", ETHERNET_100)
    myr = topo.add_segment("myr", MYRINET)
    a = topo.add_host("a")
    b = topo.add_host("b")
    for seg in (eth, myr):
        topo.connect(a, seg)
        topo.connect(b, seg)
    shared = topo.shared_segments("a", "b")
    assert [s.name for s in shared] == ["myr", "eth"]
    myr.up = False
    assert [s.name for s in topo.shared_segments("a", "b")] == ["eth"]


def test_route_to_crashed_host_is_none():
    sim, topo, a, b = lan_pair()
    assert topo.route("a", "b") is not None
    b.crash()
    assert topo.route("a", "b") is None


def test_nic_txq_overflow_drops():
    """A flooded NIC drops excess frames rather than queueing unboundedly."""
    sim, topo, a, b = lan_pair()
    b.bind("test", 5000)
    nic = list(a.nics.values())[0]
    accepted = sum(1 for _ in range(1500) if nic.send(mkframe(a, b, size=1000)))
    assert accepted == 1000  # the queue depth
    assert nic.drops == 500
    sim.run()
    assert nic.tx_frames == 1000


def test_down_nic_refuses_sends():
    sim, topo, a, b = lan_pair()
    nic = list(a.nics.values())[0]
    nic.up = False
    assert nic.send(mkframe(a, b)) is False
    assert nic.drops == 1


def test_duplicate_iface_and_segment_rejected():
    sim, topo, a, b = lan_pair()
    with pytest.raises(ValueError, match="duplicate iface"):
        a.add_nic("if0", "10.9.9.9", topo.segments["lan"])
    with pytest.raises(ValueError, match="duplicate segment"):
        topo.add_segment("lan", LOSSLESS)
    with pytest.raises(ValueError, match="duplicate host"):
        topo.add_host("a")


def test_double_bind_rejected():
    sim, topo, a, b = lan_pair()
    a.bind("test", 1)
    with pytest.raises(ValueError, match="already bound"):
        a.bind("test", 1)
    a.unbind("test", 1)
    a.bind("test", 1)  # rebindable after unbind
