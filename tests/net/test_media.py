"""Unit tests for medium timing/overhead models."""

import pytest

from repro.net import ATM_155, ETHERNET_100, LOOPBACK, Medium


def test_ethernet_wire_bytes_adds_frame_overhead():
    assert ETHERNET_100.wire_bytes(1500) == 1538
    assert ETHERNET_100.wire_bytes(1) == 39


def test_ethernet_efficiency_near_97_percent():
    eff = ETHERNET_100.efficiency_at_mtu()
    assert 0.97 < eff < 0.98


def test_ethernet_line_rate():
    # 12.5 MB/s line rate: a full frame takes 1538B / 12.5e6 B/s.
    t = ETHERNET_100.serialize_time(1500)
    assert t == pytest.approx(1538 / 12.5e6)


def test_atm_cell_tax():
    """ATM rounds up to 53-byte cells carrying 48 payload bytes."""
    # 48 payload + 8 AAL5 trailer = 56 raw -> 2 cells -> 106 wire bytes.
    assert ATM_155.wire_bytes(48) == 106
    # Full MTU: 9180+8 = 9188 raw -> ceil(9188/48)=192 cells -> 10176 bytes.
    assert ATM_155.wire_bytes(9180) == 192 * 53


def test_atm_efficiency_ceiling():
    """AAL5 efficiency at MTU ≈ 90%: the Fig. 1 ATM curve tops out there."""
    eff = ATM_155.efficiency_at_mtu()
    assert 0.89 < eff < 0.92


def test_atm_faster_than_ethernet_at_mtu():
    atm_goodput = ATM_155.mtu / ATM_155.serialize_time(ATM_155.mtu)
    eth_goodput = ETHERNET_100.mtu / ETHERNET_100.serialize_time(ETHERNET_100.mtu)
    assert atm_goodput > eth_goodput


def test_loopback_has_no_overhead():
    assert LOOPBACK.wire_bytes(1000) == 1000


def test_custom_medium_without_cells():
    m = Medium(name="x", bandwidth=1e6, latency=0.001, mtu=1000, frame_overhead=20)
    assert m.wire_bytes(500) == 520
    assert m.serialize_time(500) == pytest.approx(520e-6)
