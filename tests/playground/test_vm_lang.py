"""Unit + property tests for the SnipeScript compiler and the VM."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.playground import CompileError, SnipeVM, VmError, VmQuotaError, compile_source


def run_src(source, **vm_kw):
    vm = SnipeVM(compile_source(source), **vm_kw)
    vm.run()
    return vm


def test_arithmetic_and_emit():
    vm = run_src("emit 1 + 2 * 3 - 4 / 2;")
    assert vm.output == [5]


def test_float_arithmetic():
    vm = run_src("emit 1.5 * 2.0;")
    assert vm.output == [3.0]


def test_variables_and_reassignment():
    vm = run_src("var x = 10; x = x + 5; emit x;")
    assert vm.output == [15]


def test_while_loop_sum():
    vm = run_src("""
        var total = 0;
        var i = 1;
        while (i <= 10) { total = total + i; i = i + 1; }
        emit total;
    """)
    assert vm.output == [55]


def test_if_else():
    vm = run_src("""
        var x = 7;
        if (x % 2 == 0) { emit "even"; } else { emit "odd"; }
    """)
    assert vm.output == ["odd"]


def test_functions_with_recursion():
    vm = run_src("""
        fun fib(n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        emit fib(12);
    """)
    assert vm.output == [144]


def test_forward_function_reference():
    vm = run_src("""
        emit double(21);
        fun double(x) { return x * 2; }
    """)
    assert vm.output == [42]


def test_lists_index_push_len():
    vm = run_src("""
        var xs = [1, 2, 3];
        push(xs, 10);
        xs[0] = 99;
        emit xs[0] + xs[3];
        emit len(xs);
    """)
    assert vm.output == [109, 4]


def test_boolean_short_circuit():
    # Division by zero on the right side must not execute.
    vm = run_src("var x = 0; emit x != 0 and 1 / x; emit x == 0 or 1 / x;")
    assert vm.output == [0, 1]


def test_comments_and_strings():
    vm = run_src('# header comment\nemit "hello world"; # trailing\n')
    assert vm.output == ["hello world"]


def test_nested_function_calls():
    vm = run_src("""
        fun add(a, b) { return a + b; }
        fun mul(a, b) { return a * b; }
        emit add(mul(2, 3), mul(4, 5));
    """)
    assert vm.output == [26]


def test_locals_shadow_globals():
    vm = run_src("""
        var x = 1;
        fun f(x) { x = x + 100; return x; }
        emit f(5);
        emit x;
    """)
    assert vm.output == [105, 1]


def test_step_quota_enforced():
    with pytest.raises(VmQuotaError, match="step quota"):
        run_src("var i = 0; while (1) { i = i + 1; }", max_steps=10_000)


def test_memory_quota_enforced():
    with pytest.raises(VmQuotaError, match="memory quota"):
        run_src(
            "var xs = []; var i = 0; while (i < 100000) { push(xs, i); i = i + 1; }",
            max_cells=500,
        )


def test_runtime_errors():
    with pytest.raises(VmError, match="undefined variable"):
        run_src("emit nope;")
    with pytest.raises(VmError, match="DIV failed"):
        run_src("emit 1 / 0;")
    with pytest.raises(VmError, match="index failed"):
        run_src("var xs = [1]; emit xs[5];")


def test_compile_errors():
    with pytest.raises(CompileError, match="takes 1 args, got 2"):
        compile_source("fun f(a) { return a; } emit f(1, 2);")
    with pytest.raises(CompileError):
        compile_source("var x = ;")
    with pytest.raises(CompileError, match="bad character"):
        compile_source("emit 1 ~ 2;")


def test_syscall_gating():
    code = compile_source("emit now();")
    vm = SnipeVM(code, syscalls={"now": lambda: 123.0})
    vm.run()
    assert vm.output == [123.0]
    vm2 = SnipeVM(code, syscalls={})
    with pytest.raises(VmError, match="denied or unknown"):
        vm2.run()


def test_snapshot_restore_identical_result():
    source = """
        fun square(x) { return x * x; }
        var acc = 0;
        var i = 0;
        while (i < 50) { acc = acc + square(i); i = i + 1; }
        emit acc;
    """
    code = compile_source(source)
    straight = SnipeVM(code)
    straight.run()

    chopped = SnipeVM(code)
    while not chopped.run(max_slice=7):
        snap = chopped.snapshot()
        chopped = SnipeVM(code)
        chopped.restore(snap)
    assert chopped.output == straight.output
    assert chopped.steps == straight.steps


def test_snapshot_preserves_aliasing():
    """A list shared between a local and a global survives checkpointing."""
    source = """
        var shared = [0];
        fun bump(xs) { xs[0] = xs[0] + 1; return 0; }
        var i = 0;
        while (i < 20) { bump(shared); i = i + 1; }
        emit shared[0];
    """
    code = compile_source(source)
    vm = SnipeVM(code)
    while not vm.run(max_slice=3):
        snap = vm.snapshot()
        vm = SnipeVM(code)
        vm.restore(snap)
    assert vm.output == [20]


@settings(max_examples=30)
@given(st.integers(min_value=0, max_value=30), st.integers(min_value=1, max_value=97))
def test_vm_slicing_never_changes_results(n, slice_size):
    """Property: any slicing schedule yields the straight-run output."""
    source = f"""
        var xs = [];
        var i = 0;
        while (i < {n}) {{ push(xs, i * i % 7); i = i + 1; }}
        emit len(xs);
        emit xs;
    """
    code = compile_source(source)
    straight = SnipeVM(code)
    straight.run()
    sliced = SnipeVM(code)
    while not sliced.run(max_slice=slice_size):
        snap = sliced.snapshot()
        sliced = SnipeVM(code)
        sliced.restore(snap)
    assert sliced.output == straight.output


@settings(max_examples=20)
@given(st.integers(-1000, 1000), st.integers(-1000, 1000))
def test_compiled_arithmetic_matches_python(a, b):
    vm = run_src(f"emit {a} + {b}; emit {a} * {b}; emit {a} - {b};")
    assert vm.output == [a + b, a * b, a - b]
