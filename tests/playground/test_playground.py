"""Integration tests: playground verification, confinement, quotas, migration."""

import random


from repro.core import SnipeEnvironment
from repro.daemon import TaskSpec, TaskState
from repro.playground import Playground, sign_mobile_code
from repro.security import TrustPolicy, generate_keypair


SIGNER = "urn:snipe:user:codevendor"


def pg_site(n_hosts=4, grants=None, seed=0):
    env = SnipeEnvironment.lan_site(n_hosts=n_hosts, n_fs=1, seed=seed)
    keys = generate_keypair(random.Random(42))
    trust = TrustPolicy()
    trust.pin_key(SIGNER, keys.public)
    trust.trust(SIGNER, "sign-code")
    playgrounds = {
        name: Playground(
            daemon, trust,
            grants={SIGNER: grants if grants is not None else {"clock", "metadata", "net"}},
        )
        for name, daemon in env.daemons.items()
    }
    env.settle(1.0)
    return env, keys, trust, playgrounds


def publish_code(env, keys, source, rights=(), lifn="agent.code"):
    bundle = sign_mobile_code(source, SIGNER, keys, rights)
    fc = env.file_client("h0")

    def store(sim):
        yield fc.write(lifn, bundle, 2000)

    env.run(until=env.sim.process(store(env.sim)))
    return lifn


def test_mobile_code_runs_and_returns_output():
    env, keys, trust, pgs = pg_site()
    lifn = publish_code(env, keys, """
        var total = 0;
        var i = 0;
        while (i < 100) { total = total + i; i = i + 1; }
        emit total;
    """)
    info = env.daemons["h2"].spawn(TaskSpec(program="mobile", mobile_code=lifn))
    env.run(until=60.0)
    assert info.state == TaskState.EXITED
    assert info.exit_value == [4950]


def test_tampered_code_rejected():
    env, keys, trust, pgs = pg_site()
    publish_code(env, keys, "emit 1;")
    # Corrupt the stored bundle's source after signing — but integrity is
    # caught by the LIFN hash first, so instead forge a bundle signed by
    # nobody trustworthy.
    mallory = generate_keypair(random.Random(666))
    forged = sign_mobile_code("emit 666;", SIGNER, mallory, ())
    fc = env.file_client("h0")

    def store(sim):
        yield fc.write("forged.code", forged, 2000)

    env.run(until=env.sim.process(store(env.sim)))
    info = env.daemons["h2"].spawn(TaskSpec(program="mobile", mobile_code="forged.code"))
    env.run(until=30.0)
    assert info.state == TaskState.FAILED
    assert "signature" in info.error


def test_rights_beyond_grant_rejected():
    env, keys, trust, pgs = pg_site(grants={"clock"})
    lifn = publish_code(env, keys, "emit now();", rights=("clock", "net"))
    info = env.daemons["h1"].spawn(TaskSpec(program="mobile", mobile_code=lifn))
    env.run(until=30.0)
    assert info.state == TaskState.FAILED
    assert "beyond the grant" in info.error


def test_granted_syscall_works_denied_syscall_fails():
    env, keys, trust, pgs = pg_site(grants={"clock"})
    ok_lifn = publish_code(env, keys, "emit now();", rights=("clock",), lifn="ok.code")
    bad_lifn = publish_code(
        env, keys, 'publish("k", 1);', rights=(), lifn="bad.code"
    )
    ok = env.daemons["h1"].spawn(TaskSpec(program="mobile", mobile_code=ok_lifn))
    bad = env.daemons["h2"].spawn(TaskSpec(program="mobile", mobile_code=bad_lifn))
    env.run(until=60.0)
    assert ok.state == TaskState.EXITED
    assert isinstance(ok.exit_value[0], float)
    assert bad.state == TaskState.FAILED
    assert "denied" in bad.error
    # The violation was logged with the daemon (§3.6).
    assert any(kind == "syscall:publish" for _, _, kind in env.daemons["h2"].violations)


def test_cpu_quota_kills_runaway_mobile_code():
    env, keys, trust, pgs = pg_site()
    lifn = publish_code(env, keys, "var i = 0; while (1) { i = i + 1; }")
    info = env.daemons["h1"].spawn(
        TaskSpec(program="mobile", mobile_code=lifn, cpu_quota=0.05)
    )
    env.run(until=120.0)
    assert info.state == TaskState.KILLED
    assert "quota" in info.error.lower()
    # Either enforcement path is fine: the daemon's CPU account or the
    # VM's step budget (they are calibrated to trip together).
    assert any(
        kind in ("vm-quota", "cpu-quota") for _, _, kind in env.daemons["h1"].violations
    )


def test_mobile_code_net_right_sends_messages():
    env, keys, trust, pgs = pg_site()
    got = []

    @env.program("listener")
    def listener(ctx):
        msg = yield ctx.recv(tag="mobile")
        got.append(msg.payload)
        return "heard"

    listener_info = env.spawn("listener", on="h3")
    env.settle(0.5)
    lifn = publish_code(
        env, keys, f'send("{listener_info.urn}", 7 * 6);', rights=("net",)
    )
    env.daemons["h1"].spawn(TaskSpec(program="mobile", mobile_code=lifn))
    env.run(until=60.0)
    assert got == [42]


def test_migrated_mobile_code_resumes_from_vm_snapshot():
    """RM-style migration of mobile code: the VM snapshot travels and the
    program completes with exactly the straight-run answer."""
    env, keys, trust, pgs = pg_site()
    lifn = publish_code(env, keys, """
        var acc = 0;
        var i = 0;
        while (i < 2000) { acc = acc + i; i = i + 1; }
        emit acc;
    """)
    spec = TaskSpec(program="mobile", mobile_code=lifn)
    info = env.daemons["h1"].spawn(spec)
    env.settle(0.004)  # a few slices in, mid-run

    # Daemon-arranged migration (§5.6): checkpoint out, respawn on h2.
    shipment = env.daemons["h1"].migrate_out(info.urn)
    assert "vm" in shipment["state"]
    new_spec = TaskSpec(
        program="mobile",
        mobile_code=lifn,
        initial_state=shipment["state"],
        urn_override=info.urn,
    )
    new_info = env.daemons["h2"].spawn(new_spec)
    env.run(until=120.0)
    assert env.daemons["h1"].tasks[info.urn].state == TaskState.MIGRATED
    assert new_info.state == TaskState.EXITED
    assert new_info.exit_value == [sum(range(2000))]
