"""Unit tests for chunking and chunk maps."""

import pytest

from repro.bulk.chunks import (
    DEFAULT_CHUNK_SIZE,
    ChunkMap,
    build_chunk_map,
    bulk_urn,
    object_bytes,
    split_chunks,
)
from repro.security.hashes import content_hash


def test_split_roundtrip_and_sizes():
    data = bytes(range(256)) * 1000  # 256 000 bytes
    chunks = split_chunks(data, 100_000)
    assert [len(c) for c in chunks] == [100_000, 100_000, 56_000]
    assert b"".join(chunks) == data


def test_split_empty_and_bad_chunk_size():
    assert split_chunks(b"", 10) == [b""]
    with pytest.raises(ValueError):
        split_chunks(b"x", 0)


def test_build_chunk_map_digests_and_lengths():
    data = b"a" * 150 + b"b" * 150 + b"c" * 33
    cmap, chunks = build_chunk_map("obj", data, 150)
    assert cmap.nchunks == 3
    assert cmap.size == len(data)
    assert [cmap.chunk_len(i) for i in range(3)] == [150, 150, 33]
    assert cmap.digests == tuple(content_hash(c) for c in chunks)
    assert cmap.hash == content_hash(data)
    assert bulk_urn("obj") == "urn:snipe:bulk:obj"


def test_object_bytes_passthrough_and_pickle():
    assert object_bytes(b"raw") == b"raw"
    assert object_bytes(bytearray(b"raw")) == b"raw"
    blob = object_bytes({"k": 1})
    assert isinstance(blob, bytes) and blob != b""


def _published(cmap, secret=None):
    """Shape assertions the way an RC lookup returns them."""
    return {
        key: {"value": value, "wall": 0.0}
        for key, value in cmap.to_assertions(secret).items()
    }


def test_assertions_roundtrip_unsigned():
    cmap, _ = build_chunk_map("obj", b"x" * 1000, 300)
    back = ChunkMap.from_assertions(_published(cmap))
    assert back == cmap


def test_assertions_roundtrip_signed_and_tamper():
    secret = b"s3cret"
    cmap, _ = build_chunk_map("obj", b"x" * 1000, 300)
    assert ChunkMap.from_assertions(_published(cmap, secret), secret) == cmap
    # Tampered digest list must fail signature verification.
    forged = _published(cmap, secret)
    forged["map"]["value"]["digests"][0] = content_hash(b"evil")
    with pytest.raises(ValueError):
        ChunkMap.from_assertions(forged, secret)
    # Missing signature when one is required.
    with pytest.raises(ValueError):
        ChunkMap.from_assertions(_published(cmap), secret)


def test_missing_map_raises_keyerror():
    with pytest.raises(KeyError):
        ChunkMap.from_assertions({})


def test_default_chunk_size_is_shared_constant():
    from repro.files import server as files_server

    assert DEFAULT_CHUNK_SIZE == 65536
    assert files_server.DEFAULT_CHUNK_SIZE is DEFAULT_CHUNK_SIZE
