"""Bulk service + fetcher: seeding, multi-source fetch, failover, resume."""

from repro.bulk.chunks import DEFAULT_CHUNK_SIZE, bulk_urn
from repro.bulk.fetch import BulkError, parse_sources
from repro.bulk.testbed import build_bulk_site, make_payload

CHUNK = 4096  # small chunks so tests move many chunks cheaply


def site(seed=0, racks=1, per_rack=3):
    return build_bulk_site(seed=seed, racks=racks, per_rack=per_rack)


def run_gen(env, gen):
    return env.sim.run(until=env.sim.process(gen))


def test_seed_publishes_map_and_sources():
    env, root, dests = site()
    payload = make_payload(5 * CHUNK, CHUNK)

    def go(sim):
        yield env.bulk_services[root].seed("weights", payload, CHUNK)
        assertions = yield env.rc_client(root).lookup(bulk_urn("weights"))
        return assertions

    assertions = run_gen(env, go(env.sim))
    assert assertions["map"]["value"]["size"] == 5 * CHUNK
    assert len(assertions["map"]["value"]["digests"]) == 5
    assert parse_sources(assertions) == [(root, 2200)]


def test_fetch_from_origin_verifies_and_announces():
    env, root, dests = site()
    payload = make_payload(8 * CHUNK + 100, CHUNK)

    def go(sim):
        yield env.bulk_services[root].seed("weights", payload, CHUNK)
        report = yield env.bulk_services[dests[0]].fetcher.fetch("weights")
        assertions = yield env.rc_client(root).lookup(bulk_urn("weights"))
        return report, assertions

    report, assertions = run_gen(env, go(env.sim))
    assert report["ok"] and report["hash_ok"]
    assert report["bytes"] == 8 * CHUNK + 100
    assert report["nchunks"] == 9
    store = env.bulk_services[dests[0]].store
    assert store.complete("weights")
    assert store.payload("weights") == payload
    # The completed copy announced itself as a source (swarm growth).
    assert (dests[0], 2200) in parse_sources(assertions)


def test_fetch_stripes_across_multiple_sources():
    env, root, dests = site(per_rack=3)
    payload = make_payload(20 * CHUNK, CHUNK)

    def go(sim):
        yield env.bulk_services[root].seed("weights", payload, CHUNK)
        # First replica completes, announces, then a second fetch should
        # pull from both the origin and the new peer.
        yield env.bulk_services[dests[0]].fetcher.fetch("weights")
        report = yield env.bulk_services[dests[1]].fetcher.fetch("weights")
        return report

    report = run_gen(env, go(env.sim))
    assert report["ok"]
    sources = set(report["bytes_by_source"])
    assert len(sources) >= 2  # striped, not single-source
    assert sum(report["bytes_by_source"].values()) == 20 * CHUNK


def test_failover_when_source_dies_mid_object():
    env, root, dests = site(per_rack=3)
    payload = make_payload(30 * CHUNK, CHUNK)

    def go(sim):
        yield env.bulk_services[root].seed("weights", payload, CHUNK)
        yield env.bulk_services[dests[0]].fetcher.fetch("weights")
        # dests[1] fetches while its preferred source (the peer replica,
        # passed as a hint) is killed mid-transfer.
        fetch = env.bulk_services[dests[1]].fetcher.fetch(
            "weights", hints=[env.bulk_services[dests[0]].address])
        yield sim.timeout(0.2)
        env.topology.hosts[dests[0]].crash()
        report = yield fetch
        return report

    report = run_gen(env, go(env.sim))
    assert report["ok"] and report["hash_ok"]
    # The dead peer cost retries, and the origin finished the object.
    assert (root, 2200) in report["bytes_by_source"]
    store = env.bulk_services[dests[1]].store
    assert store.payload("weights") == payload


def test_fetch_resumes_from_partial_store():
    env, root, dests = site()
    nchunks = 100
    payload = make_payload(nchunks * CHUNK, CHUNK)
    svc = env.bulk_services[dests[0]]

    def go(sim):
        yield env.bulk_services[root].seed("weights", payload, CHUNK)
        first = svc.fetcher.fetch("weights")
        # Interrupt as soon as the transfer is genuinely mid-object.
        while svc.store.count("weights") == 0:
            yield sim.timeout(0.002)
        first.interrupt("simulated crash")
        try:
            yield first
        except Exception:
            pass
        got = svc.store.count("weights")
        report = yield svc.fetcher.fetch("weights")
        return got, report

    got, report = run_gen(env, go(env.sim))
    assert 0 < got < nchunks  # genuinely mid-object when interrupted
    assert report["ok"]
    # The resumed fetch only moved the missing chunks.
    assert report["nchunks"] == nchunks
    assert sum(report["bytes_by_source"].values()) == (nchunks - got) * CHUNK
    assert svc.store.payload("weights") == payload


def test_fetch_unknown_object_fails_cleanly():
    env, root, dests = site()

    def go(sim):
        try:
            yield env.bulk_services[dests[0]].fetcher.fetch("ghost", deadline=3.0)
        except BulkError as exc:
            return str(exc)
        return None

    assert "no chunk map" in run_gen(env, go(env.sim))


def test_corrupt_source_is_quarantined():
    env, root, dests = site(per_rack=2)
    payload = make_payload(10 * CHUNK, CHUNK)
    poison = env.bulk_services[dests[0]]

    def go(sim):
        yield env.bulk_services[root].seed("weights", payload, CHUNK)
        yield poison.fetcher.fetch("weights")
        # Corrupt every chunk held by the announced peer.
        for seq in range(10):
            poison.store._chunks["weights"][seq] = b"\x00" * CHUNK
        report = yield env.bulk_services[dests[1]].fetcher.fetch(
            "weights", hints=[poison.address])
        return report

    report = run_gen(env, go(env.sim))
    assert report["ok"] and report["hash_ok"]
    assert report["integrity_failures"] >= 1
    assert env.bulk_services[dests[1]].store.payload("weights") == payload


def test_wait_based_serving_pipelines_to_children():
    # A peer that only *starts* holding the map can still serve: children
    # asking ahead park in bulk.get_chunk until the chunk arrives.
    env, root, dests = site(per_rack=2)
    payload = make_payload(15 * CHUNK, CHUNK)
    relay, leaf = dests[0], dests[1]

    def go(sim):
        yield env.bulk_services[root].seed("weights", payload, CHUNK)
        relay_fetch = env.bulk_services[relay].fetcher.fetch("weights")
        yield sim.timeout(0.05)  # relay has the map, not yet the chunks
        leaf_fetch = env.bulk_services[leaf].fetcher.fetch(
            "weights", hints=[env.bulk_services[relay].address])
        r1 = yield relay_fetch
        r2 = yield leaf_fetch
        return r1, r2

    r1, r2 = run_gen(env, go(env.sim))
    assert r1["ok"] and r2["ok"]
    # The leaf got real bytes from the still-downloading relay.
    assert r2["bytes_by_source"].get((relay, 2200), 0) > 0
    assert env.bulk_services[leaf].store.payload("weights") == payload


def test_default_chunk_size_used_when_unspecified():
    env, root, dests = site()
    payload = make_payload(2 * DEFAULT_CHUNK_SIZE + 7)

    def go(sim):
        cmap = yield env.bulk_services[root].seed("weights", payload)
        return cmap

    cmap = run_gen(env, go(env.sim))
    assert cmap.chunk_size == DEFAULT_CHUNK_SIZE
    assert cmap.nchunks == 3
