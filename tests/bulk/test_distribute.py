"""Relay-tree construction and end-to-end fan-out distribution."""

from repro.bulk.distribute import build_relay_tree, tree_depth
from repro.bulk.testbed import build_bulk_site, make_payload

CHUNK = 4096


def run_gen(env, gen):
    return env.sim.run(until=env.sim.process(gen))


def test_relay_tree_clusters_by_segment():
    env, root, dests = build_bulk_site(racks=2, per_rack=3, settle=0)
    parents = build_relay_tree(env.topology, root, dests, fanout=2)
    assert set(parents) == set(dests)
    # Exactly one head per rack pulls from the root.
    heads = [d for d, p in parents.items() if p == root]
    assert len(heads) == 2
    assert {h.split("-")[0] for h in heads} == {"m0", "m1"}
    # Every non-head's parent lives in the same rack.
    for d, p in parents.items():
        if p != root:
            assert d.split("-")[0] == p.split("-")[0]
    # Depths are bounded by the fanout-2 tree over 3 members.
    assert max(tree_depth(parents, d, root) for d in dests) <= 2


def test_relay_tree_fanout_bound():
    env, root, dests = build_bulk_site(racks=1, per_rack=7, settle=0)
    parents = build_relay_tree(env.topology, root, dests, fanout=2)
    for p in set(parents.values()):
        assert list(parents.values()).count(p) <= 3  # head + fanout children


def test_distribute_tree_delivers_everywhere():
    env, root, dests = build_bulk_site(racks=2, per_rack=3)
    payload = make_payload(30 * CHUNK, CHUNK)
    dist = env.bulk_distributor(root)

    def go(sim):
        return (yield dist.distribute("weights", payload, dests,
                                      chunk_size=CHUNK))

    report = run_gen(env, go(env.sim))
    assert report["completed"] == len(dests)
    assert report["failed"] == []
    assert report["all_verified"]
    for d in dests:
        assert env.bulk_services[d].store.payload("weights") == payload


def test_distribute_unicast_baseline_delivers():
    env, root, dests = build_bulk_site(racks=2, per_rack=2)
    payload = make_payload(20 * CHUNK, CHUNK)
    dist = env.bulk_distributor(root)

    def go(sim):
        return (yield dist.distribute("weights", payload, dests,
                                      chunk_size=CHUNK, strategy="unicast"))

    report = run_gen(env, go(env.sim))
    assert report["completed"] == len(dests)
    assert report["all_verified"]
    # Naive mode: every byte came straight from the root.
    for d in dests:
        by = report["per_dest"][d]["bytes_by_source"]
        assert set(by) == {(root, 2200)}


def test_distribute_survives_relay_crash_and_recovery():
    env, root, dests = build_bulk_site(racks=2, per_rack=4)
    nchunks = 120
    payload = make_payload(nchunks * CHUNK, CHUNK)
    dist = env.bulk_distributor(root)
    parents = build_relay_tree(env.topology, root, dests, fanout=2)
    relay = [d for d, p in parents.items() if p == root][0]

    def go(sim):
        d = dist.distribute("weights", payload, dests, chunk_size=CHUNK,
                            deadline=30.0)
        # Kill the rack-0 cluster head once it is mid-transfer.
        while env.bulk_services[relay].store.count("weights") == 0:
            yield sim.timeout(0.002)
        env.topology.hosts[relay].crash()
        yield sim.timeout(1.0)
        env.topology.hosts[relay].recover()
        return (yield d)

    report = run_gen(env, go(env.sim))
    assert report["completed"] == len(dests)
    assert report["all_verified"]
    assert report["per_dest"][relay]["crashes"] >= 1
    for d in dests:
        assert env.bulk_services[d].store.payload("weights") == payload


def test_distribute_tree_keeps_backbone_traffic_constant():
    # In tree mode only cluster heads talk to the root: the root serves
    # ~racks transfers' worth of bytes, not hosts' worth.
    env, root, dests = build_bulk_site(racks=2, per_rack=4)
    payload = make_payload(40 * CHUNK, CHUNK)
    dist = env.bulk_distributor(root)

    def go(sim):
        return (yield dist.distribute("weights", payload, dests,
                                      chunk_size=CHUNK))

    report = run_gen(env, go(env.sim))
    assert report["completed"] == len(dests)
    root_bytes = sum(
        by.get((root, 2200), 0)
        for by in (r["bytes_by_source"] for r in report["per_dest"].values())
    )
    total_bytes = len(dests) * 40 * CHUNK
    # The root served well under half of all delivered bytes.
    assert root_bytes < total_bytes / 2
