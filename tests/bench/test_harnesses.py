"""Fast smoke tests for every benchmark harness (small configurations).

The real reproductions run under ``pytest benchmarks/ --benchmark-only``;
these keep the harness code covered by the unit suite and pin the row
schemas the benchmarks rely on.
"""

import pytest

from repro.bench.e10_media import media_selection
from repro.bench.e2_mpiconnect import mpiconnect_vs_pvmpi, summarize_speedup
from repro.bench.e3_availability import availability_vs_replicas
from repro.bench.e5_master import master_failure
from repro.bench.e6_migration import migration_loss
from repro.bench.e7_mcast import mcast_fault_tolerance
from repro.bench.e8_failover import failover_timeline
from repro.bench.e9_rc import anti_entropy_ablation, rc_update_scaling
from repro.bench.fig1 import fig1_bandwidth
from repro.bench.table import format_table


def test_fig1_rows_schema():
    rows = fig1_bandwidth(sizes=[16_384], n_mcast_receivers=2)
    assert {r["series"] for r in rows} == {
        "srudp/ethernet-100", "tcp/ethernet-100",
        "srudp/atm-155", "tcp/atm-155", "mcast/ethernet-100",
    }
    assert all(r["mbps"] > 5.0 for r in rows)


def test_e2_rows_and_speedup():
    rows = mpiconnect_vs_pvmpi(sizes=[4_096], n_msgs=2)
    speedups = summarize_speedup(rows)
    assert len(rows) == 2 and len(speedups) == 1
    assert speedups[0]["speedup"] > 1.0


def test_e3_availability_small():
    rows = availability_vs_replicas(replica_counts=(1, 3), horizon=120.0)
    assert [r["replicas"] for r in rows] == [1, 3]
    assert rows[1]["availability"] >= rows[0]["availability"]


def test_e5_master_failure_small():
    rows = master_failure(n_hosts=4, ops_per_phase=5)
    by_key = {(r["system"], r["phase"]): r["success_rate"] for r in rows}
    assert by_key[("pvm", "after")] == 0.0
    assert by_key[("snipe", "after")] == 1.0


def test_e6_migration_small():
    rows = migration_loss(hop_counts=(1,), n_msgs=20)
    assert rows[0]["lost"] == 0 and rows[0]["duplicated"] == 0


def test_e7_mcast_small():
    rows = mcast_fault_tolerance(n_members=5, router_kills=(1,))
    by_mode = {r["mode"]: r["delivery_rate"] for r in rows}
    assert by_mode["majority"] == 1.0
    assert by_mode["single"] == 0.0


def test_e8_failover_small():
    result = failover_timeline(total_bytes=4_000_000, msg_size=200_000, cut_at=0.05)
    summary = {r["policy"]: r for r in result["summary"]}
    assert summary["snipe-multipath"]["completed"]
    assert not summary["single-interface"]["completed"]
    assert result["timeline"]  # the series exists for plotting


def test_e9_small():
    rows = rc_update_scaling(replica_counts=(1, 2), n_writers=4, window=4.0)
    by_key = {(r["model"], r["replicas"]): r["throughput"] for r in rows}
    assert by_key[("master-master", 2)] > by_key[("single-master", 2)]
    ab = anti_entropy_ablation(sync_intervals=(0.2, 2.0), k=2)
    assert ab[0]["propagation_s"] < ab[1]["propagation_s"]


def test_e10_small():
    rows = media_selection(size=2_000_000)
    by_policy = {r["policy"]: r["segment_used"] for r in rows}
    assert by_policy == {"snipe": "myr", "default-ip": "eth"}


def test_e16_summary_and_formatting():
    from repro.bench.e16_heal import format_heal_bench, summarize

    def row(config, mode="partition", **kw):
        base = dict(config=config, seed=1, mode=mode, reconverge_s=2.5,
                    diverged_at_heal=40, max_sync_batch=64, bound=64,
                    control_p99_ms=0.4, control_max_ms=1.2, probe_failed=0,
                    hb_failed=0, hb_failovers=0, snapshot_catchups=6,
                    writes_ok=500, retired=7, resurrected=0, restores=0,
                    ok=True)
        base.update(kw)
        return base

    rows = [
        row("bounded"),
        row("unbounded", bound=None, max_sync_batch=7500,
            control_p99_ms=48.0, probe_failed=3, hb_failovers=17,
            snapshot_catchups=0, ok=False),
        row("blackout", mode="blackout", restores=3),
    ]
    s = summarize(rows)
    assert s["bounded_all_ok"] and s["blackout_all_ok"]
    assert s["baseline_breaches_bound"]
    assert s["payload_ratio"] > 100
    assert s["blackout_restores"] == 3 and s["blackout_resurrected"] == 0
    text = format_heal_bench(rows)
    assert "E16" in text and "7500" in text and "durable restores" in text


def test_e17_kernel_scale_small():
    from repro.bench.e17_kernel_scale import kernel_scale

    rows = kernel_scale(scales=(16, 32), calls_per_host=2)
    assert [r["hosts"] for r in rows] == [16, 32]
    # Pin the row schema BENCH_kernel_scale.json archives.
    assert set(rows[0]) == {
        "hosts", "lans", "calls", "calls_ok", "calls_failed",
        "virtual_s", "events", "frames", "wall_s", "events_per_s",
    }
    for r in rows:
        assert r["calls_ok"] == r["calls"] and r["calls_failed"] == 0
        assert r["events"] > 0 and r["frames"] > 0
    # Wall-clock canary: these two tiny sites simulate in well under a
    # second; a kernel regression big enough to trip a bound this
    # generous is a bug no matter what the full benchmarks say.
    assert all(r["wall_s"] < 5.0 for r in rows)


def test_e18_catalog_scale_small():
    from repro.bench.e18_catalog_scale import (
        catalog_scale,
        format_catalog_bench,
        summarize,
    )

    rows = catalog_scale(name_counts=(400,), n_shards=2, window=4.0,
                         n_client_hosts=2, sessions_per_host=2)
    assert [r["config"] for r in rows] == ["sharded", "full-replication"]
    # Pin the row schema BENCH_catalog_scale.json archives.
    assert set(rows[0]) == {
        "config", "names", "shards", "servers", "clients", "window_s",
        "lookups", "updates", "creates", "queries", "failed", "misses",
        "ops_per_s", "lookups_per_s", "updates_per_s", "lookup_p50_ms",
        "lookup_p99_ms", "update_p99_ms", "query_p99_ms", "redirects",
        "preload_s", "wall_s",
    }
    for r in rows:
        # Steady state (no splits, no churned map): every preloaded name
        # resolves and no quorum is ever lost.
        assert r["misses"] == 0 and r["failed"] == 0
        assert r["lookups"] > 0 and r["updates"] > 0
    # Wall-clock canary, same spirit as E17's: tiny configs must stay
    # interactive or the preload/anti-entropy fast paths regressed.
    assert all(r["wall_s"] < 10.0 for r in rows)
    s = summarize(rows)
    assert s["max_names"] == 400 and s["speedup_ops"] is not None
    assert "E18" in format_catalog_bench(rows)


def test_format_table_alignment():
    rows = [{"a": 1, "bb": 2.34567}, {"a": 100, "bb": 0.5}]
    text = format_table(rows)
    lines = text.splitlines()
    assert lines[0].startswith("a")
    assert "2.346" in text
    assert format_table([]) == "(no rows)"


def test_topology_helpers():
    from repro.bench.topologies import dual_media_pair, wan_site

    sim, topo, a, b = dual_media_pair()
    assert [s.name for s in topo.shared_segments("a", "b")] == ["atm-155", "ethernet-100"]

    sim, topo, lans = wan_site(n_lans=3, hosts_per_lan=2)
    assert len(lans) == 3
    # Cross-LAN routing works through the gateways.
    assert topo.route("l0h1", "l2h1") is not None
    # Non-gateway hosts are not on the WAN.
    assert lans[0][1].nic_on_segment("wan") is None
    assert lans[0][0].nic_on_segment("wan") is not None
