"""Unit tests for the ASCII chart renderer."""

from repro.bench.plotting import ascii_chart


def test_chart_contains_marks_and_legend():
    out = ascii_chart(
        {"up": [(1, 1.0), (10, 2.0), (100, 3.0)],
         "flat": [(1, 1.5), (10, 1.5), (100, 1.5)]},
        title="demo",
    )
    assert out.startswith("demo")
    assert "o=up" in out and "x=flat" in out
    assert "log x" in out
    # Marks appear in the grid body.
    body = "\n".join(out.splitlines()[1:-3])
    assert "o" in body and "x" in body


def test_chart_linear_x_and_empty():
    assert ascii_chart({}) == "(no data)"
    out = ascii_chart({"s": [(0.0, 5.0), (1.0, 10.0)]}, log_x=False)
    assert "log x" not in out
