"""The §6 testbed, end to end.

    "SNIPE testbeds have been running at the University of Tennessee
    since autumn 1997 and due to replication have maintained an almost
    perfect level of availability. SNIPE testbeds have also extended to
    the University of Reading, UK and the Aeronautical Systems Center
    … in support of an across MPP inter-MPI application system."

This integration test builds the whole thing: three sites (UT, Reading,
ASC) joined by WAN links, RC replicas at every site, daemons + file
servers + an RM per site, random host churn on the worker nodes, a mixed
workload (spawns through the RM, metadata lookups, file reads, group
multicast), and a cross-site MPI_Connect application — all running
concurrently. The assertions mirror the paper's observations.
"""

import pytest

from repro.core import SnipeEnvironment
from repro.daemon import TaskSpec, TaskState
from repro.mpi import MpiConnectBridge, MpiJob
from repro.net.media import ETHERNET_100, MYRINET, WAN_T3
from repro.rm.client import RmClient

SITES = ["ut", "reading", "asc"]
WORKERS_PER_SITE = 3  # plus a gateway/core host per site


@pytest.fixture(scope="module")
def testbed():
    env = SnipeEnvironment(seed=1997)
    env.add_segment("wan", WAN_T3)
    for site in SITES:
        env.add_segment(f"{site}-lan", ETHERNET_100)
        core = env.add_host(f"{site}-core", segments=[f"{site}-lan"], forwarding=True)
        env.topology.connect(core, env.topology.segments["wan"])
        for i in range(WORKERS_PER_SITE):
            env.add_host(f"{site}-w{i}", segments=[f"{site}-lan"])
    # ASC also has an MPP behind its core (the paper's MSRC machines).
    env.add_segment("asc-mpp", MYRINET)
    for i in range(2):
        env.add_host(f"asc-mpp{i}", segments=["asc-mpp"])
    env.topology.connect(env.topology.hosts["asc-core"], env.topology.segments["asc-mpp"])
    # UT has one too.
    env.add_segment("ut-mpp", MYRINET)
    for i in range(2):
        env.add_host(f"ut-mpp{i}", segments=["ut-mpp"])
    env.topology.connect(env.topology.hosts["ut-core"], env.topology.segments["ut-mpp"])

    env.add_rc_servers([f"{site}-core" for site in SITES])
    for name in env.topology.hosts:
        env.boot_daemon(name)
    for site in SITES:
        env.add_file_server(f"{site}-w0")
        env.add_rm(f"{site}-core", port=3600)

    @env.program("unit-of-work")
    def unit_of_work(ctx, n=3):
        for _ in range(n):
            yield ctx.compute(0.05)
        yield ctx.publish({"work": "done"})
        return "done"

    @env.program("group-listener")
    def group_listener(ctx, count):
        yield ctx.join_group("testbed-news")
        got = 0
        while got < count:
            yield ctx.recv_group("testbed-news")
            got += 1
        return got

    @env.program("group-talker")
    def group_talker(ctx, count):
        yield ctx.join_group("testbed-news")
        yield ctx.sleep(3.0)
        for i in range(count):
            yield ctx.send_group("testbed-news", {"bulletin": i})
            yield ctx.sleep(1.0)
        return count

    env.settle(3.0)
    # Worker nodes churn; cores and file-server hosts stay up (they are
    # the replicated infrastructure whose availability we measure).
    churners = [f"{site}-w{i}" for site in SITES for i in (1, 2)]
    env.failures.churn_hosts(churners, mtbf=60.0, mttr=10.0, stop_at=200.0)
    return env


def test_mixed_workload_high_availability(testbed):
    env = testbed
    stats = {"ok": 0, "fail": 0}
    rmc = RmClient(env.topology.hosts["reading-w0"], env.rc_client("reading-w0"))
    rc = env.rc_client("ut-w0")
    fc = env.file_client("asc-w0")

    def seed_file():
        yield fc.write("testbed/config.dat", b"shared-config", 4_000)

    env.run(until=env.sim.process(seed_file()))

    def workload():
        for round_no in range(40):
            yield env.sim.timeout(2.0)
            try:
                yield rmc.request(TaskSpec(program="unit-of-work"), timeout=5.0)
                yield rc.lookup("snipe://ut-core/")
                yield fc.read("testbed/config.dat")
                stats["ok"] += 1
            except Exception:
                stats["fail"] += 1

    p = env.sim.process(workload())
    env.run(until=p)
    total = stats["ok"] + stats["fail"]
    assert total == 40
    # "Almost perfect level of availability" — the infrastructure is
    # replicated, so worker churn barely shows.
    assert stats["ok"] / total >= 0.95


def test_group_communication_across_sites(testbed):
    env = testbed
    listeners = [
        env.spawn(TaskSpec(program="group-listener", params={"count": 3}),
                  on=f"{site}-w0")
        for site in SITES
    ]
    env.settle(1.5)
    talker = env.spawn(TaskSpec(program="group-talker", params={"count": 3}),
                       on="ut-core")
    env.run(until=env.sim.now + 60.0)
    assert talker.state == TaskState.EXITED
    for listener in listeners:
        assert listener.state == TaskState.EXITED
        assert listener.exit_value == 3


def test_cross_mpp_mpi_connect_on_testbed(testbed):
    """The paper's 'across MPP inter-MPI application system' between the
    UT and ASC machines, running over the live (churning) testbed."""
    env = testbed
    sim = env.sim
    bridges = {}
    exchanged = []

    def ut_side(mpi):
        bridge = bridges["ut"]
        if mpi.rank == 0:
            yield bridge.register()
            remote = yield bridge.connect("asc")
        total = yield mpi.allreduce(mpi.rank + 1, lambda a, b: a + b)
        if mpi.rank == 0:
            yield bridge.send(0, remote, 0, {"ut-sum": total}, tag=9, size=50_000)
            msg = yield bridge.recv(0, tag=9)
            exchanged.append(("ut", msg.payload))
        return total

    def asc_side(mpi):
        bridge = bridges["asc"]
        if mpi.rank == 0:
            yield bridge.register()
            remote = yield bridge.connect("ut")
        total = yield mpi.allreduce((mpi.rank + 1) * 10, lambda a, b: a + b)
        if mpi.rank == 0:
            msg = yield bridge.recv(0, tag=9)
            exchanged.append(("asc", msg.payload))
            yield bridge.send(0, remote, 0, {"asc-sum": total}, tag=9, size=50_000)
        return total

    ut_hosts = [env.topology.hosts[f"ut-mpp{i}"] for i in range(2)]
    asc_hosts = [env.topology.hosts[f"asc-mpp{i}"] for i in range(2)]
    ut_job = MpiJob(sim, ut_hosts, ut_side, name="ut")
    asc_job = MpiJob(sim, asc_hosts, asc_side, name="asc")
    bridges["ut"] = MpiConnectBridge(ut_job, env.rc_replicas, "ut")
    bridges["asc"] = MpiConnectBridge(asc_job, env.rc_replicas, "asc")
    sim.run(until=sim.all_of(ut_job.procs + asc_job.procs))
    assert ("asc", {"ut-sum": 3}) in exchanged
    assert ("ut", {"asc-sum": 30}) in exchanged
