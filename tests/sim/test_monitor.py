"""Unit tests for the instrumentation classes."""

import pytest

from repro.sim import Counter, Probe, Simulator, TimeSeries, TraceMonitor, defuse


def test_counter():
    c = Counter("x")
    c.incr()
    c.incr(5)
    assert c.value == 6


def test_timeseries_stats():
    ts = TimeSeries("bytes")
    for t, v in [(0.0, 10.0), (1.0, 20.0), (2.0, 30.0)]:
        ts.record(t, v)
    assert ts.total() == 60.0
    assert ts.mean() == 20.0
    assert ts.max() == 30.0
    assert ts.min() == 10.0
    assert ts.rate() == pytest.approx(30.0)  # 60 over 2s
    assert len(ts) == 3


def test_timeseries_empty_and_single():
    ts = TimeSeries("x")
    assert ts.mean() == 0.0 and ts.rate() == 0.0
    ts.record(5.0, 1.0)
    assert ts.rate() == 0.0  # a single sample has no span


def test_timeseries_rate_identical_timestamps():
    """A burst recorded at one instant must not report a 0.0 rate: the
    span falls back to RATE_EPSILON, so the rate is huge but finite."""
    ts = TimeSeries("burst")
    ts.record(2.0, 10.0)
    ts.record(2.0, 30.0)
    assert ts.rate() == pytest.approx(40.0 / TimeSeries.RATE_EPSILON)
    # A real span still divides normally.
    ts.record(4.0, 40.0)
    assert ts.rate() == pytest.approx(80.0 / 2.0)


def test_probe_welford():
    p = Probe("latency")
    for v in [2.0, 4.0, 6.0]:
        p.observe(v)
    assert p.mean == pytest.approx(4.0)
    assert p.variance == pytest.approx(4.0)
    assert (p.min, p.max) == (2.0, 6.0)
    empty = Probe("e")
    assert empty.mean == 0.0 and empty.variance == 0.0


def test_trace_monitor_registry_and_snapshot():
    sim = Simulator()
    mon = TraceMonitor(sim, trace=True)
    mon.counter("ops").incr(3)
    mon.probe("rtt").observe(1.5)
    mon.timeseries("tx").record(0.0, 7.0)
    # Same name returns the same object.
    assert mon.counter("ops") is mon.counter("ops")
    snap = mon.snapshot()
    assert snap["counter.ops"] == 3.0
    assert snap["probe.rtt.mean"] == 1.5
    mon.trace("event", {"x": 1})
    assert list(mon.trace_log) == [(0.0, "event", {"x": 1})]


def test_trace_disabled_records_nothing():
    mon = TraceMonitor(None, trace=False)
    mon.trace("ignored")
    assert list(mon.trace_log) == []


def test_trace_log_ring_buffer_eviction():
    mon = TraceMonitor(None, trace=True, trace_capacity=3)
    for i in range(5):
        mon.trace("e", {"i": i})
    assert [data["i"] for _, _, data in mon.trace_log] == [2, 3, 4]
    assert mon.trace_dropped == 2


def test_trace_log_burst_drop_counter_accuracy():
    """A burst far past capacity: the drop counter equals the exact
    overflow, and the survivors are exactly the newest records in order."""
    mon = TraceMonitor(None, trace=True, trace_capacity=100)
    for i in range(10_000):
        mon.trace("burst", i)
    assert len(mon.trace_log) == 100
    assert mon.trace_dropped == 9_900
    assert [d for _, _, d in mon.trace_log] == list(range(9_900, 10_000))


def test_trace_log_eviction_is_oldest_first_across_bursts():
    """Eviction order and the drop counter hold across interleaved
    bursts — drops accumulate, never reset."""
    mon = TraceMonitor(None, trace=True, trace_capacity=4)
    for i in range(6):  # drops 0, 1
        mon.trace("a", i)
    assert mon.trace_dropped == 2
    for i in range(3):  # drops a2, a3, a4
        mon.trace("b", i)
    assert mon.trace_dropped == 5
    assert [(k, d) for _, k, d in mon.trace_log] == [
        ("a", 5), ("b", 0), ("b", 1), ("b", 2)
    ]


def test_trace_log_nonpositive_capacity_is_unbounded():
    mon = TraceMonitor(None, trace=True, trace_capacity=0)
    for i in range(500):
        mon.trace("e", i)
    assert len(mon.trace_log) == 500 and mon.trace_dropped == 0


def test_trace_monitor_span_and_histogram_delegate():
    sim = Simulator()
    mon = TraceMonitor(sim)
    with mon.span("phase", stage="x"):
        pass
    mon.histogram("queue.wait").observe(0.5)
    snap = mon.snapshot()
    assert snap["span.phase.count"] == 1.0
    assert snap["queue.wait.p50"] == 0.5


def test_defuse_suppresses_background_crash():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1)
        raise RuntimeError("expected failure")

    defuse(sim.process(bad(sim)))
    sim.run()  # no raise: the failure was observed by the defuse callback


def test_condition_failure_propagates():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1)
        raise ValueError("child died")

    def waiter(sim, p):
        try:
            yield sim.all_of([p, sim.timeout(5)])
        except ValueError as exc:
            return str(exc)

    p = sim.process(bad(sim))
    w = sim.process(waiter(sim, p))
    assert sim.run(until=w) == "child died"
