"""Kernel equivalence: the optimised kernel is observably identical to
the legacy kernel.

The timer wheel, the direct rx dispatch, the timestamp-clocked NIC and
the lean event classes are *performance* changes; ``SNIPE_LEGACY_KERNEL=1``
(or ``Simulator(legacy_timers=True)``) keeps the original
every-timer-on-the-heap scheduling. This suite is the lock on the
refactor: for the demo scenario, the model checker, and full chaos runs,
a seed must produce the *same simulation* under both kernels — same
virtual end time, same metrics, same probe stream with the same
timestamps, same invariant verdicts. Anything the optimised kernel does
differently from the reference kernel is a bug here, not a speedup.

Mechanically: ``schedule_timer`` assigns the heap sequence id at call
time in both modes and the wheel's settle pass flushes every bucket
whose slot precedes the heap head, so wheel scheduling pops events in
bit-identical order to direct heap pushes. These tests pin that
equivalence end to end rather than per mechanism.
"""

from __future__ import annotations

import json

import pytest

from repro.check.oracles import ProbeBus
from repro.sim.kernel import Simulator

#: Seeds the full-run fingerprint comparison sweeps. The ISSUE asks for
#: at least ten distinct seeds across the suite; the demo sweep alone
#: covers ten, and check/chaos add more on top.
DEMO_SEEDS = list(range(1, 11))
CHECK_SEEDS = [1, 2, 3]
CHAOS_SEEDS = [1, 2]


def _freeze(obj):
    """Deterministic, comparison-friendly form of a report/probe value.

    Atoms pass through; containers recurse; anything else must have an
    address-free repr (asserted) so two separate runs can be compared.
    """
    if isinstance(obj, (str, int, float, bool, type(None))):
        return obj
    if isinstance(obj, dict):
        return {str(k): _freeze(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_freeze(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(repr(v) for v in obj)
    r = repr(obj)
    assert "0x" not in r, f"address-dependent repr in fingerprint: {r}"
    return r


def _fingerprint(obj) -> str:
    return json.dumps(_freeze(obj), sort_keys=True)


@pytest.fixture
def probe_recorder(monkeypatch):
    """Record every probe emission as (virtual time, kind, fields).

    Wraps ``ProbeBus.emit`` (the runners build their own buses, so a
    plain ``subscribe`` can't see them) and tracks the most recently
    created Simulator to timestamp each emission in virtual time.
    """
    records = []
    sims = []

    orig_sim_init = Simulator.__init__

    def tracking_init(self, *args, **kwargs):
        orig_sim_init(self, *args, **kwargs)
        sims.append(self)

    orig_emit = ProbeBus.emit

    def recording_emit(self, kind, **fields):
        now = sims[-1].now if sims else 0.0
        records.append((now, kind, _freeze(fields)))
        orig_emit(self, kind, **fields)

    monkeypatch.setattr(Simulator, "__init__", tracking_init)
    monkeypatch.setattr(ProbeBus, "emit", recording_emit)
    return records


def _with_kernel(monkeypatch, legacy: bool, fn):
    if legacy:
        monkeypatch.setenv("SNIPE_LEGACY_KERNEL", "1")
    else:
        monkeypatch.delenv("SNIPE_LEGACY_KERNEL", raising=False)
    return fn()


# ---------------------------------------------------------------------------
# Demo scenario: transports on a lossy LAN
# ---------------------------------------------------------------------------

def _demo_fingerprint(seed: int) -> str:
    from repro.obs.cli import demo_scenario

    sim = demo_scenario(seed=seed)
    return _fingerprint({
        "now": sim.now,
        "eid": sim._eid,
        "metrics": sim.obs.metrics.snapshot(),
    })


@pytest.mark.parametrize("seed", DEMO_SEEDS)
def test_demo_scenario_identical_across_kernels(monkeypatch, seed):
    """Same seed, both kernels: same end time, event count, and metrics."""
    fast = _with_kernel(monkeypatch, False, lambda: _demo_fingerprint(seed))
    legacy = _with_kernel(monkeypatch, True, lambda: _demo_fingerprint(seed))
    assert fast == legacy


# ---------------------------------------------------------------------------
# Model checker: oracle verdicts and probe streams
# ---------------------------------------------------------------------------

def _check_fingerprint(scenario: str, seed: int, records) -> str:
    from repro.check.explore import run_check

    kwargs = {"duration": 30.0}
    if scenario != "bulk":
        kwargs["total"] = 8
    report = run_check(scenario=scenario, seed=seed, **kwargs)
    return _fingerprint({"report": report, "probes": list(records)})


@pytest.mark.parametrize("scenario,seed", [
    ("faults", CHECK_SEEDS[0]),
    ("faults", CHECK_SEEDS[1]),
    ("faults", CHECK_SEEDS[2]),
    ("overload", 4),
    ("bulk", 5),
])
def test_run_check_identical_across_kernels(monkeypatch, probe_recorder,
                                            scenario, seed):
    """Model-checking runs agree on the report *and* every probe event,
    including the virtual timestamps the probes fired at."""
    fast = _with_kernel(
        monkeypatch, False,
        lambda: _check_fingerprint(scenario, seed, probe_recorder),
    )
    probe_recorder.clear()
    legacy = _with_kernel(
        monkeypatch, True,
        lambda: _check_fingerprint(scenario, seed, probe_recorder),
    )
    assert fast == legacy


# ---------------------------------------------------------------------------
# Chaos runs: full fault-injection campaign
# ---------------------------------------------------------------------------

def _chaos_fingerprint(seed: int, records) -> str:
    from repro.robust.chaos import run_chaos

    report = run_chaos(seed, n_workers=3, total=24, duration=50.0)
    return _fingerprint({"report": report, "probes": list(records)})


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_run_chaos_identical_across_kernels(monkeypatch, probe_recorder, seed):
    """A chaos campaign — churn, partitions, recoveries — replays
    identically under both kernels: same fault log, same recoveries,
    same invariant verdicts, same probe stream."""
    fast = _with_kernel(
        monkeypatch, False, lambda: _chaos_fingerprint(seed, probe_recorder)
    )
    probe_recorder.clear()
    legacy = _with_kernel(
        monkeypatch, True, lambda: _chaos_fingerprint(seed, probe_recorder)
    )
    assert fast == legacy


# ---------------------------------------------------------------------------
# Sanity: the two modes really are different code paths
# ---------------------------------------------------------------------------

def test_legacy_flag_actually_switches_mode(monkeypatch):
    monkeypatch.delenv("SNIPE_LEGACY_KERNEL", raising=False)
    assert Simulator(seed=1)._legacy_timers is False
    monkeypatch.setenv("SNIPE_LEGACY_KERNEL", "1")
    assert Simulator(seed=1)._legacy_timers is True
    assert Simulator(seed=1, legacy_timers=False)._legacy_timers is False


def test_wheel_mode_uses_the_wheel(monkeypatch):
    """In wheel mode a long timer lands in a bucket, not on the heap;
    in legacy mode it goes straight to the heap."""
    monkeypatch.delenv("SNIPE_LEGACY_KERNEL", raising=False)
    sim = Simulator(seed=1)
    sim.schedule_timer(1.0, lambda: None)
    assert any(sim._wheel[lvl] for lvl in range(len(sim._wheel)))
    legacy = Simulator(seed=1, legacy_timers=True)
    baseline = len(legacy._queue)
    legacy.schedule_timer(1.0, lambda: None)
    assert len(legacy._queue) == baseline + 1
