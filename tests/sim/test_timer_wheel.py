"""Property-based tests for the hierarchical timer wheel.

The wheel (``Simulator.schedule_timer`` with ``legacy_timers=False``) is
an optimisation over pushing every timer on the event heap; these tests
pin the contract that makes it safe:

* a timer fires at *exactly* its deadline — never early, never twice;
* fire order is nondecreasing in time;
* a timer cancelled before its deadline never fires;
* an arbitrary schedule/cancel/wait program produces the *identical*
  fire log under the wheel and under the naive all-on-the-heap
  reference (``legacy_timers=True``).

Delays are drawn from three bands chosen to straddle the wheel's level
spans (granularity 2 ms, fanout 32: level 0 covers ~64 ms, level 1
~2 s, level 2 ~65 s), so slot rounding, coarse-level cascade, and the
sub-granularity direct-to-heap path all get exercised.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.sim.kernel import (
    WHEEL_FANOUT,
    WHEEL_GRANULARITY,
    WHEEL_LEVELS,
)

#: Delay bands straddling the wheel level spans.
_DELAYS = st.one_of(
    st.floats(min_value=0.0, max_value=4 * WHEEL_GRANULARITY),
    st.floats(min_value=0.0, max_value=WHEEL_GRANULARITY * WHEEL_FANOUT * 2),
    st.floats(min_value=0.0, max_value=100.0),
)

#: One program step: schedule a timer, cancel an earlier one, or let
#: virtual time advance.
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("sched"), _DELAYS),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=10_000)),
        st.tuples(st.just("wait"), st.floats(min_value=0.0, max_value=50.0)),
    ),
    min_size=1,
    max_size=60,
)


def _execute(sim: Simulator, ops):
    """Run one schedule/cancel/wait program; return its observation log.

    Returns (fires, deadlines, cancels): ``fires`` is the ordered
    ``(timer_index, fire_time)`` log, ``deadlines[i]`` the i-th timer's
    deadline, and ``cancels`` records ``(index, cancel_time,
    had_already_fired)`` for every cancel call.
    """
    fires = []
    deadlines = []
    cancels = []
    handles = []

    def driver():
        for kind, arg in ops:
            if kind == "sched":
                i = len(handles)
                deadlines.append(sim.now + arg)
                handles.append(
                    sim.schedule_timer(
                        arg, lambda i=i: fires.append((i, sim.now)), owner="prop"
                    )
                )
            elif kind == "cancel":
                if handles:
                    h = handles[arg % len(handles)]
                    cancels.append((arg % len(handles), sim.now, h.fired))
                    h.cancel()
            else:
                yield sim.timeout(arg)
        yield sim.timeout(0)

    sim.process(driver(), name="driver")
    sim.run()
    return fires, deadlines, cancels


@settings(max_examples=150)
@given(_OPS)
def test_wheel_matches_naive_heap_reference(ops):
    """Differential: the wheel and the all-on-the-heap reference produce
    bit-identical fire logs and end at the same virtual time."""
    wheel = Simulator(seed=1, legacy_timers=False)
    w_fires, _, _ = _execute(wheel, ops)
    heap = Simulator(seed=1, legacy_timers=True)
    h_fires, _, _ = _execute(heap, ops)
    assert w_fires == h_fires
    assert wheel.now == heap.now


@settings(max_examples=150)
@given(_OPS)
def test_timers_fire_exactly_at_deadline_and_at_most_once(ops):
    sim = Simulator(seed=1, legacy_timers=False)
    fires, deadlines, _ = _execute(sim, ops)
    seen = set()
    for i, t in fires:
        assert t == deadlines[i], (
            f"timer {i} fired at {t!r}, deadline {deadlines[i]!r}"
        )
        assert i not in seen, f"timer {i} fired twice"
        seen.add(i)


@settings(max_examples=150)
@given(_OPS)
def test_fire_times_nondecreasing_and_run_drains_every_live_timer(ops):
    sim = Simulator(seed=1, legacy_timers=False)
    fires, deadlines, cancels = _execute(sim, ops)
    times = [t for _, t in fires]
    assert times == sorted(times)
    # Every timer either fired exactly once or was cancelled first;
    # run() must drain wheel buckets even after the heap goes empty.
    fired = {i for i, _ in fires}
    cancelled = {i for i, _, already_fired in cancels if not already_fired}
    for i, deadline in enumerate(deadlines):
        if i in fired:
            continue
        assert i in cancelled, f"live timer {i} (deadline {deadline}) never fired"


@settings(max_examples=150)
@given(_OPS)
def test_cancelled_before_deadline_never_fires(ops):
    sim = Simulator(seed=1, legacy_timers=False)
    fires, deadlines, cancels = _execute(sim, ops)
    fired = {i for i, _ in fires}
    for i, cancel_time, already_fired in cancels:
        if not already_fired and cancel_time < deadlines[i]:
            assert i not in fired, (
                f"timer {i} cancelled at {cancel_time} (deadline "
                f"{deadlines[i]}) fired anyway"
            )


def test_wheel_levels_cover_expected_spans():
    """Sanity-pin the constants the delay bands above are tuned to."""
    assert WHEEL_LEVELS >= 3
    # The coarsest level must cover every lease/retry horizon in the
    # tree (tens of seconds).
    assert WHEEL_GRANULARITY * WHEEL_FANOUT ** (WHEEL_LEVELS - 1) > 60.0
