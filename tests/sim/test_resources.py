"""Unit tests for Store, PriorityStore, Resource, and Gate."""

import pytest

from repro.sim import Gate, PriorityStore, Resource, SimulationError, Simulator, Store


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer(sim, store):
        for i in range(5):
            yield store.put(i)
            yield sim.timeout(1)

    def consumer(sim, store):
        for _ in range(5):
            got.append((yield store.get()))

    sim.process(producer(sim, store))
    sim.process(consumer(sim, store))
    sim.run()
    assert got == [0, 1, 2, 3, 4]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    times = []

    def consumer(sim, store):
        v = yield store.get()
        times.append((sim.now, v))

    def producer(sim, store):
        yield sim.timeout(10)
        yield store.put("late")

    sim.process(consumer(sim, store))
    sim.process(producer(sim, store))
    sim.run()
    assert times == [(10.0, "late")]


def test_store_capacity_blocks_put():
    sim = Simulator()
    store = Store(sim, capacity=2)
    events = []

    def producer(sim, store):
        for i in range(4):
            yield store.put(i)
            events.append(("put", i, sim.now))

    def consumer(sim, store):
        yield sim.timeout(5)
        for _ in range(4):
            v = yield store.get()
            events.append(("get", v, sim.now))
            yield sim.timeout(1)

    sim.process(producer(sim, store))
    sim.process(consumer(sim, store))
    sim.run()
    # Puts 0 and 1 go through immediately; 2 and 3 wait for the consumer.
    put_times = {i: t for op, i, t in events if op == "put"}
    assert put_times[0] == 0 and put_times[1] == 0
    assert put_times[2] == 5.0
    assert put_times[3] == 6.0


def test_store_try_put_and_try_get():
    sim = Simulator()
    store = Store(sim, capacity=1)
    assert store.try_put("a") is True
    sim.run()
    assert store.try_put("b") is False
    ok, v = store.try_get()
    assert (ok, v) == (True, "a")
    ok, v = store.try_get()
    assert ok is False and v is None


def test_store_zero_capacity_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Store(sim, capacity=0)


def test_priority_store_orders_items():
    sim = Simulator()
    store = PriorityStore(sim)
    got = []

    def producer(sim, store):
        for item in [(3, "c"), (1, "a"), (2, "b")]:
            yield store.put(item)

    def consumer(sim, store):
        yield sim.timeout(1)
        for _ in range(3):
            got.append((yield store.get())[1])

    sim.process(producer(sim, store))
    sim.process(consumer(sim, store))
    sim.run()
    assert got == ["a", "b", "c"]


def test_resource_mutual_exclusion():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    timeline = []

    def worker(sim, res, tag):
        yield res.request()
        timeline.append((tag, "in", sim.now))
        yield sim.timeout(10)
        timeline.append((tag, "out", sim.now))
        res.release()

    sim.process(worker(sim, res, "a"))
    sim.process(worker(sim, res, "b"))
    sim.run()
    assert timeline == [
        ("a", "in", 0.0),
        ("a", "out", 10.0),
        ("b", "in", 10.0),
        ("b", "out", 20.0),
    ]


def test_resource_capacity_two_runs_concurrently():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    start_times = []

    def worker(sim, res):
        yield res.request()
        start_times.append(sim.now)
        yield sim.timeout(5)
        res.release()

    for _ in range(3):
        sim.process(worker(sim, res))
    sim.run()
    assert start_times == [0.0, 0.0, 5.0]


def test_resource_release_without_request_raises():
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(SimulationError):
        res.release()


def test_gate_broadcast_wakes_all():
    sim = Simulator()
    gate = Gate(sim)
    woke = []

    def waiter(sim, gate, tag):
        yield gate.wait()
        woke.append((tag, sim.now))

    def opener(sim, gate):
        yield sim.timeout(7)
        gate.open()

    for tag in "ab":
        sim.process(waiter(sim, gate, tag))
    sim.process(opener(sim, gate))
    sim.run()
    assert woke == [("a", 7.0), ("b", 7.0)]


def test_gate_open_then_wait_passes_immediately():
    sim = Simulator()
    gate = Gate(sim)
    gate.open()
    done = []

    def waiter(sim, gate):
        yield gate.wait()
        done.append(sim.now)

    sim.process(waiter(sim, gate))
    sim.run()
    assert done == [0.0]


def test_gate_pulse_does_not_latch():
    sim = Simulator()
    gate = Gate(sim)
    woke = []

    def early(sim, gate):
        yield gate.wait()
        woke.append("early")

    def pulser(sim, gate):
        yield sim.timeout(1)
        gate.pulse()

    def late(sim, gate):
        yield sim.timeout(2)
        yield gate.wait()
        woke.append("late")  # pragma: no cover - must not happen

    sim.process(early(sim, gate))
    sim.process(pulser(sim, gate))
    sim.process(late(sim, gate))
    sim.run(until=100)
    assert woke == ["early"]
