"""Property-based tests for kernel invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator, Store
from repro.sim.rng import RngRegistry, _derive_seed


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
def test_events_always_processed_in_nondecreasing_time(delays):
    """Whatever timeouts are scheduled, observed times never go backwards."""
    sim = Simulator()
    observed = []

    def waiter(sim, d):
        yield sim.timeout(d)
        observed.append(sim.now)

    for d in delays:
        sim.process(waiter(sim, d))
    sim.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)


@given(st.lists(st.integers(), max_size=40))
def test_store_preserves_order_and_content(items):
    """A Store is a faithful FIFO: output equals input exactly."""
    sim = Simulator()
    store = Store(sim)
    out = []

    def producer(sim, store):
        for item in items:
            yield store.put(item)

    def consumer(sim, store):
        for _ in range(len(items)):
            out.append((yield store.get()))

    sim.process(producer(sim, store))
    sim.process(consumer(sim, store))
    sim.run()
    assert out == items


@given(st.lists(st.integers(), max_size=30), st.integers(min_value=1, max_value=5))
def test_bounded_store_never_exceeds_capacity(items, cap):
    sim = Simulator()
    store = Store(sim, capacity=cap)
    max_seen = 0

    def producer(sim, store):
        for item in items:
            yield store.put(item)

    def consumer(sim, store):
        nonlocal max_seen
        for _ in range(len(items)):
            max_seen = max(max_seen, len(store))
            yield store.get()
            yield sim.timeout(1)

    sim.process(producer(sim, store))
    sim.process(consumer(sim, store))
    sim.run()
    assert max_seen <= cap


@given(st.integers(), st.text(max_size=20))
def test_rng_streams_deterministic(seed, name):
    a = RngRegistry(seed).stream(name).random()
    b = RngRegistry(seed).stream(name).random()
    assert a == b


@given(st.integers())
def test_rng_streams_independent(seed):
    """Draw order in one stream must not affect another."""
    r1 = RngRegistry(seed)
    r2 = RngRegistry(seed)
    # In r1, consume stream "x" heavily before touching "y".
    for _ in range(100):
        r1.stream("x").random()
    y1 = r1.stream("y").random()
    y2 = r2.stream("y").random()
    assert y1 == y2


@given(st.integers(), st.text(max_size=10), st.text(max_size=10))
def test_distinct_stream_names_distinct_seeds(seed, a, b):
    if a == b:
        return
    assert _derive_seed(seed, a) != _derive_seed(seed, b)


@settings(max_examples=25)
@given(st.integers(min_value=0, max_value=2**32))
def test_whole_simulation_is_seed_deterministic(seed):
    """Two simulators with the same seed produce identical event traces."""

    def trace_run(seed):
        sim = Simulator(seed=seed)
        rng = sim.rng.stream("workload")
        log = []

        def worker(sim, i):
            for _ in range(3):
                yield sim.timeout(rng.expovariate(1.0))
                log.append((round(sim.now, 12), i))

        for i in range(5):
            sim.process(worker(sim, i))
        sim.run()
        return log

    assert trace_run(seed) == trace_run(seed)
