"""Unit tests for the simulation kernel: clock, queue, run modes."""

import pytest

from repro.sim import Interrupt, SimulationError, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.queue_empty


def test_timeout_advances_clock():
    sim = Simulator()
    seen = []

    def proc(sim):
        yield sim.timeout(3.5)
        seen.append(sim.now)
        yield sim.timeout(1.5)
        seen.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert seen == [3.5, 5.0]


def test_timeout_value_passthrough():
    sim = Simulator()
    got = []

    def proc(sim):
        v = yield sim.timeout(1, value="hello")
        got.append(v)

    sim.process(proc(sim))
    sim.run()
    assert got == ["hello"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []

    def waiter(sim, delay, tag):
        yield sim.timeout(delay)
        order.append(tag)

    for delay, tag in [(5, "c"), (1, "a"), (3, "b")]:
        sim.process(waiter(sim, delay, tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo_order():
    """Equal-time events run in scheduling order (determinism)."""
    sim = Simulator()
    order = []

    def waiter(sim, tag):
        yield sim.timeout(2)
        order.append(tag)

    for tag in "abcde":
        sim.process(waiter(sim, tag))
    sim.run()
    assert order == list("abcde")


def test_run_until_time_stops_clock_exactly():
    sim = Simulator()

    def ticker(sim):
        while True:
            yield sim.timeout(1)

    sim.process(ticker(sim))
    sim.run(until=10.5)
    assert sim.now == 10.5


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(2)
        return 42

    p = sim.process(proc(sim))
    assert sim.run(until=p) == 42
    assert sim.now == 2


def test_run_until_past_time_rejected():
    sim = Simulator()
    sim.run(until=5)
    with pytest.raises(SimulationError):
        sim.run(until=1)


def test_run_until_never_fired_event_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        sim.run(until=ev)


def test_manual_event_succeed():
    sim = Simulator()
    ev = sim.event()
    got = []

    def proc(sim, ev):
        got.append((yield ev))

    def firer(sim, ev):
        yield sim.timeout(4)
        ev.succeed("payload")

    sim.process(proc(sim, ev))
    sim.process(firer(sim, ev))
    sim.run()
    assert got == ["payload"]


def test_event_fail_propagates_into_process():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def proc(sim, ev):
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    def firer(sim, ev):
        yield sim.timeout(1)
        ev.fail(ValueError("boom"))

    sim.process(proc(sim, ev))
    sim.process(firer(sim, ev))
    sim.run()
    assert caught == ["boom"]


def test_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(ValueError())


def test_uncaught_process_exception_aborts_run():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1)
        raise RuntimeError("crashed")

    sim.process(bad(sim))
    with pytest.raises(RuntimeError, match="crashed"):
        sim.run()


def test_non_strict_mode_tolerates_crash_if_awaited():
    sim = Simulator(strict_process_errors=False)

    def bad(sim):
        yield sim.timeout(1)
        raise RuntimeError("quiet")

    def watcher(sim, p):
        try:
            yield p
        except RuntimeError:
            return "saw it"

    p = sim.process(bad(sim))
    w = sim.process(watcher(sim, p))
    assert sim.run(until=w) == "saw it"


def test_yield_non_event_is_error():
    sim = Simulator()

    def bad(sim):
        yield 42

    sim.process(bad(sim))
    with pytest.raises(SimulationError):
        sim.run()


def test_process_return_value_waitable():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(2)
        return "result"

    def parent(sim):
        v = yield sim.process(child(sim))
        return v + "!"

    p = sim.process(parent(sim))
    assert sim.run(until=p) == "result!"


def test_step_on_empty_queue_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_peek():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(7)
    assert sim.peek() == 7


def test_interrupt_wakes_process_early():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100)
            log.append("slept")
        except Interrupt as i:
            log.append(("interrupted", i.cause, sim.now))

    def interrupter(sim, p):
        yield sim.timeout(3)
        p.interrupt("wake up")

    p = sim.process(sleeper(sim))
    sim.process(interrupter(sim, p))
    sim.run()
    assert log == [("interrupted", "wake up", 3.0)]


def test_interrupt_dead_process_is_error():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1)

    def late(sim, p):
        yield sim.timeout(5)
        p.interrupt()

    p = sim.process(quick(sim))
    sim.process(late(sim, p))
    with pytest.raises(SimulationError):
        sim.run()


def test_any_of_and_all_of():
    sim = Simulator()
    results = []

    def proc(sim):
        t1 = sim.timeout(1, value="one")
        t2 = sim.timeout(2, value="two")
        got = yield sim.any_of([t1, t2])
        results.append(("any", sorted(got.values()), sim.now))
        t3 = sim.timeout(3, value="three")
        t4 = sim.timeout(1, value="four")
        got = yield sim.all_of([t3, t4])
        results.append(("all", sorted(got.values()), sim.now))

    sim.process(proc(sim))
    sim.run()
    assert results[0] == ("any", ["one"], 1.0)
    assert results[1] == ("all", ["four", "three"], 4.0)


def test_all_of_empty_fires_immediately():
    sim = Simulator()

    def proc(sim):
        got = yield sim.all_of([])
        return got

    p = sim.process(proc(sim))
    assert sim.run(until=p) == {}


def test_event_callback_after_processed_runs_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("v")
    sim.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == ["v"]
