"""Unit tests for spans, trace events, and the bounded trace ring."""

import pytest

from repro.obs import MetricsRegistry, Observability, Tracer, load_jsonl


def make_tracer(**kw):
    t = [0.0]
    tracer = Tracer(clock=lambda: t[0], enabled=True, **kw)
    return tracer, t


def test_span_nesting_records_parent():
    tracer, t = make_tracer()
    with tracer.span("outer", region="a") as outer:
        t[0] = 1.0
        with tracer.span("inner") as inner:
            t[0] = 2.0
    assert inner.parent_id == outer.span_id
    assert inner.trace_id == outer.trace_id  # inherited, not fresh
    records = tracer.records()
    assert [r["name"] for r in records] == ["inner", "outer"]  # close order
    inner_rec, outer_rec = records
    assert inner_rec["parent"] == outer.span_id
    assert outer_rec["t"] == 0.0 and outer_rec["end"] == 2.0
    assert outer_rec["outcome"] == "ok"
    assert outer_rec["region"] == "a"


def test_span_error_outcome():
    tracer, _ = make_tracer()
    try:
        with tracer.span("op"):
            raise ValueError("boom")
    except ValueError:
        pass
    (rec,) = tracer.records()
    assert rec["outcome"] == "error:ValueError"


def test_span_manual_finish_is_idempotent():
    tracer, t = make_tracer()
    span = tracer.span("sync")
    t[0] = 3.0
    span.finish("ok")
    span.finish("error:late")  # ignored
    (rec,) = tracer.records()
    assert rec["outcome"] == "ok" and rec["end"] == 3.0


def test_span_durations_feed_metrics_even_when_disabled():
    metrics = MetricsRegistry()
    t = [0.0]
    tracer = Tracer(clock=lambda: t[0], enabled=False, metrics=metrics)
    span = tracer.span("rcds.sync")
    t[0] = 0.25
    span.finish()
    assert tracer.records() == []  # no trace record while disabled
    h = metrics.histogram("span.rcds.sync")
    assert h.n == 1 and h.max == 0.25


def test_event_noop_when_disabled():
    tracer = Tracer(enabled=False)
    tracer.event("x", foo=1)
    assert len(tracer) == 0 and tracer.dropped == 0


def test_ring_buffer_evicts_oldest_and_counts_drops():
    tracer, _ = make_tracer(capacity=3)
    for i in range(5):
        tracer.event("e", i=i)
    assert len(tracer) == 3
    assert tracer.dropped == 2
    assert [r["i"] for r in tracer.records()] == [2, 3, 4]


def test_events_filter_by_trace_and_kind():
    tracer, _ = make_tracer()
    tid = tracer.new_trace_id()
    other = tracer.new_trace_id()
    tracer.event("send", trace_id=tid)
    tracer.event("send", trace_id=other)
    tracer.event("deliver", trace_id=tid)
    assert len(tracer.events(trace_id=tid)) == 2
    assert [r["kind"] for r in tracer.events(trace_id=tid, kind="deliver")] == ["deliver"]


def test_jsonl_round_trip(tmp_path):
    tracer, t = make_tracer()
    tracer.event("a", x=1)
    t[0] = 1.5
    tracer.event("b", y="z")
    path = tmp_path / "trace.jsonl"
    assert tracer.dump_jsonl(str(path)) == 2
    back = load_jsonl(path.read_text().splitlines())
    assert back == tracer.records()
    assert load_jsonl(tracer.to_jsonl().splitlines()) == tracer.records()


def test_sample_rate_keeps_deterministic_one_in_n():
    tracer, _ = make_tracer()
    tracer.sample_rate = 0.25
    for i in range(12):
        tracer.event("e", i=i)
    # Counter-based: every 4th record survives, same ones every run.
    assert [r["i"] for r in tracer.records()] == [3, 7, 11]
    assert tracer.sampled_out == 9
    assert tracer.dropped == 0  # thinned, not evicted


def test_sample_rate_roundtrip_and_validation():
    tracer, _ = make_tracer()
    assert tracer.sample_rate == 1.0  # default keeps everything
    tracer.sample_rate = 0.01
    assert tracer.sample_rate == pytest.approx(0.01)
    tracer.sample_rate = 2.0  # clamped to keep-everything
    assert tracer.sample_rate == 1.0
    for bad in (0.0, -0.5):
        with pytest.raises(ValueError):
            tracer.sample_rate = bad


def test_sampling_applies_to_spans_too():
    tracer, _ = make_tracer()
    tracer.sample_rate = 0.5
    for _ in range(4):
        with tracer.span("op"):
            pass
    assert len(tracer) == 2
    assert tracer.sampled_out == 2


def test_sampling_thins_records_but_histograms_stay_exact():
    metrics = MetricsRegistry()
    t = [0.0]
    tracer = Tracer(clock=lambda: t[0], enabled=True, metrics=metrics)
    tracer.sample_rate = 0.1
    for _ in range(20):
        span = tracer.span("rcds.sync")
        t[0] += 0.1
        span.finish()
    assert len(tracer) == 2  # 1-in-10 of 20 span records
    assert metrics.histogram("span.rcds.sync").n == 20  # every duration counted


def test_maybe_trace_id_allocates_only_when_enabled():
    tracer = Tracer(enabled=False)
    assert tracer.maybe_trace_id() is None
    assert tracer.maybe_trace_id() is None
    tracer.enabled = True
    assert tracer.maybe_trace_id() == 1  # ids start fresh: none were burned
    assert tracer.maybe_trace_id() == 2


def test_observability_bundle_export():
    obs = Observability(clock=lambda: 1.0, trace=True, trace_capacity=10)
    obs.metrics.counter("x.ops").inc()
    obs.event("e")
    out = obs.export()
    assert out["counters"][0]["name"] == "x.ops"
    assert out["trace"] == {"records": 1, "dropped": 0, "sampled_out": 0,
                            "capacity": 10}
