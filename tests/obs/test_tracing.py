"""Unit tests for spans, trace events, and the bounded trace ring."""

from repro.obs import MetricsRegistry, Observability, Tracer, load_jsonl


def make_tracer(**kw):
    t = [0.0]
    tracer = Tracer(clock=lambda: t[0], enabled=True, **kw)
    return tracer, t


def test_span_nesting_records_parent():
    tracer, t = make_tracer()
    with tracer.span("outer", region="a") as outer:
        t[0] = 1.0
        with tracer.span("inner") as inner:
            t[0] = 2.0
    assert inner.parent_id == outer.span_id
    assert inner.trace_id == outer.trace_id  # inherited, not fresh
    records = tracer.records()
    assert [r["name"] for r in records] == ["inner", "outer"]  # close order
    inner_rec, outer_rec = records
    assert inner_rec["parent"] == outer.span_id
    assert outer_rec["t"] == 0.0 and outer_rec["end"] == 2.0
    assert outer_rec["outcome"] == "ok"
    assert outer_rec["region"] == "a"


def test_span_error_outcome():
    tracer, _ = make_tracer()
    try:
        with tracer.span("op"):
            raise ValueError("boom")
    except ValueError:
        pass
    (rec,) = tracer.records()
    assert rec["outcome"] == "error:ValueError"


def test_span_manual_finish_is_idempotent():
    tracer, t = make_tracer()
    span = tracer.span("sync")
    t[0] = 3.0
    span.finish("ok")
    span.finish("error:late")  # ignored
    (rec,) = tracer.records()
    assert rec["outcome"] == "ok" and rec["end"] == 3.0


def test_span_durations_feed_metrics_even_when_disabled():
    metrics = MetricsRegistry()
    t = [0.0]
    tracer = Tracer(clock=lambda: t[0], enabled=False, metrics=metrics)
    span = tracer.span("rcds.sync")
    t[0] = 0.25
    span.finish()
    assert tracer.records() == []  # no trace record while disabled
    h = metrics.histogram("span.rcds.sync")
    assert h.n == 1 and h.max == 0.25


def test_event_noop_when_disabled():
    tracer = Tracer(enabled=False)
    tracer.event("x", foo=1)
    assert len(tracer) == 0 and tracer.dropped == 0


def test_ring_buffer_evicts_oldest_and_counts_drops():
    tracer, _ = make_tracer(capacity=3)
    for i in range(5):
        tracer.event("e", i=i)
    assert len(tracer) == 3
    assert tracer.dropped == 2
    assert [r["i"] for r in tracer.records()] == [2, 3, 4]


def test_events_filter_by_trace_and_kind():
    tracer, _ = make_tracer()
    tid = tracer.new_trace_id()
    other = tracer.new_trace_id()
    tracer.event("send", trace_id=tid)
    tracer.event("send", trace_id=other)
    tracer.event("deliver", trace_id=tid)
    assert len(tracer.events(trace_id=tid)) == 2
    assert [r["kind"] for r in tracer.events(trace_id=tid, kind="deliver")] == ["deliver"]


def test_jsonl_round_trip(tmp_path):
    tracer, t = make_tracer()
    tracer.event("a", x=1)
    t[0] = 1.5
    tracer.event("b", y="z")
    path = tmp_path / "trace.jsonl"
    assert tracer.dump_jsonl(str(path)) == 2
    back = load_jsonl(path.read_text().splitlines())
    assert back == tracer.records()
    assert load_jsonl(tracer.to_jsonl().splitlines()) == tracer.records()


def test_observability_bundle_export():
    obs = Observability(clock=lambda: 1.0, trace=True, trace_capacity=10)
    obs.metrics.counter("x.ops").inc()
    obs.event("e")
    out = obs.export()
    assert out["counters"][0]["name"] == "x.ops"
    assert out["trace"] == {"records": 1, "dropped": 0, "capacity": 10}
