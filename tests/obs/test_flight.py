"""Unit tests for the black-box flight recorder."""

import json

from repro.obs.flight import FlightRecorder, dump_flight_records
from repro.sim import Simulator


def make_recorder(capacity=512):
    sim = Simulator(seed=1)
    return FlightRecorder(sim, capacity=capacity), sim


def test_ring_evicts_oldest_and_counts_drops_per_host():
    rec, _sim = make_recorder(capacity=3)
    for i in range(5):
        rec.on_probe("e", {"host": "h0", "i": i})
    rec.on_probe("e", {"host": "h1", "i": 99})
    assert len(rec) == 4  # 3 on h0's full ring + 1 on h1's
    assert rec.dropped == {"h0": 2}
    assert [r["i"] for r in rec.snapshot(host="h0")] == [2, 3, 4]
    assert rec.recorded == 6
    assert rec.hosts() == ["h0", "h1"]


def test_probe_host_keying_falls_back_dst_then_src():
    rec, _sim = make_recorder()
    rec.on_probe("a", {"host": "h0", "dst": "x", "src": "y"})
    rec.on_probe("b", {"dst": "h1", "src": "y"})
    rec.on_probe("c", {"src": "h2"})
    rec.on_probe("d", {"other": 1})
    assert rec.hosts() == ["*", "h0", "h1", "h2"]


def test_merged_snapshot_preserves_emission_order():
    rec, _sim = make_recorder()
    rec.on_probe("a", {"host": "h1"})
    rec.on_probe("b", {"host": "h0"})
    rec.on_probe("c", {"host": "h1"})
    assert [r["kind"] for r in rec.snapshot()] == ["a", "b", "c"]
    assert [r["kind"] for r in rec.snapshot(last=2)] == ["b", "c"]


def test_violation_lands_at_the_tail():
    rec, sim = make_recorder()
    for i in range(10):
        rec.on_probe("ctx.send", {"host": f"h{i % 2}", "seq": i})
    rec.note_violation("single-owner", sim.now, "two live owners")
    tape = rec.snapshot()
    assert tape[-1]["kind"] == "violation"
    assert tape[-1]["oracle"] == "single-owner"
    assert tape[-1]["host"] == "*"


def test_note_frame_records_wire_metadata():
    class Src:
        host = "h9"

    class Frame:
        proto = "srudp"
        src = Src()
        src_port = 1
        dst_port = 2
        size = 128
        trace_id = None

    rec, _sim = make_recorder()
    rec.note_frame("h0", Frame())
    (r,) = rec.snapshot(host="h0")
    assert r["kind"] == "frame.rx" and r["proto"] == "srudp"
    assert r["src"] == "h9" and r["bytes"] == 128


def test_attach_detach_sets_sim_flight():
    rec, sim = make_recorder()
    assert sim.flight is None
    rec.attach()
    assert sim.flight is rec
    rec.detach()
    assert sim.flight is None


def test_attach_subscribes_to_probe_bus():
    from repro.check.oracles import ProbeBus

    rec, sim = make_recorder()
    bus = ProbeBus()
    rec.attach(bus)
    bus.emit("guardian.fence", host="h3", inc=2)
    (r,) = rec.snapshot(host="h3")
    assert r["kind"] == "guardian.fence" and r["inc"] == 2


def test_dump_jsonl_round_trip(tmp_path):
    rec, sim = make_recorder()
    rec.on_probe("a", {"host": "h0", "x": 1})
    rec.note_violation("o", sim.now, "boom")
    path = tmp_path / "tape.jsonl"
    assert rec.dump_jsonl(str(path)) == 2
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert lines == rec.snapshot()

    path2 = tmp_path / "tape2.jsonl"
    assert dump_flight_records(str(path2), rec.snapshot()) == 2
    assert path2.read_text() == path.read_text()
