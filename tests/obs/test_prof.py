"""Unit tests for the deterministic kernel profiler."""

from repro.obs.cli import demo_scenario
from repro.obs.prof import (
    KernelProfiler,
    _module_subsystem,
    _split_name,
    profile_scenario,
)
from repro.sim import Simulator
from repro.sim.events import Event


def test_split_name_attribution_cases():
    assert _split_name("srudp:h0:5000") == ("srudp", "h0")
    assert _split_name("nic:10.0.0.1(h0.eth0)") == ("nic", "h0")
    assert _split_name("ovl-load:w1") == ("ovl-load", "w1")
    assert _split_name("drain-mcast-b") == ("drain-mcast-b", None)
    assert _split_name(":weird") == ("anon", "weird")


def test_module_subsystem():
    assert _module_subsystem("repro.transport.base") == "transport"
    assert _module_subsystem("repro.sim") == "sim"
    assert _module_subsystem("collections.abc") == "abc"
    assert _module_subsystem(None) == "unknown"


def fixed_clock():
    """A clock advancing 1ms per read — wall figures become deterministic."""
    t = [0.0]

    def clock():
        t[0] += 0.001
        return t[0]

    return clock


def test_profiler_attributes_named_processes():
    sim = Simulator(seed=1)
    prof = KernelProfiler(clock=fixed_clock())
    prof.attach(sim)

    def worker():
        for _ in range(3):
            yield sim.timeout(1.0)

    sim.process(worker(), name="foo:h1:42")
    sim.run(until=10.0)
    prof.detach(sim)

    subs = {sub for sub, _host, _etype in prof.cells}
    assert "foo" in subs
    hosts = {host for sub, host, _ in prof.cells if sub == "foo"}
    assert hosts == {"h1"}
    assert prof.events > 0
    assert prof.heap_pops <= prof.heap_pushes
    assert prof.timers_scheduled >= 3  # the worker's three timeouts


def test_profiler_counts_are_deterministic_across_runs():
    counts = []
    for _ in range(2):
        prof = KernelProfiler()
        sim = demo_scenario(n_messages=5, msg_bytes=4096, instrument=prof.attach)
        prof.detach(sim)
        counts.append((prof.events, prof.callbacks, prof.heap_pushes,
                       prof.heap_pops, prof.timers_scheduled,
                       prof.frames_constructed, prof.wire_bytes,
                       prof.wire_frames))
    assert counts[0] == counts[1]
    assert counts[0][5] > 0 and counts[0][6] > 0  # frames + wire bytes seen


def test_profiler_detached_kernel_has_no_hooks():
    sim = Simulator(seed=1)
    assert sim._prof is None and sim.flight is None
    prof = KernelProfiler().attach(sim)
    assert sim._prof is prof
    prof.detach(sim)
    assert sim._prof is None


def test_flamegraph_levels_sum():
    prof = KernelProfiler()
    sim = demo_scenario(n_messages=5, msg_bytes=4096, instrument=prof.attach)
    prof.detach(sim)
    flame = prof.flamegraph()
    assert flame["name"] == "kernel"
    assert flame["value"] == sum(c["value"] for c in flame["children"])
    for sub in flame["children"]:
        assert sub["value"] == sum(h["value"] for h in sub["children"])
        for host in sub["children"]:
            assert host["value"] == sum(leaf["value"] for leaf in host["children"])


def test_export_shares_sum_to_100():
    prof = KernelProfiler()
    sim = demo_scenario(n_messages=5, msg_bytes=4096, instrument=prof.attach)
    prof.detach(sim)
    ex = prof.export()
    assert abs(sum(r["share_pct"] for r in ex["by_subsystem"]) - 100.0) < 0.5
    assert ex["top"] == [r["subsystem"] for r in ex["by_subsystem"][:3]]
    assert ex["heap"]["pushes"] >= ex["heap"]["pops"]
    assert "top-3 hot spots" in prof.format_report("demo")


def test_subclass_override_guard_times_whole_block():
    """An Event subclass overriding _process is run as one timed block —
    profiling never changes behaviour."""

    class Odd(Event):
        ran = 0

        def _process(self):
            Odd.ran += 1
            super()._process()

    sim = Simulator()
    prof = KernelProfiler(clock=fixed_clock()).attach(sim)
    ev = Odd(sim)
    ev.callbacks.append(lambda e: None)
    ev.succeed()
    sim.run(until=1.0)
    prof.detach(sim)
    assert Odd.ran == 1
    assert ("kernel", None, "Odd") in prof.cells


def test_profile_scenario_demo_end_to_end():
    result = profile_scenario("demo", seed=3, n_messages=5, msg_bytes=4096)
    assert result["ok"] and result["scenario"] == "demo"
    assert result["profile"]["events"] > 0
    assert len(result["profile"]["top"]) == 3
    assert result["flame"]["value"] >= 0
