"""The kernel perf-regression gate: ``obs perf-gate`` + ``obs diff``.

CI measures normalized E12/E13 wall-clock with ``perf-gate`` and diffs
it against ``baselines/perf-kernel.json`` with ``--fail-over 20``.
These tests run the quick slices end to end and pin the contract the
gate depends on: the gated gauges exist under ``perf.*``, identical
measurements pass, a slowdown trips, and the machine-dependent
``info.*`` context gauges stay outside the gate.
"""

import json

from repro.obs.cli import main


def _vary(data, prefix, factor):
    out = dict(data)
    out["gauges"] = [
        dict(g, value=g["value"] * factor) if g["name"].startswith(prefix)
        else g
        for g in data["gauges"]
    ]
    return out


def test_perf_gate_writes_gauges_and_diff_gates_on_them(tmp_path):
    out = tmp_path / "perf-kernel.json"
    assert main(["perf-gate", "--quick", "--repeats", "1",
                 "--out", str(out)]) == 0
    data = json.loads(out.read_text())
    names = {g["name"] for g in data["gauges"]}
    assert {"perf.e12_norm", "perf.e13_norm", "info.calib_s",
            "info.e12_wall_s", "info.e13_wall_s"} <= names
    assert all(g["value"] > 0 for g in data["gauges"])

    # Identical measurements pass the gate.
    gate = ["--fail-over", "20", "--metrics", "perf.*", "--direction", "up"]
    assert main(["diff", str(out), str(out), *gate]) == 0

    # A 1.5x slowdown of the normalized costs trips it.
    slow = tmp_path / "perf-slow.json"
    slow.write_text(json.dumps(_vary(data, "perf.", 1.5)))
    assert main(["diff", str(out), str(slow), *gate]) == 1

    # Speedups do not trip an "up" gate.
    fast = tmp_path / "perf-fast.json"
    fast.write_text(json.dumps(_vary(data, "perf.", 0.5)))
    assert main(["diff", str(out), str(fast), *gate]) == 0

    # info.* gauges (raw seconds, machine-dependent) are outside the
    # gate: inflating them tenfold changes nothing.
    info = tmp_path / "perf-info.json"
    info.write_text(json.dumps(_vary(data, "info.", 10.0)))
    assert main(["diff", str(out), str(info), *gate]) == 0


def test_committed_baseline_has_the_gated_gauges():
    """The file CI diffs against must carry the gated metric names."""
    import pathlib

    path = pathlib.Path(__file__).resolve().parents[2] / "baselines" / "perf-kernel.json"
    data = json.loads(path.read_text())
    names = {g["name"] for g in data["gauges"]}
    assert {"perf.e12_norm", "perf.e13_norm"} <= names
