"""Unit tests for report rendering, export diffing, and BENCH files."""

import json

import pytest

from repro.obs import MetricsRegistry, diff_exports, load_export, save_export
from repro.obs.report import (
    BENCH_SCHEMA_VERSION,
    gate_diff,
    render_diff,
    render_report,
    write_bench_json,
)


def sample_export():
    reg = MetricsRegistry()
    reg.counter("transport.retransmits", proto="srudp").inc(5)
    reg.gauge("daemon.load", host="h0").set(0.5)
    h = reg.histogram("transport.msg_latency", proto="srudp")
    for v in (0.01, 0.02, 0.04):
        h.observe(v)
    return reg.export()


def test_render_report_groups_by_subsystem():
    text = render_report(sample_export())
    assert "-- transport --" in text
    assert "-- daemon --" in text
    assert "transport.retransmits" in text
    assert "proto=srudp" in text
    assert "p50" in text and "p99" in text


def test_render_report_empty():
    assert "(no metrics recorded)" in render_report({})


def test_diff_exports_aligns_and_deltas():
    base = sample_export()
    reg = MetricsRegistry()
    reg.counter("transport.retransmits", proto="srudp").inc(8)
    reg.counter("transport.new_metric").inc(1)
    new = reg.export()
    rows = diff_exports(base, new)
    by_key = {(r["metric"], r["column"]): r for r in rows}
    retr = by_key[("transport.retransmits", "value")]
    assert retr["base"] == 5 and retr["new"] == 8
    assert retr["delta"] == 3
    assert retr["pct"] == 60.0
    # Present on one side only: other side blank, no delta.
    only_new = by_key[("transport.new_metric", "value")]
    assert only_new["base"] == "" and only_new["new"] == 1
    assert "delta" not in only_new
    only_base = by_key[("daemon.load", "value")]
    assert only_base["new"] == ""
    assert "transport.retransmits" in render_diff(base, new)


def test_save_and_load_export(tmp_path):
    export = sample_export()
    path = tmp_path / "run.json"
    save_export(export, str(path))
    assert load_export(str(path)) == json.loads(json.dumps(export))


def test_write_bench_json_and_load(tmp_path):
    rows = [{"series": "srudp", "mbps": 11.5}]
    path = write_bench_json(
        "fig1", rows, str(tmp_path), wall_s=1.25, metrics=sample_export()
    )
    assert path.endswith("BENCH_fig1.json")
    data = json.loads(open(path).read())
    assert data["name"] == "fig1"
    assert data["rows"] == rows
    assert data["wall_s"] == 1.25
    # load_export unwraps the metrics payload from a BENCH file.
    assert load_export(path)["counters"]


def test_load_bench_without_metrics_synthesizes_gauges(tmp_path):
    """A rows-only BENCH file still renders and diffs: numeric columns
    become bench.<name>.<col> gauges, string columns become tags."""
    rows = [
        {"series": "srudp", "size": 16384, "mbps": 11.5},
        {"series": "tcp", "size": 16384, "mbps": 9.8},
    ]
    path = write_bench_json("fig1", rows, str(tmp_path), wall_s=2.0)
    export = load_export(path)
    gauges = {(g["name"], g["tags"].get("row")): g for g in export["gauges"]}
    g = gauges[("bench.fig1.mbps", "0")]
    assert g["value"] == 11.5
    assert g["tags"]["series"] == "srudp"
    assert gauges[("bench.fig1.mbps", "1")]["value"] == 9.8
    assert ("bench.fig1.wall_s", None) in gauges
    assert "bench.fig1.mbps" in render_report(export)
    # Two runs of the same benchmark diff by row index.
    new_dir = tmp_path / "new"
    new_dir.mkdir()
    rows2 = [dict(r, mbps=r["mbps"] + 1.0) for r in rows]
    path2 = write_bench_json("fig1", rows2, str(new_dir), wall_s=2.0)
    drows = diff_exports(load_export(path), load_export(path2))
    mbps = [r for r in drows if r["metric"] == "bench.fig1.mbps"]
    assert all(r["delta"] == 1.0 for r in mbps) and len(mbps) == 2


def test_bench_envelope_is_common_across_writers(tmp_path):
    """Every BENCH file carries the same envelope: schema version,
    scenario (defaulting to the bench name), and seed/hosts/extra when
    the caller knows them."""
    path = write_bench_json(
        "e14", [{"x": 1}], str(tmp_path), wall_s=0.5, scenario="overload",
        seed=7, hosts=12, extra={"repeats": 3},
    )
    data = json.loads(open(path).read())
    assert data["schema"] == BENCH_SCHEMA_VERSION
    assert data["scenario"] == "overload"
    assert data["seed"] == 7 and data["hosts"] == 12
    assert data["repeats"] == 3  # extra merged at the top level
    # Scenario defaults to the bench name; optional keys stay absent.
    bare = json.loads(open(write_bench_json("fig9", [], str(tmp_path))).read())
    assert bare["scenario"] == "fig9"
    assert "seed" not in bare and "hosts" not in bare and "wall_s" not in bare


def gate_rows():
    return [
        {"metric": "bench.f.mbps", "tags": "", "column": "value",
         "base": 10.0, "new": 8.0, "delta": -2.0, "pct": -20.0},
        {"metric": "bench.f.wall_s", "tags": "", "column": "value",
         "base": 1.0, "new": 1.05, "delta": 0.05, "pct": 5.0},
        {"metric": "bench.f.retries", "tags": "", "column": "value",
         "base": 0, "new": 3, "delta": 3, "pct": ""},  # zero base: no pct
        {"metric": "bench.f.new_col", "tags": "", "column": "value",
         "base": "", "new": 4.0},  # one-sided: no pct at all
    ]


def test_gate_diff_threshold_and_direction():
    rows = gate_rows()
    tripped = gate_diff(rows, fail_over=10.0)
    assert [r["metric"] for r in tripped] == ["bench.f.mbps"]
    # Tighter threshold also catches the 5% creep.
    assert len(gate_diff(rows, fail_over=4.0)) == 2
    # Direction filters: "down" only sees the drop, "up" only the creep.
    assert [r["metric"] for r in gate_diff(rows, 4.0, direction="down")] == \
        ["bench.f.mbps"]
    assert [r["metric"] for r in gate_diff(rows, 4.0, direction="up")] == \
        ["bench.f.wall_s"]
    # At-threshold changes do not trip (strictly-over semantics).
    assert gate_diff(rows, fail_over=20.0) == []


def test_gate_diff_glob_and_bad_direction():
    rows = gate_rows()
    assert gate_diff(rows, 1.0, metrics_glob="*.wall_s") == [rows[1]]
    assert gate_diff(rows, 1.0, metrics_glob="nomatch.*") == []
    with pytest.raises(ValueError):
        gate_diff(rows, 1.0, direction="sideways")


def test_load_bench_dict_of_tables(tmp_path):
    """BENCH rows may be {table: [rows]}; each sub-table gets a table tag."""
    rows = {"summary": [{"policy": "multipath", "gap_ms": 85.0}]}
    path = write_bench_json("failover", rows, str(tmp_path))
    export = load_export(path)
    (g,) = [g for g in export["gauges"] if g["name"] == "bench.failover.gap_ms"]
    assert g["tags"]["table"] == "summary"
    assert g["tags"]["policy"] == "multipath"
    assert g["value"] == 85.0
