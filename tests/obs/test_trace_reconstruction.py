"""Acceptance tests: one logical send reconstructed end-to-end by trace id.

The causal-trace contract: a transport allocates one trace id per message
send and stamps it on every frame the message produces — first
transmissions, selective retransmits, and reroutes over a different
interface — so filtering the JSON trace dump on that single id yields the
message's full story.
"""

from repro.net import ETHERNET_100, MYRINET, Medium, Topology
from repro.obs import load_jsonl
from repro.sim import Simulator
from repro.transport import SrudpEndpoint


def lossy_pair(loss_rate=0.05, seed=3):
    medium = Medium(
        name="lan",
        bandwidth=ETHERNET_100.bandwidth,
        latency=ETHERNET_100.latency,
        mtu=ETHERNET_100.mtu,
        frame_overhead=ETHERNET_100.frame_overhead,
        loss_rate=loss_rate,
    )
    sim = Simulator(seed=seed)
    sim.obs.tracer.enabled = True
    topo = Topology(sim)
    seg = topo.add_segment("lan", medium)
    a = topo.add_host("a")
    b = topo.add_host("b")
    topo.connect(a, seg)
    topo.connect(b, seg)
    return sim, topo, a, b


def transfer(sim, a, b, size):
    tx = SrudpEndpoint(a, 5000)
    rx = SrudpEndpoint(b, 5000)
    got = {}

    def receiver():
        msg = yield rx.recv()
        got["size"] = msg.size

    sim.process(receiver(), name="rx")
    p = tx.send("b", 5000, "payload", size)
    sim.run(until=p)
    sim.run(until=sim.now + 0.5)
    assert got["size"] == size
    return tx


def test_srudp_send_reconstructable_under_loss(tmp_path):
    sim, topo, a, b = lossy_pair(loss_rate=0.05)
    transfer(sim, a, b, 300_000)

    tracer = sim.obs.tracer
    sends = tracer.events(kind="srudp.send")
    assert len(sends) == 1
    tid = sends[0]["trace"]

    story = tracer.events(trace_id=tid)
    kinds = [r["kind"] for r in story]
    # The full lifecycle is present under one id...
    assert kinds[0] == "srudp.send"
    assert "srudp.retransmit" in kinds  # 5% loss over ~200 frames must hit
    assert "srudp.deliver" in kinds
    assert "srudp.acked" in kinds
    # ...with every individual frame transmission attributed to it.
    frames = [r for r in story if r["kind"] == "frame.tx"]
    nsegs = sends[0]["nsegs"]
    retransmits = sum(1 for k in kinds if k == "srudp.retransmit")
    assert len(frames) >= nsegs + retransmits  # data frames (+ final ack)
    # Causal order holds in virtual time: send <= retransmits <= deliver.
    t_send = story[0]["t"]
    t_deliver = next(r["t"] for r in story if r["kind"] == "srudp.deliver")
    for r in story:
        if r["kind"] == "srudp.retransmit":
            assert t_send <= r["t"] <= t_deliver

    # The same reconstruction works from the JSON dump on disk.
    path = tmp_path / "trace.jsonl"
    sim.obs.tracer.dump_jsonl(str(path))
    records = load_jsonl(path.read_text().splitlines())
    replay = [r for r in records if r.get("trace") == tid]
    assert replay == story


def test_srudp_reroute_visible_in_one_trace():
    """Kill the fast segment mid-transfer: the same trace id shows frames
    on both media plus the path selector's switch event (E8 failover)."""
    sim = Simulator(seed=11)
    sim.obs.tracer.enabled = True
    topo = Topology(sim)
    eth = topo.add_segment("eth", ETHERNET_100)
    myr = topo.add_segment("myr", MYRINET)
    a = topo.add_host("a")
    b = topo.add_host("b")
    for h in (a, b):
        topo.connect(h, eth)
        topo.connect(h, myr)

    def killer():
        yield sim.timeout(0.004)  # mid-transfer on myrinet
        myr.up = False
        topo.bump_version()

    sim.process(killer(), name="killer")
    transfer(sim, a, b, 2_000_000)

    tracer = sim.obs.tracer
    (send,) = tracer.events(kind="srudp.send")
    tid = send["trace"]
    nets = {r["net"] for r in tracer.events(trace_id=tid, kind="frame.tx")}
    assert nets == {"myr", "eth"}  # started fast, finished on the survivor
    switches = tracer.events(kind="path.switch")
    assert any(s["old_iface"] != s["new_iface"] for s in switches)
    assert sim.obs.metrics.counter("pathsel.switches").value >= 1
    deliver = tracer.events(trace_id=tid, kind="srudp.deliver")
    assert len(deliver) == 1


def test_rpc_forwarding_keeps_trace_id():
    """A frame routed through a gateway keeps its trace id: the forward
    event carries the same id as the originating send."""
    from repro.net import WAN_T3

    sim = Simulator(seed=5)
    sim.obs.tracer.enabled = True
    topo = Topology(sim)
    wan1 = topo.add_segment("wan1", WAN_T3)
    wan2 = topo.add_segment("wan2", WAN_T3)
    a = topo.add_host("a")
    b = topo.add_host("b")
    gw = topo.add_host("gw", forwarding=True)
    topo.connect(a, wan1)
    topo.connect(gw, wan1)
    topo.connect(gw, wan2)
    topo.connect(b, wan2)
    transfer(sim, a, b, 10_000)

    tracer = sim.obs.tracer
    (send,) = tracer.events(kind="srudp.send")
    tid = send["trace"]
    forwards = tracer.events(trace_id=tid, kind="frame.forward")
    assert forwards and all(f["gateway"] == "gw" for f in forwards)
