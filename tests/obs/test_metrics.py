"""Unit tests for the tagged metrics registry and HDR-style histograms."""

import math
import random
import statistics

import pytest

from repro.obs import MetricsRegistry
from repro.obs.metrics import GROWTH, Histogram


def test_counter_interning_and_tags():
    reg = MetricsRegistry()
    a = reg.counter("transport.tx", proto="srudp")
    b = reg.counter("transport.tx", proto="srudp")
    c = reg.counter("transport.tx", proto="tcp")
    assert a is b and a is not c
    a.inc()
    a.inc(2)
    assert b.value == 3.0
    assert c.value == 0.0


def test_tag_order_does_not_matter():
    reg = MetricsRegistry()
    assert reg.counter("x", a="1", b="2") is reg.counter("x", b="2", a="1")


def test_gauge_set_and_timestamp():
    reg = MetricsRegistry(clock=lambda: 42.0)
    g = reg.gauge("daemon.load", host="h0")
    g.set(1.5, at=3.0)
    assert g.value == 1.5
    assert g.updated_at == 3.0


def test_histogram_exact_stats():
    h = Histogram("lat")
    for v in [0.001, 0.01, 0.1, 1.0]:
        h.observe(v)
    assert h.n == 4
    assert h.sum == pytest.approx(1.111)
    assert h.mean == pytest.approx(1.111 / 4)
    assert h.min == 0.001
    assert h.max == 1.0


def test_histogram_percentile_relative_error_bound():
    """Quantile estimates stay within the GROWTH-1 (10%) relative bound."""
    rng = random.Random(1234)
    values = [10 ** rng.uniform(-4, 1) for _ in range(5000)]  # 5 decades
    h = Histogram("lat")
    for v in values:
        h.observe(v)
    values.sort()
    for p in (50, 90, 95, 99):
        exact = values[max(0, math.ceil(len(values) * p / 100.0) - 1)]
        est = h.percentile(p)
        assert abs(est - exact) / exact <= (GROWTH - 1) + 1e-9, (p, est, exact)


def test_histogram_underflow_bucket():
    h = Histogram("lat")
    h.observe(0.0)
    h.observe(-1.0)
    assert h.p50 == 0.0
    assert h.n == 2
    assert h.min == -1.0


def test_histogram_empty():
    h = Histogram("lat")
    assert h.p50 == 0.0 and h.mean == 0.0 and h.min == 0.0 and h.max == 0.0


def test_histogram_single_value_clamps_to_observed():
    h = Histogram("lat")
    h.observe(0.37)
    # The bucket bound may overshoot; clamping pins it to the exact max.
    assert h.p50 == 0.37
    assert h.p99 == 0.37


def test_welford_probe_matches_reference():
    """Probe's streaming mean/variance vs the stdlib batch reference."""
    from repro.sim import Probe

    rng = random.Random(99)
    values = [rng.gauss(5.0, 2.0) for _ in range(1000)]
    p = Probe("x")
    for v in values:
        p.observe(v)
    assert p.mean == pytest.approx(statistics.fmean(values))
    assert p.variance == pytest.approx(statistics.variance(values))


def test_snapshot_and_export_shapes():
    reg = MetricsRegistry()
    reg.counter("a.ops").inc(2)
    reg.gauge("b.depth").set(7.0)
    reg.histogram("c.lat", proto="x").observe(0.5)
    snap = reg.snapshot()
    assert snap["a.ops"] == 2.0
    assert snap["b.depth"] == 7.0
    assert snap["c.lat{proto=x}.count"] == 1.0
    assert snap["c.lat{proto=x}.p99"] == 0.5
    export = reg.export()
    assert export["counters"][0] == {"name": "a.ops", "tags": {}, "value": 2.0}
    (hist,) = export["histograms"]
    assert hist["name"] == "c.lat" and hist["tags"] == {"proto": "x"}
    for col in ("count", "sum", "mean", "min", "max", "p50", "p95", "p99"):
        assert col in hist
    # export() must be JSON-serialisable as-is.
    import json

    json.dumps(export)
