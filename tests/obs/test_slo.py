"""Unit tests for declarative SLOs and the in-run monitor."""

import pytest

from repro.obs import MetricsRegistry
from repro.obs.slo import (
    DEFAULT_SLOS,
    Slo,
    SloMonitor,
    evaluate_slos,
    format_slo_results,
    parse_slo,
)
from repro.sim import Simulator


def export_with(counters=(), histograms=()):
    reg = MetricsRegistry()
    for name, value, tags in counters:
        reg.counter(name, **tags).inc(value)
    for name, samples, tags in histograms:
        h = reg.histogram(name, **tags)
        for s in samples:
            h.observe(s)
    return reg.export()


def test_counter_bound_pass_and_fail():
    export = export_with(counters=[("daemon.heartbeats_failed", 3, {})])
    (r,) = evaluate_slos(export, [Slo("hb", "daemon.heartbeats_failed", 0.0)])
    assert not r["ok"] and r["value"] == 3.0
    (r,) = evaluate_slos(export, [Slo("hb", "daemon.heartbeats_failed", 5.0)])
    assert r["ok"]


def test_missing_metric_reads_zero_vacuous_pass():
    (r,) = evaluate_slos({"counters": [], "gauges": [], "histograms": []},
                         [Slo("mttr", "guardian.recovery_latency", 10.0,
                              column="p99")])
    assert r["ok"] and r["value"] == 0.0


def test_counters_sum_histograms_take_worst_instance():
    export = export_with(
        counters=[("rpc.requests_shed", 2, {"host": "a"}),
                  ("rpc.requests_shed", 3, {"host": "b"})],
        histograms=[("lat", [0.1] * 100, {"host": "a"}),
                    ("lat", [0.9] * 100, {"host": "b"})],
    )
    (r,) = evaluate_slos(export, [Slo("shed", "rpc.requests_shed", 4.0)])
    assert not r["ok"] and r["value"] == 5.0  # summed across tags
    (r,) = evaluate_slos(export, [Slo("lat", "lat", 0.5, column="p99")])
    assert not r["ok"]  # worst instance (0.9) judged, not the best


def test_ratio_to_rate_bound():
    export = export_with(counters=[("rpc.requests_shed", 30, {}),
                                   ("rpc.requests_served", 70, {})])
    (r,) = evaluate_slos(export, [Slo("shed-rate", "rpc.requests_shed", 0.5,
                                      ratio_to="rpc.requests_served")])
    assert r["ok"] and r["value"] == pytest.approx(0.3)
    # 0/0 counts as 0, not a crash.
    (r,) = evaluate_slos({"counters": [], "gauges": [], "histograms": []},
                         [Slo("shed-rate", "rpc.requests_shed", 0.5,
                              ratio_to="rpc.requests_served")])
    assert r["ok"] and r["value"] == 0.0


def test_min_count_gates_partial_but_not_final():
    slo = Slo("p99", "lat", 0.5, column="p99", min_count=100)
    export = export_with(histograms=[("lat", [0.9] * 10, {})])
    (r,) = evaluate_slos(export, [slo], partial=True)
    assert r["ok"]  # 10 samples: not yet evaluable mid-run
    (r,) = evaluate_slos(export, [slo])
    assert not r["ok"]  # the final verdict enforces the bound regardless


def test_unknown_op_rejected():
    with pytest.raises(ValueError):
        Slo("x", "m", 1.0, op="==")


def test_parse_slo_specs():
    s = parse_slo("hb:daemon.heartbeats_failed:le:0")
    assert (s.metric, s.column, s.op, s.threshold) == (
        "daemon.heartbeats_failed", "value", "<=", 0.0)
    s = parse_slo("p99:overload.control_latency:p99:lt:0.5")
    assert (s.column, s.op, s.threshold) == ("p99", "<", 0.5)
    s = parse_slo("up:rpc.requests_served:>=:10")
    assert s.op == ">="
    with pytest.raises(ValueError):
        parse_slo("too:few")


def test_default_slos_cover_the_paper_objectives():
    metrics = {s.metric for s in DEFAULT_SLOS}
    assert metrics == {"overload.control_latency", "daemon.heartbeats_failed",
                       "guardian.recovery_latency", "rpc.requests_shed",
                       "rcds.sync_batch_records", "rcds.redirects"}


def test_monitor_flags_transient_breach():
    """A gauge breaches mid-run and recovers: the continuous bound still
    fails, with the first-breach time recorded."""
    sim = Simulator(seed=1)
    gauge = sim.obs.metrics.gauge("x.load")

    def wave():
        yield sim.timeout(1.2)
        gauge.set(9.0)  # breach
        yield sim.timeout(1.0)
        gauge.set(0.0)  # recover

    sim.process(wave(), name="wave")
    monitor = SloMonitor(sim, [Slo("load", "x.load", 5.0)], interval=0.5)
    monitor.attach()
    sim.run(until=4.0)
    (r,) = monitor.results()
    assert not r["ok"]
    assert r["value"] == 0.0  # final value is back in bounds
    assert r["first_breach_t"] == pytest.approx(1.5)
    assert "transient breach" in r["detail"]
    assert not monitor.ok
    assert "FAIL" in format_slo_results([r])


def test_monitor_clean_run_passes():
    sim = Simulator(seed=1)
    sim.obs.metrics.gauge("x.load").set(1.0)
    monitor = SloMonitor(sim, [Slo("load", "x.load", 5.0)], interval=0.5)
    monitor.attach()

    def tick():
        yield sim.timeout(3.0)

    sim.process(tick(), name="tick")
    sim.run(until=3.0)
    assert monitor.ok and monitor.samples >= 5
    (r,) = monitor.results()
    assert r["first_breach_t"] is None
    assert "RESULT: OK" in format_slo_results([r])
