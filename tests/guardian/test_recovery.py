"""End-to-end self-healing: Guardian detection, restart, and fencing."""

from repro.core import SnipeEnvironment
from repro.core.checkpoint import checkpoint_to_files
from repro.daemon import TaskSpec, TaskState


def healing_env(seed=3):
    """A LAN site with two guardians and a checkpointing worker program."""
    env = SnipeEnvironment.lan_site(n_hosts=5, n_rc=3, n_rm=1, n_fs=2, seed=seed)
    env.add_guardian("h1")
    env.add_guardian("h2")
    received = []

    @env.program("collector")
    def collector(ctx):
        while True:
            msg = yield ctx.recv()
            received.append((msg.tag, msg.payload, msg.src_inc))

    @env.program("worker")
    def worker(ctx, total, ckpt_every, collector_urn):
        i = ctx.checkpoint_state.get("i", 0)
        while i < total:
            yield ctx.compute(0.2)
            i += 1
            ctx.checkpoint_state["i"] = i
            yield ctx.send(collector_urn, {"i": i, "inc": ctx.incarnation}, tag="progress")
            # Output-commit: checkpoint only after the report was acked,
            # so a successor can never resume past an unreported step.
            if i % ckpt_every == 0:
                yield checkpoint_to_files(ctx)
        yield ctx.send(collector_urn, {"inc": ctx.incarnation}, tag="done")
        return i

    env.settle(1.0)  # guardians register
    return env, received


def all_recoveries(env):
    return [r for g in env.guardians.values() for r in g.recoveries]


def test_guardian_recovers_task_from_crashed_host():
    """Kill a checkpointing task's host mid-run: the Guardian must respawn
    it from the latest checkpoint on a live host, and it completes once."""
    env, received = healing_env(seed=3)
    coll = env.spawn(TaskSpec(program="collector"), on="h0")
    work = env.spawn(
        TaskSpec(program="worker",
                 params={"total": 30, "ckpt_every": 5, "collector_urn": coll.urn}),
        on="h4",
    )
    old_inc = env.daemons["h4"].contexts[work.urn].incarnation
    # Crash h4 mid-run (~10 steps in, latest checkpoint at i=10). Permanent.
    env.failures.host_down_at(env.sim.now + 2.1, "h4")
    env.run(until=60.0)

    recs = all_recoveries(env)
    assert len(recs) == 1, f"expected exactly one recovery, got {recs}"
    rec = recs[0]
    assert rec["urn"] == work.urn
    assert rec["from"] == "h4"
    assert rec["to"] not in (None, "h4")
    assert rec["new_inc"] > (rec["old_inc"] or 0)
    assert rec["old_inc"] == old_inc

    # The successor ran to completion on the new host.
    revived = env.daemons[rec["to"]].tasks[work.urn]
    assert revived.state == TaskState.EXITED
    assert revived.exit_value == 30
    # Exactly one completion signal, from the new incarnation.
    dones = [(payload, inc) for tag, payload, inc in received if tag == "done"]
    assert len(dones) == 1
    assert dones[0][1] == rec["new_inc"]
    # Every unit of work was reported (restarts may redo a checkpointed
    # suffix, but nothing is lost).
    seen_i = {payload["i"] for tag, payload, _ in received if tag == "progress"}
    assert seen_i == set(range(1, 31))


def test_zombie_incarnation_is_fenced_after_partition():
    """A partitioned (not crashed) host looks dead to the Guardian. After
    recovery, the original keeps running — a zombie. Its late messages
    must be dropped by receivers, and it must terminate itself (quietly)
    once it sees the fence."""
    env = SnipeEnvironment(seed=11)
    env.add_segment("core")
    env.add_segment("edge")
    for name in ("h0", "h1", "h2"):
        env.add_host(name, segments=["core"])
    env.add_host("gw", segments=["core", "edge"], forwarding=True)
    env.add_host("w", segments=["edge"])
    env.add_rc_servers(["h0", "h1", "h2"])
    for name in ("h0", "h1", "h2", "gw", "w"):
        env.boot_daemon(name)
    env.add_rm("h0")
    env.add_file_server("h0")
    env.add_file_server("h1")
    env.add_guardian("h1")
    env.add_guardian("h2")
    received = []

    @env.program("collector")
    def collector(ctx):
        while True:
            msg = yield ctx.recv()
            received.append((msg.tag, msg.payload, msg.src_inc))

    @env.program("worker")
    def worker(ctx, total, ckpt_every, collector_urn):
        i = ctx.checkpoint_state.get("i", 0)
        while i < total:
            yield ctx.compute(0.2)
            i += 1
            ctx.checkpoint_state["i"] = i
            yield ctx.send(collector_urn, {"i": i, "inc": ctx.incarnation}, tag="progress")
            # Output-commit: checkpoint only after the report was acked,
            # so a successor can never resume past an unreported step.
            if i % ckpt_every == 0:
                yield checkpoint_to_files(ctx)
        yield ctx.send(collector_urn, {"inc": ctx.incarnation}, tag="done")
        return i

    env.settle(2.0)
    coll = env.spawn(TaskSpec(program="collector"), on="h0")
    work = env.spawn(
        TaskSpec(program="worker",
                 params={"total": 100, "ckpt_every": 5, "collector_urn": coll.urn}),
        on="w",
    )
    old_inc = env.daemons["w"].contexts[work.urn].incarnation
    # Isolate w (and only w): its lease lapses but the task keeps running.
    env.failures.partition_at(env.sim.now + 1.6, ["w"], ["h0", "h1", "h2", "gw"],
                              duration=12.0)
    env.run(until=90.0)

    recs = all_recoveries(env)
    assert len(recs) == 1
    rec = recs[0]
    assert rec["from"] == "w"
    assert rec["new_inc"] > old_inc

    # The zombie was fenced: terminated without publishing, and its late
    # messages (buffered across the partition) were dropped on arrival.
    zombie = env.daemons["w"].tasks[work.urn]
    assert zombie.fenced
    assert zombie.state == TaskState.KILLED
    coll_ctx = env.daemons["h0"].contexts[coll.urn]
    assert coll_ctx.msgs_fenced > 0
    # Exactly one completion, from the successor incarnation.
    dones = [(payload, inc) for tag, payload, inc in received if tag == "done"]
    assert len(dones) == 1
    assert dones[0][1] == rec["new_inc"]
    # No message from the zombie incarnation ever arrived post-recovery
    # interleaved into the stream: once the successor spoke, everything
    # recorded is from the successor.
    first_new = next(i for i, (_, _, inc) in enumerate(received) if inc == rec["new_inc"])
    assert all(inc == rec["new_inc"] for _, _, inc in received[first_new:])
    # The catalog agrees the task finished (successor's record survived).
    def check(sim):
        meta = yield env.rc_client("h2").lookup(work.urn)
        return (meta.get("state") or {}).get("value")

    state = env.run(until=env.sim.process(check(env.sim)))
    assert state == TaskState.EXITED


def test_duplicate_fenced_respawns_converge_to_one_owner():
    """A spawn whose reply is lost gets retried by the RM layers on another
    host, so one recovery can start two successors. Fenced respawns
    quorum-write a fresh fence *before* launching, so whichever successor
    starts last supersedes every earlier incarnation — the original and
    the sibling duplicate — and exactly one owner finishes."""
    env, received = healing_env(seed=7)
    coll = env.spawn(TaskSpec(program="collector"), on="h0")
    work = env.spawn(
        TaskSpec(program="worker",
                 params={"total": 40, "ckpt_every": 5, "collector_urn": coll.urn}),
        on="h3",
    )
    env.run(until=env.sim.now + 1.5)  # original makes progress, stays alive

    def respawn(program="worker"):
        return TaskSpec(program=program,
                        params={"total": 40, "ckpt_every": 5,
                                "collector_urn": coll.urn},
                        urn_override=work.urn, fence_predecessors=True)

    def duplicate_spawns(sim):
        # What the retry race produces: the same recovery's spec landing
        # on two daemons, back to back.
        yield sim.process(env.daemons["h4"]._spawn_fenced(respawn()))
        yield sim.process(env.daemons["h2"]._spawn_fenced(respawn()))

    env.run(until=env.sim.process(duplicate_spawns(env.sim)))
    inc_first = env.daemons["h4"].contexts[work.urn].incarnation
    inc_last = env.daemons["h2"].contexts[work.urn].incarnation
    assert inc_last > inc_first
    env.run(until=60.0)

    # The last starter owns the URN; everyone earlier was fenced, quietly.
    assert env.daemons["h2"].tasks[work.urn].state == TaskState.EXITED
    for loser in ("h3", "h4"):
        info = env.daemons[loser].tasks[work.urn]
        assert info.fenced and info.state == TaskState.KILLED
    dones = [inc for tag, _, inc in received if tag == "done"]
    assert dones == [inc_last]


def test_crash_recovery_inside_partition_eventually_publishes_deaths():
    """A host that crashes and reboots *inside* a partition cannot reach
    the catalog to report its dead tasks. The daemon must keep retrying
    after the partition heals — otherwise the ghost RUNNING record plus
    the rebooted host's healthy lease convince every Guardian the task is
    fine, forever."""
    env = SnipeEnvironment(seed=13)
    env.add_segment("core")
    env.add_segment("edge")
    for name in ("h0", "h1", "h2"):
        env.add_host(name, segments=["core"])
    env.add_host("gw", segments=["core", "edge"], forwarding=True)
    env.add_host("w", segments=["edge"])
    env.add_rc_servers(["h0", "h1", "h2"])
    for name in ("h0", "h1", "h2", "gw", "w"):
        env.boot_daemon(name)
    env.add_rm("h0")
    env.add_file_server("h0")
    env.add_file_server("h1")
    env.add_guardian("h1")
    env.add_guardian("h2")
    received = []

    @env.program("collector")
    def collector(ctx):
        while True:
            msg = yield ctx.recv()
            received.append((msg.tag, msg.payload, msg.src_inc))

    @env.program("worker")
    def worker(ctx, total, ckpt_every, collector_urn):
        i = ctx.checkpoint_state.get("i", 0)
        while i < total:
            yield ctx.compute(0.2)
            i += 1
            ctx.checkpoint_state["i"] = i
            yield ctx.send(collector_urn, {"i": i, "inc": ctx.incarnation}, tag="progress")
            if i % ckpt_every == 0:
                yield checkpoint_to_files(ctx)
        yield ctx.send(collector_urn, {"inc": ctx.incarnation}, tag="done")
        return i

    env.settle(2.0)
    coll = env.spawn(TaskSpec(program="collector"), on="h0")
    work = env.spawn(
        TaskSpec(program="worker",
                 params={"total": 30, "ckpt_every": 5, "collector_urn": coll.urn}),
        on="w",
    )
    t0 = env.sim.now
    # Cut w off, then crash-and-reboot it while the cut is still up: the
    # reboot lands with a dead task to report and no catalog in sight.
    env.failures.partition_at(t0 + 1.6, ["w"], ["h0", "h1", "h2", "gw"],
                              duration=12.0)
    env.failures.host_down_at(t0 + 2.0, "w", duration=2.0)
    env.run(until=90.0)

    assert env.daemons["w"]._unpublished == set()
    recs = all_recoveries(env)
    assert len(recs) == 1 and recs[0]["from"] == "w"
    dones = [inc for tag, _, inc in received if tag == "done"]
    assert dones == [recs[0]["new_inc"]]


def test_dead_task_without_checkpoint_is_recorded_unrecoverable():
    env, _ = healing_env(seed=5)

    @env.program("sleeper")
    def sleeper(ctx):
        while True:
            yield ctx.sleep(1.0)

    info = env.spawn(TaskSpec(program="sleeper"), on="h3")
    env.failures.host_down_at(env.sim.now + 1.0, "h3")
    env.run(until=20.0)
    assert not all_recoveries(env)
    unrecoverable = {}
    for g in env.guardians.values():
        unrecoverable.update(g.unrecoverable)
    assert unrecoverable.get(info.urn) == "h3"
