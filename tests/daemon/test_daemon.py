"""Unit/integration tests for the per-host SNIPE daemon."""

import pytest

from repro.daemon import ProgramRegistry, TaskSpec, TaskState
from repro.daemon.daemon import DAEMON_PORT, SpawnError
from repro.rpc import RpcClient

from .conftest import make_site


def simple_programs():
    programs = ProgramRegistry()

    def worker(ctx, rounds=3, cost=0.1):
        for _ in range(rounds):
            yield ctx.compute(cost)
        return "done"

    def crasher(ctx):
        yield ctx.compute(0.1)
        raise RuntimeError("task bug")

    def sleeper(ctx, duration=100.0):
        yield ctx.sleep(duration)
        return "woke"

    def signal_echo(ctx):
        sig = yield ctx.next_signal()
        return f"got:{sig}"

    programs.register("worker", worker)
    programs.register("crasher", crasher)
    programs.register("sleeper", sleeper)
    programs.register("signal-echo", signal_echo)
    return programs


def test_spawn_runs_to_completion():
    (sim, topo, hosts, daemons, clients) = make_site(programs=simple_programs())
    info = daemons[1].spawn(TaskSpec(program="worker", params={"rounds": 2, "cost": 0.5}))
    assert info.state == TaskState.RUNNING
    sim.run(until=5.0)
    assert info.state == TaskState.EXITED
    assert info.exit_value == "done"
    assert info.cpu_used == pytest.approx(1.0)


def test_unknown_program_rejected():
    (sim, topo, hosts, daemons, clients) = make_site(programs=simple_programs())
    with pytest.raises(SpawnError, match="unknown program"):
        daemons[0].spawn(TaskSpec(program="nope"))


def test_requirements_mismatch_rejected():
    (sim, topo, hosts, daemons, clients) = make_site(programs=simple_programs())
    with pytest.raises(SpawnError, match="arch"):
        daemons[0].spawn(TaskSpec(program="worker", arch="sparc"))
    with pytest.raises(SpawnError, match="memory"):
        daemons[0].spawn(TaskSpec(program="worker", min_memory=1e9))


def test_crash_marks_failed():
    (sim, topo, hosts, daemons, clients) = make_site(programs=simple_programs())
    info = daemons[0].spawn(TaskSpec(program="crasher"))
    sim.run(until=2.0)
    assert info.state == TaskState.FAILED
    assert "task bug" in info.error


def test_cpu_quota_kills_task():
    (sim, topo, hosts, daemons, clients) = make_site(programs=simple_programs())
    info = daemons[0].spawn(
        TaskSpec(program="worker", params={"rounds": 100, "cost": 0.1}, cpu_quota=0.5)
    )
    sim.run(until=10.0)
    assert info.state == TaskState.KILLED
    assert "quota" in info.error
    assert daemons[0].violations and daemons[0].violations[0][2] == "cpu-quota"


def test_kill_interrupts_sleeper():
    (sim, topo, hosts, daemons, clients) = make_site(programs=simple_programs())
    info = daemons[0].spawn(TaskSpec(program="sleeper"))
    sim.run(until=1.0)
    assert daemons[0].kill(info.urn, reason="operator")
    sim.run(until=2.0)
    assert info.state == TaskState.KILLED
    assert "operator" in info.error


def test_suspend_delays_compute_resume_continues():
    (sim, topo, hosts, daemons, clients) = make_site(programs=simple_programs())
    info = daemons[0].spawn(TaskSpec(program="worker", params={"rounds": 4, "cost": 1.0}))
    sim.run(until=1.5)  # mid second round
    assert daemons[0].suspend(info.urn)
    assert info.state == TaskState.SUSPENDED
    sim.run(until=10.0)
    assert info.state == TaskState.SUSPENDED  # no progress while suspended
    daemons[0].resume(info.urn)
    sim.run(until=20.0)
    assert info.state == TaskState.EXITED


def test_signal_delivery_via_rpc():
    (sim, topo, hosts, daemons, clients) = make_site(programs=simple_programs())
    info = daemons[2].spawn(TaskSpec(program="signal-echo"))
    client = RpcClient(hosts[0])

    def go(sim):
        ok = yield client.call("h2", DAEMON_PORT, "daemon.signal", urn=info.urn, signal="SIGUSR1")
        return ok

    p = sim.process(go(sim))
    assert sim.run(until=p) is True
    sim.run(until=sim.now + 1.0)
    assert info.exit_value == "got:SIGUSR1"


def test_remote_spawn_via_rpc():
    (sim, topo, hosts, daemons, clients) = make_site(programs=simple_programs())
    client = RpcClient(hosts[0])

    def go(sim):
        result = yield client.call(
            "h3", DAEMON_PORT, "daemon.spawn",
            spec=TaskSpec(program="worker", params={"rounds": 1, "cost": 0.1}),
        )
        yield sim.timeout(1.0)
        status = yield client.call("h3", DAEMON_PORT, "daemon.status", urn=result["urn"])
        return status

    p = sim.process(go(sim))
    status = sim.run(until=p)
    assert status["state"] == TaskState.EXITED
    assert status["exit_value"] == "done"


def test_host_crash_kills_all_tasks():
    (sim, topo, hosts, daemons, clients) = make_site(programs=simple_programs())
    infos = [daemons[1].spawn(TaskSpec(program="sleeper")) for _ in range(3)]
    sim.run(until=1.0)
    hosts[1].crash()
    sim.run(until=2.0)
    assert all(i.state == TaskState.KILLED for i in infos)
    assert all("host-crash" in i.error for i in infos)


def test_process_state_published_to_rc():
    (sim, topo, hosts, daemons, clients) = make_site(programs=simple_programs())
    info = daemons[1].spawn(TaskSpec(program="worker", params={"rounds": 1, "cost": 0.1}))
    sim.run(until=3.0)

    def check(sim):
        got = yield clients[0].lookup(info.urn)
        return got

    p = sim.process(check(sim))
    got = sim.run(until=p)
    assert got["state"]["value"] == TaskState.EXITED
    assert got["host"]["value"] == "h1"
    assert got["supervisor"]["value"] == "snipe://h1/daemon"


def test_host_metadata_registered_with_interfaces():
    (sim, topo, hosts, daemons, clients) = make_site(programs=simple_programs())
    sim.run(until=2.0)

    def check(sim):
        return (yield clients[3].lookup("snipe://h1/"))

    got = sim.run(until=sim.process(check(sim)))
    assert got["daemon"]["value"] == "snipe://h1/daemon"
    ifaces = got["interfaces"]["value"]
    assert "if0" in ifaces and ifaces["if0"]["net-name"] == "lan"
    assert got["load"]["value"] == 0.0  # load loop published


def test_notify_list_informs_watcher():
    """A watcher task is told when the watched task exits (§5.2.3)."""
    programs = simple_programs()
    results = {}

    def watcher(ctx):
        event = yield ctx.next_notification()
        results["event"] = event
        return "notified"

    programs.register("watcher", watcher)
    (sim, topo, hosts, daemons, clients) = make_site(programs=programs)
    w_info = daemons[2].spawn(TaskSpec(program="watcher"))
    t_info = daemons[1].spawn(TaskSpec(program="sleeper", params={"duration": 3.0}))

    def wire(sim):
        # Watcher metadata must exist (host) and target carries notify-list.
        yield clients[0].update(t_info.urn, {"notify-list": [w_info.urn]})
        return None

    sim.run(until=sim.process(wire(sim)))
    sim.run(until=20.0)
    assert results["event"]["urn"] == t_info.urn
    assert results["event"]["state"] == TaskState.EXITED


def test_daemon_load_reporting():
    (sim, topo, hosts, daemons, clients) = make_site(programs=simple_programs())
    daemons[0].spawn(TaskSpec(program="sleeper"))
    daemons[0].spawn(TaskSpec(program="sleeper"))
    client = RpcClient(hosts[1])

    def go(sim):
        return (yield client.call("h0", DAEMON_PORT, "daemon.load"))

    load = sim.run(until=sim.process(go(sim)))
    assert load["tasks"] == 2
    assert load["load"] == 2.0  # 2 tasks / 1 cpu
