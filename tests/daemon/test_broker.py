"""Tests for broker referral (§5.5).

    "If the RC metadata for a host contains a list of brokers, the
    request to spawn is sent to one of the brokers for that host.
    Otherwise, the request is sent to the host daemon. The host daemon
    may handle the request itself, or refer the request to a broker."
"""


from repro.daemon import TaskSpec
from repro.daemon.daemon import DAEMON_PORT
from repro.rm import ResourceManager
from repro.rpc import RpcClient, RpcError

from .conftest import make_site
from ..rm.test_rm import programs_with_worker


def broker_site():
    (sim, topo, hosts, daemons, clients) = make_site(
        n_hosts=4, programs=programs_with_worker()
    )
    broker = ResourceManager(hosts[0], clients[0], port=3600)
    daemons[2].set_brokers([("h0", 3600)])
    sim.run(until=3.0)
    return sim, topo, hosts, daemons, clients, broker


def test_spawn_request_referred_to_broker():
    sim, topo, hosts, daemons, clients, broker = broker_site()
    client = RpcClient(hosts[3])
    p = client.call("h2", DAEMON_PORT, "daemon.spawn",
                    spec=TaskSpec(program="worker", params={"rounds": 1}))
    result = sim.run(until=p)
    assert result["via_broker"] == "h0:3600"
    assert broker.requests == 1
    # The broker placed it (on the least-loaded host, not necessarily h2).
    assert result["urn"].startswith("urn:snipe:proc:worker")


def test_direct_flag_bypasses_broker():
    sim, topo, hosts, daemons, clients, broker = broker_site()
    client = RpcClient(hosts[3])
    p = client.call("h2", DAEMON_PORT, "daemon.spawn",
                    spec=TaskSpec(program="worker", params={"rounds": 1}), direct=True)
    result = sim.run(until=p)
    assert "via_broker" not in result
    assert broker.requests == 0
    assert result["urn"] in daemons[2].tasks


def test_brokers_advertised_in_host_metadata():
    sim, topo, hosts, daemons, clients, broker = broker_site()
    sim.run(until=sim.now + 1.0)

    def check(sim):
        meta = yield clients[3].lookup("snipe://h2/")
        return (meta.get("brokers") or {}).get("value")

    assert sim.run(until=sim.process(check(sim))) == ["h0:3600"]


def test_dead_broker_spawn_fails():
    sim, topo, hosts, daemons, clients, broker = broker_site()
    hosts[0].crash()
    client = RpcClient(hosts[3])
    p = client.call("h2", DAEMON_PORT, "daemon.spawn",
                    spec=TaskSpec(program="worker"), timeout=8.0)

    def go(sim):
        try:
            yield p
        except RpcError as exc:
            return str(exc)

    result = sim.run(until=sim.process(go(sim)))
    assert "brokers unreachable" in result
