"""Fixtures: a small SNIPE site with RC servers and daemons on every host."""

import pytest

from repro.daemon import McastService, ProgramRegistry, SnipeDaemon
from repro.rcds import RCClient, RCServer

from ..transport.conftest import make_lan


def make_site(n_hosts=4, n_rc=1, seed=0, programs=None, mcast=False, **daemon_kw):
    """LAN of n hosts; RC replicas on the first n_rc; a daemon everywhere.

    Returns (sim, topo, hosts, daemons, rc_clients_by_host).
    """
    sim, topo, hosts = make_lan(n_hosts=n_hosts, seed=seed)
    replicas = [(f"h{i}", 385) for i in range(n_rc)]
    for i in range(n_rc):
        RCServer(hosts[i], peers=[r for r in replicas if r[0] != f"h{i}"])
    programs = programs or ProgramRegistry()
    daemons = []
    clients = []
    for h in hosts:
        rc = RCClient(h, replicas, rpc_timeout=0.5)
        daemon = SnipeDaemon(h, rc, programs, **daemon_kw)
        if mcast:
            McastService(daemon)
        daemons.append(daemon)
        clients.append(rc)
    return sim, topo, hosts, daemons, clients


@pytest.fixture
def site():
    programs = ProgramRegistry()
    return make_site(programs=programs), programs
