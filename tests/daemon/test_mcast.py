"""Tests for wide-area multicast: election, majority registration, delivery."""

import pytest

from repro.daemon import ProgramRegistry
from repro.daemon.mcast import MAJORITY, SINGLE

from .conftest import make_site


def mcast_site(n_hosts=6, seed=0):
    # Three RC replicas: router-failure tests crash a host that carries
    # one replica, and the metadata service must survive that (the whole
    # point of SNIPE's replication).
    sim, topo, hosts, daemons, clients = make_site(
        n_hosts=n_hosts, n_rc=3, seed=seed, programs=ProgramRegistry(), mcast=True
    )
    return sim, topo, hosts, daemons


def run_gen(sim, gen):
    return sim.run(until=sim.process(gen))


def test_first_joiners_elect_themselves_routers():
    sim, topo, hosts, daemons = mcast_site()

    def go(sim):
        for i in range(4):
            yield daemons[i].mcast.join("g1", f"urn:snipe:proc:m{i}")
        return None

    run_gen(sim, go(sim))
    routers = [d.host.name for d in daemons if "g1" in d.mcast.router_state]
    # min_routers=3: the first three joiners elect themselves; the fourth
    # sees a provisioned group on its own segment and does not.
    assert len(routers) == 3


def test_message_reaches_every_member():
    sim, topo, hosts, daemons = mcast_site()
    got = {}

    def go(sim):
        for i in range(5):
            yield daemons[i].mcast.join("g", f"urn:snipe:proc:m{i}")
        yield daemons[0].mcast.send("g", {"data": 123}, "urn:snipe:proc:m0")
        yield sim.timeout(2.0)
        for i in range(5):
            ok, msg = daemons[i].mcast.inboxes[("g", f"urn:snipe:proc:m{i}")].try_get()
            got[i] = msg["payload"] if ok else None
        return None

    run_gen(sim, go(sim))
    assert got == {i: {"data": 123} for i in range(5)}


def test_no_duplicate_delivery_despite_flooding():
    sim, topo, hosts, daemons = mcast_site()

    def go(sim):
        for i in range(4):
            yield daemons[i].mcast.join("g", f"urn:snipe:proc:m{i}")
        yield daemons[1].mcast.send("g", "only-once", "urn:snipe:proc:m1")
        yield sim.timeout(2.0)
        counts = {}
        for i in range(4):
            inbox = daemons[i].mcast.inboxes[("g", f"urn:snipe:proc:m{i}")]
            n = 0
            while inbox.try_get()[0]:
                n += 1
            counts[i] = n
        return counts

    counts = run_gen(sim, go(sim))
    assert counts == {0: 1, 1: 1, 2: 1, 3: 1}


def test_majority_survives_minority_router_failure():
    """Kill <½ of the routers: every member still gets the message (E7)."""
    sim, topo, hosts, daemons = mcast_site()

    def go(sim):
        for i in range(6):
            yield daemons[i].mcast.join("g", f"urn:snipe:proc:m{i}", mode=MAJORITY)
        # Routers are h0,h1,h2; kill one (minority of 3).
        hosts[0].crash()
        yield daemons[4].mcast.send("g", "survives", "urn:snipe:proc:m4", mode=MAJORITY)
        yield sim.timeout(3.0)
        delivered = []
        for i in range(1, 6):  # h0 is dead; its member doesn't count
            ok, msg = daemons[i].mcast.inboxes[("g", f"urn:snipe:proc:m{i}")].try_get()
            if ok:
                delivered.append(i)
        return delivered

    delivered = run_gen(sim, go(sim))
    assert delivered == [1, 2, 3, 4, 5]


def test_single_registration_loses_members_on_router_failure():
    """The E7 baseline: members registered with one router go dark when it dies."""
    sim, topo, hosts, daemons = mcast_site()

    def go(sim):
        for i in range(6):
            yield daemons[i].mcast.join("g", f"urn:snipe:proc:m{i}", mode=SINGLE)
        hosts[0].crash()  # routers sorted -> single mode registers with h0
        yield daemons[4].mcast.send("g", "lost?", "urn:snipe:proc:m4", mode=MAJORITY)
        yield sim.timeout(3.0)
        delivered = []
        for i in range(1, 6):
            ok, _ = daemons[i].mcast.inboxes[("g", f"urn:snipe:proc:m{i}")].try_get()
            if ok:
                delivered.append(i)
        return delivered

    delivered = run_gen(sim, go(sim))
    # Everybody registered only with the dead router: nobody hears it
    # (except members on surviving routers' own lists — there are none).
    assert delivered == []


def test_leave_stops_delivery():
    sim, topo, hosts, daemons = mcast_site()

    def go(sim):
        for i in range(3):
            yield daemons[i].mcast.join("g", f"urn:snipe:proc:m{i}")
        yield daemons[1].mcast.leave("g", "urn:snipe:proc:m1")
        yield daemons[0].mcast.send("g", "post-leave", "urn:snipe:proc:m0")
        yield sim.timeout(2.0)
        return ("g", "urn:snipe:proc:m1") in daemons[1].mcast.inboxes

    assert run_gen(sim, go(sim)) is False


def test_recv_unjoined_group_raises():
    sim, topo, hosts, daemons = mcast_site()
    with pytest.raises(KeyError):
        daemons[0].mcast.recv("nope", "urn:snipe:proc:x")


def test_router_change_notifies_watchers():
    """§5.2.4: processes on the group's notify list hear about new routers."""
    from repro.core import SnipeEnvironment

    env = SnipeEnvironment.lan_site(n_hosts=5, n_rc=3, seed=4)
    events = []

    @env.program("watcher")
    def watcher(ctx):
        # Register interest in the group's router set.
        from repro.rcds import uri as uri_mod

        yield ctx.publish({"notify-list": [ctx.urn]}, uri=uri_mod.mcast_urn("g"))
        event = yield ctx.next_notification()
        events.append(event)
        return event["kind"]

    @env.program("joiner")
    def joiner(ctx):
        yield ctx.sleep(2.0)  # after the watcher registered
        yield ctx.join_group("g")
        return "joined"

    env.spawn("watcher", on="h3")
    env.settle(0.5)
    env.spawn("joiner", on="h1")
    env.run(until=30.0)
    assert events and events[0]["kind"] == "router-change"
    assert events[0]["group"] == "g"
    assert events[0]["added"] == "h1"
