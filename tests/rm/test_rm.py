"""Tests for resource managers: selection, modes, goals, redundancy, migration."""


from repro.daemon import ProgramRegistry, TaskSpec, TaskState
from repro.rm import AllocationError, ResourceManager, RmClient
from repro.rm.selection import rank_hosts

from ..daemon.conftest import make_site


def programs_with_worker():
    programs = ProgramRegistry()

    def worker(ctx, rounds=10, cost=0.5):
        for _ in range(rounds):
            yield ctx.compute(cost)
        return "done"

    def stateful(ctx, total=20):
        # Migratable: progress lives in checkpoint_state.
        i = ctx.checkpoint_state.get("i", 0)
        while i < total:
            yield ctx.compute(0.2)
            i += 1
            ctx.checkpoint_state["i"] = i
        return i

    programs.register("worker", worker)
    programs.register("stateful", stateful)
    return programs


def rm_site(n_hosts=5, n_rms=1, seed=0, **rm_kw):
    (sim, topo, hosts, daemons, clients) = make_site(
        n_hosts=n_hosts, n_rc=1, seed=seed, programs=programs_with_worker()
    )
    rms = []
    for i in range(n_rms):
        rm_host = hosts[i]
        rms.append(ResourceManager(rm_host, clients[i], port=3600 + i, **rm_kw))
    sim.run(until=3.0)  # daemons register host metadata + load
    return sim, topo, hosts, daemons, clients, rms


def run_gen(sim, gen):
    return sim.run(until=sim.process(gen))


def test_rank_hosts_prefers_low_load():
    spec = TaskSpec(program="worker")
    metadata = {
        "busy": {"arch": {"value": "x86"}, "load": {"value": 5.0}, "memory": {"value": 1024}},
        "idle": {"arch": {"value": "x86"}, "load": {"value": 0.0}, "memory": {"value": 1024}},
    }
    assert rank_hosts(spec, metadata) == ["idle", "busy"]


def test_rank_hosts_filters_requirements():
    spec = TaskSpec(program="worker", arch="sparc", min_memory=512)
    metadata = {
        "wrong-arch": {"arch": {"value": "x86"}, "memory": {"value": 1024}},
        "small": {"arch": {"value": "sparc"}, "memory": {"value": 128}},
        "good": {"arch": {"value": "sparc"}, "memory": {"value": 1024}},
    }
    assert rank_hosts(spec, metadata) == ["good"]


def test_active_request_spawns_on_least_loaded():
    sim, topo, hosts, daemons, clients, rms = rm_site()
    # Pre-load h1 and h2 with tasks so h3/h4 are the idle ones.
    daemons[1].spawn(TaskSpec(program="worker"))
    daemons[2].spawn(TaskSpec(program="worker"))
    sim.run(until=sim.now + 3.0)  # load gauges refresh
    rmc = RmClient(hosts[4], clients[4])

    def go(sim):
        return (yield rmc.request(TaskSpec(program="worker", params={"rounds": 1})))

    result = run_gen(sim, go(sim))
    assert result["mode"] == "active"
    assert result["host"] in ("h0", "h3", "h4")  # the unloaded hosts
    assert result["urn"].startswith("urn:snipe:proc:worker")


def test_passive_request_reserves_without_spawning():
    sim, topo, hosts, daemons, clients, rms = rm_site(mode="passive")
    rmc = RmClient(hosts[4], clients[4])

    def go(sim):
        return (yield rmc.request(TaskSpec(program="worker")))

    result = run_gen(sim, go(sim))
    assert result["mode"] == "passive"
    assert result["urn"] is None if "urn" in result else True
    # Nothing was spawned anywhere.
    assert all(len(d.tasks) == 0 for d in daemons)


def test_allocation_goal_enforced():
    sim, topo, hosts, daemons, clients, rms = rm_site(goals={"alice": 2})
    rmc = RmClient(hosts[4], clients[4])

    def go(sim):
        for _ in range(2):
            yield rmc.request(TaskSpec(program="worker"), owner="alice")
        try:
            yield rmc.request(TaskSpec(program="worker"), owner="alice")
        except AllocationError as exc:
            return str(exc)
        return "no-error"

    assert "allocation goal" in run_gen(sim, go(sim))


def test_impossible_requirements_rejected():
    sim, topo, hosts, daemons, clients, rms = rm_site()
    rmc = RmClient(hosts[4], clients[4])

    def go(sim):
        try:
            yield rmc.request(TaskSpec(program="worker", arch="cray"))
        except AllocationError as exc:
            return str(exc)

    assert "no host satisfies" in run_gen(sim, go(sim))


def test_redundant_rms_failover():
    """Kill one RM: requests keep being served by the other (§3)."""
    sim, topo, hosts, daemons, clients, rms = rm_site(n_rms=2)
    rmc = RmClient(hosts[4], clients[4])

    def go(sim):
        first = yield rmc.request(TaskSpec(program="worker", params={"rounds": 1}))
        hosts[0].crash()  # kills RM 0 (and RC? no - RC is also h0!)
        return first

    # RC replica is on h0 too; use a site where RM hosts differ from RC.
    # Simpler: don't crash h0 — crash via closing rm 0's rpc instead.
    rms[0].rpc.close()

    def go2(sim):
        result = yield rmc.request(TaskSpec(program="worker", params={"rounds": 1}))
        return result

    result = run_gen(sim, go2(sim))
    assert result["mode"] == "active"
    assert rmc.failovers <= 1  # at most one failed attempt before success


def test_rm_kill_via_catalog_lookup():
    sim, topo, hosts, daemons, clients, rms = rm_site()
    rmc = RmClient(hosts[4], clients[4])

    def go(sim):
        result = yield rmc.request(TaskSpec(program="worker", params={"rounds": 100}))
        yield sim.timeout(2.0)
        yield rmc._rpc.call(rms[0].host.name, rms[0].port, "rm.kill", urn=result["urn"])
        yield sim.timeout(1.0)
        host_idx = int(result["host"][1:])
        return daemons[host_idx].tasks[result["urn"]].state

    assert run_gen(sim, go(sim)) == TaskState.KILLED


def test_rm_migration_preserves_urn_and_state():
    """RM-initiated migration: checkpoint, respawn elsewhere, same URN."""
    sim, topo, hosts, daemons, clients, rms = rm_site()
    rmc = RmClient(hosts[4], clients[4])

    def go(sim):
        result = yield rmc.request(TaskSpec(program="stateful", params={"total": 30}))
        yield sim.timeout(2.0)  # makes some progress (~10 steps)
        moved = yield rmc.migrate(result["urn"])
        yield sim.timeout(60.0)  # finish on the new host
        return result, moved

    result, moved = run_gen(sim, go(sim))
    assert moved["urn"] == result["urn"]
    assert moved["from"] == result["host"]
    assert moved["to"] != moved["from"]
    old_idx, new_idx = int(moved["from"][1:]), int(moved["to"][1:])
    assert daemons[old_idx].tasks[result["urn"]].state == TaskState.MIGRATED
    new_info = daemons[new_idx].tasks[result["urn"]]
    assert new_info.state == TaskState.EXITED
    assert new_info.exit_value == 30  # finished the FULL count across hosts
    # It resumed from the checkpoint, not from zero: total CPU across both
    # hosts is ~30 steps worth, not ~60.
    assert (new_info.spec.initial_state or {}).get("i", 0) > 0


def test_rank_hosts_skips_lapsed_leases():
    """Placement must avoid hosts whose heartbeat lease has expired."""
    spec = TaskSpec(program="worker")
    metadata = {
        "fresh": {"arch": {"value": "x86"}, "load": {"value": 2.0},
                  "memory": {"value": 1024}, "lease-expires": {"value": 100.0}},
        "stale": {"arch": {"value": "x86"}, "load": {"value": 0.0},
                  "memory": {"value": 1024}, "lease-expires": {"value": 9.0}},
        "legacy": {"arch": {"value": "x86"}, "load": {"value": 1.0},
                   "memory": {"value": 1024}},  # no lease key: kept
    }
    assert rank_hosts(spec, metadata, now=10.0) == ["legacy", "fresh"]
    # Without a clock, leases are ignored (backward compatible).
    assert rank_hosts(spec, metadata) == ["stale", "legacy", "fresh"]


def test_rm_request_avoids_crashed_host():
    """End to end: a crashed host's lease lapses, so an RM placing a new
    task picks a live host even though the corpse's metadata looks idle."""
    sim, topo, hosts, daemons, clients, rms = rm_site(n_hosts=3)
    topo.hosts["h2"].crash()
    sim.run(until=sim.now + 6.0)  # h2's lease (3s) lapses
    rm_client = RmClient(hosts[0], clients[0])
    spec = TaskSpec(program="worker", params={"rounds": 1, "cost": 0.1})
    result = sim.run(until=rm_client.request(spec))
    assert result["host"] != "h2"
