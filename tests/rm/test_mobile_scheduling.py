"""RM scheduling of mobile code onto playground hosts (§5.8)."""

import random


from repro.core import SnipeEnvironment
from repro.daemon import TaskSpec, TaskState
from repro.playground import Playground, sign_mobile_code
from repro.rm.selection import rank_hosts
from repro.security import TrustPolicy, generate_keypair

SIGNER = "urn:snipe:user:vendor"


def test_rank_hosts_requires_playground_for_mobile_code():
    spec = TaskSpec(program="mobile", mobile_code="x.code")
    metadata = {
        "plain": {"arch": {"value": "x86"}, "memory": {"value": 1024}},
        "sandboxed": {
            "arch": {"value": "x86"},
            "memory": {"value": 1024},
            "playground": {"value": {"languages": ["snipescript"], "quotas": True}},
        },
    }
    assert rank_hosts(spec, metadata) == ["sandboxed"]
    # Ordinary specs are indifferent to playgrounds.
    assert set(rank_hosts(TaskSpec(program="p"), metadata)) == {"plain", "sandboxed"}


def test_rm_routes_mobile_code_to_playground_hosts():
    env = SnipeEnvironment.lan_site(n_hosts=5, n_rc=3, n_rm=1, n_fs=1, seed=9)
    keys = generate_keypair(random.Random(5))
    trust = TrustPolicy()
    trust.pin_key(SIGNER, keys.public)
    trust.trust(SIGNER, "sign-code")
    # Playgrounds only on h3 and h4.
    for name in ("h3", "h4"):
        Playground(env.daemons[name], trust, grants={SIGNER: set()})
    env.settle(3.0)

    fc = env.file_client("h0")
    bundle = sign_mobile_code("emit 7;", SIGNER, keys, ())

    def publish(sim):
        yield fc.write("agent.code", bundle, 1_000)

    env.run(until=env.sim.process(publish(env.sim)))
    rmc = env.rm_client("h1")

    def request(sim):
        return (
            yield rmc.request(TaskSpec(program="mobile", mobile_code="agent.code"))
        )

    result = env.run(until=env.sim.process(request(env.sim)))
    assert result["host"] in ("h3", "h4")  # never a playground-less host
    env.run(until=env.sim.now + 30.0)
    host = result["host"]
    assert env.daemons[host].tasks[result["urn"]].state == TaskState.EXITED
    assert env.daemons[host].tasks[result["urn"]].exit_value == [7]
