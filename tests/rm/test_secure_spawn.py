"""End-to-end tests of the §4 secure-spawn flow."""

import random

import pytest

from repro.daemon import TaskSpec, TaskState
from repro.rcds import uri as uri_mod
from repro.rm import ResourceManager
from repro.rm.secure import SecureSpawner, require_spawn_authorization
from repro.rpc import RpcClient, RpcError
from repro.security import generate_keypair, issue_attestation, issue_grant

from ..daemon.conftest import make_site
from ..rm.test_rm import programs_with_worker

RM_URN = "urn:snipe:svc:rm"
USER = "urn:snipe:user:alice"


def secure_site(use_sessions=False, seed=0):
    (sim, topo, hosts, daemons, clients) = make_site(
        n_hosts=4, seed=seed, programs=programs_with_worker()
    )
    rng = random.Random(321)
    rm_keys = generate_keypair(rng)
    user_keys = generate_keypair(rng)
    host_keys = {uri_mod.host_url(h.name): generate_keypair(rng) for h in hosts}
    rm = ResourceManager(hosts[0], clients[0])
    spawner = SecureSpawner(
        rm, RM_URN, rm_keys,
        user_keys={USER: user_keys.public},
        host_keys={url: kp.public for url, kp in host_keys.items()},
        permissions={USER: {"cpu", "memory"}},
        use_sessions=use_sessions,
    )
    for daemon in daemons:
        require_spawn_authorization(daemon, RM_URN, rm_keys.public)
    sim.run(until=3.0)
    return sim, hosts, daemons, rm, spawner, user_keys, host_keys


def request(sim, rm, spec, grant, attestation, client_host):
    client = RpcClient(client_host)
    p = client.call(rm.host.name, rm.port, "rm.secure_request",
                    spec=spec, grant=grant, attestation=attestation)
    return sim.run(until=p)


def make_credentials(user_keys, host_keys, host="h2", process="urn:snipe:proc:sim.1",
                     resources=("cpu",)):
    host_url = uri_mod.host_url(host)
    grant = issue_grant(USER, user_keys, process, host_url, tuple(resources))
    att = issue_attestation(host_url, host_keys[host_url], process, tuple(resources))
    return grant, att


def test_authorized_spawn_succeeds():
    sim, hosts, daemons, rm, spawner, user_keys, host_keys = secure_site()
    grant, att = make_credentials(user_keys, host_keys)
    result = request(sim, rm, TaskSpec(program="worker", params={"rounds": 1}),
                     grant, att, hosts[3])
    assert result["urn"] == "urn:snipe:proc:sim.1"
    sim.run(until=sim.now + 5.0)
    assert daemons[2].tasks["urn:snipe:proc:sim.1"].state == TaskState.EXITED
    assert spawner.signatures_issued == 1


def test_unauthorized_direct_spawn_refused():
    sim, hosts, daemons, rm, spawner, user_keys, host_keys = secure_site()
    client = RpcClient(hosts[3])
    with pytest.raises(RpcError, match="requires a resource authorization"):
        sim.run(until=client.call("h2", 3500, "daemon.spawn",
                                  spec=TaskSpec(program="worker")))
    assert daemons[2].spawn_denials == 1


def test_forged_grant_denied_at_rm():
    sim, hosts, daemons, rm, spawner, user_keys, host_keys = secure_site()
    mallory = generate_keypair(random.Random(666))
    grant, att = make_credentials(mallory, host_keys)  # wrong user key
    with pytest.raises(RpcError, match="grant signature"):
        request(sim, rm, TaskSpec(program="worker"), grant, att, hosts[3])
    assert spawner.denials == 1


def test_ungraned_resources_denied():
    sim, hosts, daemons, rm, spawner, user_keys, host_keys = secure_site()
    grant, att = make_credentials(user_keys, host_keys, resources=("cpu", "raw-disk"))
    with pytest.raises(RpcError, match="lacks permission"):
        request(sim, rm, TaskSpec(program="worker"), grant, att, hosts[3])


def test_authorization_not_transferable_to_other_host():
    """An authorization for h2 must not spawn on h1."""
    sim, hosts, daemons, rm, spawner, user_keys, host_keys = secure_site()
    grant, att = make_credentials(user_keys, host_keys, host="h2")
    # A direct attempt to replay the spawn against h1's daemon:
    from repro.security.authz import authorize
    from repro.security.trust import TrustPolicy

    auth = authorize(RM_URN, spawner.manager_keys, TrustPolicy(), grant, att,
                     user_keys.public,
                     host_keys[uri_mod.host_url("h2")].public,
                     {"cpu", "memory"})
    client = RpcClient(hosts[3])
    spec = TaskSpec(program="worker", urn_override=grant.process)
    with pytest.raises(RpcError, match="different host"):
        sim.run(until=client.call("h1", 3500, "daemon.spawn",
                                  spec=spec, authorization=auth))


def test_session_mode_avoids_per_request_signatures():
    """§4: over an authenticated connection, authorizations travel
    without signatures — and tampering is still detected."""
    sim, hosts, daemons, rm, spawner, user_keys, host_keys = secure_site(
        use_sessions=True
    )
    for i in range(3):
        grant, att = make_credentials(
            user_keys, host_keys, process=f"urn:snipe:proc:sess.{i}"
        )
        result = request(sim, rm, TaskSpec(program="worker", params={"rounds": 1}),
                         grant, att, hosts[3])
        assert result["urn"] == f"urn:snipe:proc:sess.{i}"
    # RSA signatures were only used on the RM's own issued statements
    # (one per request, counted), but none crossed the wire — the daemon
    # accepted MAC-sealed bodies over the session.
    assert spawner.signatures_issued == 3
    assert len(spawner._sessions) == 1  # one handshake, reused
    # Replaying an old sealed message is rejected (sequence check).
    channel = spawner._sessions["h2"]
    stale = channel.seal({"manager": RM_URN, "process": "urn:snipe:proc:evil",
                          "host": uri_mod.host_url("h2"), "resources": []})
    client = RpcClient(hosts[3])
    spec = TaskSpec(program="worker", urn_override="urn:snipe:proc:evil")
    # Deliver it twice: first consumes the sequence number, second replays.
    tampered = dict(stale)
    tampered["body"] = {"manager": RM_URN, "process": "urn:snipe:proc:evil2",
                        "host": uri_mod.host_url("h2"), "resources": ["root"]}
    with pytest.raises(RpcError, match="rejected"):
        sim.run(until=client.call("h2", 3500, "daemon.spawn",
                                  spec=spec, sealed_authorization=tampered))
