"""Unit + property tests for RSA keys, hashes, and HMAC."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.security import content_hash, generate_keypair, hmac_tag, sign, verify, verify_hmac
from repro.security.hashes import canonical_bytes
from repro.security.keys import _is_probable_prime


def kp(seed=1):
    return generate_keypair(random.Random(seed))


def test_sign_verify_roundtrip():
    keys = kp()
    sig = sign(keys, b"hello snipe")
    assert verify(keys.public, b"hello snipe", sig)


def test_verify_rejects_tampered_message():
    keys = kp()
    sig = sign(keys, b"original")
    assert not verify(keys.public, b"tampered", sig)


def test_verify_rejects_wrong_key():
    sig = sign(kp(1), b"msg")
    assert not verify(kp(2).public, b"msg", sig)


def test_verify_none_key_is_false():
    assert not verify(None, b"msg", 123)


def test_keygen_deterministic_from_rng():
    assert kp(42) == kp(42)
    assert kp(42) != kp(43)


def test_fingerprint_stable_and_short():
    keys = kp()
    assert keys.fingerprint() == keys.public.fingerprint()
    assert len(keys.fingerprint()) == 16


def test_miller_rabin_agrees_on_small_numbers():
    rng = random.Random(0)
    primes = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47}
    for n in range(2, 50):
        assert _is_probable_prime(n, rng) == (n in primes)


@settings(max_examples=20)
@given(st.binary(max_size=200))
def test_sign_verify_any_message(message):
    keys = kp(7)
    assert verify(keys.public, message, sign(keys, message))


def test_canonical_bytes_dict_order_independent():
    a = {"x": 1, "y": {"b": 2, "a": 3}}
    b = {"y": {"a": 3, "b": 2}, "x": 1}
    assert canonical_bytes(a) == canonical_bytes(b)


def test_content_hash_differs_on_change():
    assert content_hash({"v": 1}) != content_hash({"v": 2})


def test_hmac_roundtrip_and_tamper():
    secret = b"shared"
    tag = hmac_tag(secret, {"op": "update"})
    assert verify_hmac(secret, {"op": "update"}, tag)
    assert not verify_hmac(secret, {"op": "delete"}, tag)
    assert not verify_hmac(b"wrong", {"op": "update"}, tag)


@given(st.dictionaries(st.text(max_size=8), st.integers(), max_size=6))
def test_content_hash_deterministic(d):
    assert content_hash(d) == content_hash(dict(reversed(list(d.items()))))
