"""Unit tests for authenticated session channels (hijack detection)."""

import random

import pytest

from repro.security import ChannelError, SecureChannel
from repro.security.channels import handshake


def pair(seed_a=1, seed_b=2):
    return handshake(random.Random(seed_a), random.Random(seed_b))


def test_seal_open_roundtrip():
    a, b = pair()
    sealed = a.seal({"authz": "grant-123"})
    assert b.open(sealed) == {"authz": "grant-123"}


def test_bidirectional_sequences_independent():
    a, b = pair()
    assert b.open(a.seal("a1")) == "a1"
    assert a.open(b.seal("b1")) == "b1"
    assert b.open(a.seal("a2")) == "a2"


def test_tampered_body_detected():
    a, b = pair()
    sealed = a.seal({"amount": 10})
    sealed["body"] = {"amount": 10_000}
    with pytest.raises(ChannelError, match="MAC"):
        b.open(sealed)


def test_replay_detected():
    a, b = pair()
    sealed = a.seal("once")
    b.open(sealed)
    with pytest.raises(ChannelError, match="sequence"):
        b.open(sealed)


def test_injection_without_key_detected():
    a, b = pair()
    mallory = SecureChannel(random.Random(666))
    mallory.establish(b.public)  # wrong shared secret: b used a's public
    with pytest.raises(ChannelError):
        b.open(mallory.seal("evil"))


def test_reordering_detected():
    a, b = pair()
    first = a.seal("1")
    second = a.seal("2")
    with pytest.raises(ChannelError, match="sequence"):
        b.open(second)
    b.open(first)  # still valid in order


def test_unestablished_channel_refuses():
    c = SecureChannel(random.Random(5))
    with pytest.raises(ChannelError):
        c.seal("x")
    with pytest.raises(ChannelError):
        c.open({"seq": 0, "body": "x", "mac": ""})
