"""Unit tests for certificates, trust policies, and the two-certificate
resource-access protocol of §4."""

import random

import pytest

from repro.security import (
    AuthorizationError,
    TrustPolicy,
    generate_keypair,
    issue_attestation,
    issue_grant,
    make_certificate,
    verify,
    verify_certificate,
)
from repro.security.authz import authorize


@pytest.fixture
def principals():
    rng = random.Random(99)
    return {
        name: generate_keypair(rng)
        for name in ("rm", "user", "host", "mallory")
    }


def test_certificate_roundtrip(principals):
    cert = make_certificate(
        "urn:snipe:svc:rm", principals["rm"], "urn:snipe:user:alice",
        principals["user"].public, {"realm": "utk.edu"},
    )
    assert verify_certificate(cert, principals["rm"].public)
    assert cert.subject_key == principals["user"].public
    assert cert.assertions["realm"] == "utk.edu"


def test_certificate_tamper_detected(principals):
    cert = make_certificate(
        "urn:snipe:svc:rm", principals["rm"], "urn:snipe:user:alice",
        principals["user"].public,
    )
    forged = type(cert)(
        subject="urn:snipe:user:mallory",
        assertions=cert.assertions,
        issuer=cert.issuer,
        issuer_fingerprint=cert.issuer_fingerprint,
        signature=cert.signature,
    )
    assert not verify_certificate(forged, principals["rm"].public)


def test_trust_policy_purpose_scoping(principals):
    policy = TrustPolicy()
    policy.pin_key("urn:snipe:svc:rm", principals["rm"].public)
    policy.trust("urn:snipe:svc:rm", "certify-user")
    cert = make_certificate(
        "urn:snipe:svc:rm", principals["rm"], "urn:snipe:user:alice",
        principals["user"].public,
    )
    assert policy.validate_certificate(cert, "certify-user")
    # Same issuer, untrusted purpose.
    assert not policy.validate_certificate(cert, "sign-code")


def test_trust_revocation(principals):
    policy = TrustPolicy()
    policy.pin_key("urn:snipe:svc:rm", principals["rm"].public)
    policy.trust("urn:snipe:svc:rm", "certify-user")
    cert = make_certificate(
        "urn:snipe:svc:rm", principals["rm"], "u", principals["user"].public
    )
    assert policy.validate_certificate(cert, "certify-user")
    policy.revoke("urn:snipe:svc:rm")
    assert not policy.validate_certificate(cert, "certify-user")


def test_untrusted_issuer_rejected(principals):
    policy = TrustPolicy()
    policy.pin_key("urn:snipe:svc:mallory", principals["mallory"].public)
    # mallory's key is pinned but never trusted for any purpose.
    cert = make_certificate(
        "urn:snipe:svc:mallory", principals["mallory"], "u", principals["user"].public
    )
    assert not policy.validate_certificate(cert, "certify-user")


def _setup(principals):
    grant = issue_grant(
        "urn:snipe:user:alice", principals["user"], "urn:snipe:proc:p1",
        "snipe://node1/", ("cpu", "disk"),
    )
    att = issue_attestation(
        "snipe://node1/", principals["host"], "urn:snipe:proc:p1", ("cpu", "disk")
    )
    return grant, att


def test_two_certificate_authorization_succeeds(principals):
    grant, att = _setup(principals)
    auth = authorize(
        "urn:snipe:svc:rm", principals["rm"], TrustPolicy(), grant, att,
        principals["user"].public, principals["host"].public,
        permitted_resources={"cpu", "disk", "net"},
    )
    assert auth.process == "urn:snipe:proc:p1"
    assert verify(principals["rm"].public, auth.body(), auth.signature)


def test_forged_grant_rejected(principals):
    grant, att = _setup(principals)
    with pytest.raises(AuthorizationError, match="grant signature"):
        authorize(
            "rm", principals["rm"], TrustPolicy(), grant, att,
            principals["mallory"].public,  # wrong user key
            principals["host"].public,
            permitted_resources={"cpu", "disk"},
        )


def test_mismatched_process_rejected(principals):
    grant, _ = _setup(principals)
    att = issue_attestation(
        "snipe://node1/", principals["host"], "urn:snipe:proc:OTHER", ("cpu", "disk")
    )
    with pytest.raises(AuthorizationError, match="disagree on process"):
        authorize(
            "rm", principals["rm"], TrustPolicy(), grant, att,
            principals["user"].public, principals["host"].public,
            permitted_resources={"cpu", "disk"},
        )


def test_host_cannot_inflate_resources(principals):
    grant, _ = _setup(principals)
    att = issue_attestation(
        "snipe://node1/", principals["host"], "urn:snipe:proc:p1",
        ("cpu", "disk", "root-fs"),
    )
    with pytest.raises(AuthorizationError, match="never granted"):
        authorize(
            "rm", principals["rm"], TrustPolicy(), grant, att,
            principals["user"].public, principals["host"].public,
            permitted_resources={"cpu", "disk", "root-fs"},
        )


def test_permission_check_enforced(principals):
    grant, att = _setup(principals)
    with pytest.raises(AuthorizationError, match="lacks permission"):
        authorize(
            "rm", principals["rm"], TrustPolicy(), grant, att,
            principals["user"].public, principals["host"].public,
            permitted_resources={"cpu"},  # disk not permitted
        )
