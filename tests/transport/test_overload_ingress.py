"""Bounded transport ingress: backpressure, lanes, and path quarantine."""

from repro.rpc import Request
from repro.transport import SrudpEndpoint
from repro.transport.multicast import EthernetMulticast

from .conftest import make_lan


def test_srudp_bounded_rx_backpressures_without_loss(lan):
    """A full bulk lane withholds the final ACK: the sender retransmits
    and every message is eventually delivered — bounded memory, no
    silent loss."""
    sim, topo, (a, b) = lan
    tx = SrudpEndpoint(a, 5000)
    rx = SrudpEndpoint(b, 5000, rx_capacity=1)
    got = []

    def slow_consumer():
        # Let the queue fill (and overflow) before draining anything.
        yield sim.timeout(2.0)
        while len(got) < 3:
            msg = yield rx.recv()
            got.append(msg.payload)

    sim.process(slow_consumer())
    sends = [tx.send("h1", 5000, f"m{i}", 64) for i in range(3)]
    sim.run(until=10.0)
    for ev in sends:
        assert ev.triggered and ev.ok  # every send eventually acked
    assert sorted(got) == ["m0", "m1", "m2"]
    assert rx.rx_drops > 0  # overflow really happened (as backpressure)
    assert sim.obs.metrics.counter("transport.rx_drops", proto="srudp").value > 0


def test_srudp_control_lane_is_admitted_when_bulk_is_full(lan):
    sim, topo, (a, b) = lan
    tx = SrudpEndpoint(a, 5000)
    rx = SrudpEndpoint(b, 5000, rx_capacity=1)
    sim.run(until=tx.send("h1", 5000, "bulk-0", 64))
    # Bulk lane now full (capacity 1, nobody consuming). A control-plane
    # request (daemon.fence is in CONTROL_METHODS) still gets through
    # without displacing or waiting on the bulk item.
    fence = Request(method="daemon.fence", args={}, reply_port=5000)
    sim.run(until=tx.send("h1", 5000, fence, 64))
    first = rx.recv()
    sim.run(until=1.0)
    assert first.triggered
    assert getattr(first.value.payload, "method", None) == "daemon.fence"
    assert rx.rx_drops == 0


def test_multicast_bounded_rx_repairs_after_drain():
    sim, topo, hosts = make_lan(n_hosts=3)
    tx = EthernetMulticast(hosts[0], 6000, "lan")
    rx1 = EthernetMulticast(hosts[1], 6000, "lan", rx_capacity=1)
    rx2 = EthernetMulticast(hosts[2], 6000, "lan")
    got = {"h1": [], "h2": []}

    def consumer(rx, key, delay):
        yield sim.timeout(delay)
        while len(got[key]) < 2:
            msg = yield rx.recv()
            got[key].append(msg.payload)

    sim.process(consumer(rx1, "h1", 2.0))  # slow: queue overflows first
    sim.process(consumer(rx2, "h2", 0.0))
    sends = [tx.send_group(["h1", "h2"], 6000, f"g{i}", 128) for i in range(2)]
    sim.run(until=15.0)
    for ev in sends:
        assert ev.triggered and ev.ok
    assert sorted(got["h1"]) == ["g0", "g1"]
    assert sorted(got["h2"]) == ["g0", "g1"]


def test_pathsel_demotes_interface_with_open_breaker():
    """Repeated send failures toward a destination quarantine the chosen
    interface; selection falls over to the next-best shared segment and
    returns once the breaker's window expires."""
    from tests.transport.test_pathsel import dual_homed

    sim, topo, a, b, (eth, myr, *_) = dual_homed()
    sel = SrudpEndpoint(a, 5000).paths
    nic, _, _ = sel.select("b")
    assert nic.segment.name == "myr"  # fastest shared medium wins
    # Two failures trip the path board (min_samples=2, threshold 0.75).
    sel.note_result("b", False)
    sel.note_result("b", False)
    nic, _, _ = sel.select("b")
    assert nic.segment.name == "eth"  # myrinet path quarantined
    # After the open window (2s) the peek reports available again.
    sim.run(until=3.0)
    nic, _, _ = sel.select("b")
    assert nic.segment.name == "myr"


def test_pathsel_quarantine_of_all_paths_keeps_a_fallback():
    from tests.transport.test_pathsel import dual_homed

    sim, topo, a, b, (eth, myr, *_) = dual_homed()
    sel = SrudpEndpoint(a, 5000).paths
    for segment in ("myr", "eth"):
        nic, _, _ = sel.select("b")
        assert nic.segment.name == segment
        sel.note_result("b", False)
        sel.note_result("b", False)
    # Every direct interface is open: selection still returns a viable
    # path (fail open) rather than refusing to route.
    nic, _, _ = sel.select("b")
    assert nic is not None


def test_pathsel_breakers_disabled_by_config():
    from tests.transport.test_pathsel import dual_homed

    sim, topo, a, b, _ = dual_homed()
    sim.overload.breakers = False
    sel = SrudpEndpoint(a, 5000).paths
    sel.note_result("b", False)
    sel.note_result("b", False)
    nic, _, _ = sel.select("b")
    assert nic.segment.name == "myr"  # static baseline: no quarantine
