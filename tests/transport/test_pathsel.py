"""Unit tests for §5.3 path selection and failover."""

from repro.net import ETHERNET_100, MYRINET, WAN_T3, Topology
from repro.sim import Simulator
from repro.transport import SrudpEndpoint
from repro.transport.pathsel import DEFAULT_IP, PathSelector


def dual_homed():
    """a and b share eth + myrinet; also reachable via a WAN gateway."""
    sim = Simulator()
    topo = Topology(sim)
    eth = topo.add_segment("eth", ETHERNET_100)
    myr = topo.add_segment("myr", MYRINET)
    wan1 = topo.add_segment("wan1", WAN_T3)
    wan2 = topo.add_segment("wan2", WAN_T3)
    a = topo.add_host("a")
    b = topo.add_host("b")
    gw = topo.add_host("gw", forwarding=True)
    topo.connect(a, eth)
    topo.connect(b, eth)
    topo.connect(a, myr)
    topo.connect(b, myr)
    topo.connect(a, wan1)
    topo.connect(gw, wan1)
    topo.connect(gw, wan2)
    topo.connect(b, wan2)
    return sim, topo, a, b, (eth, myr, wan1, wan2)


def test_snipe_policy_picks_fastest_shared_medium():
    sim, topo, a, b, (eth, myr, *_) = dual_homed()
    sel = PathSelector(a)
    nic, dst_ip, l2 = sel.select("b")
    assert nic.segment.name == "myr"
    assert l2 is None


def test_default_ip_policy_sticks_to_first_interface():
    sim, topo, a, b, segs = dual_homed()
    sel = PathSelector(a, policy=DEFAULT_IP)
    nic, dst_ip, l2 = sel.select("b")
    assert nic.segment.name == "eth"  # first-configured iface, no shopping


def test_failover_cascade_and_switch_count():
    sim, topo, a, b, (eth, myr, wan1, wan2) = dual_homed()
    sel = PathSelector(a)
    assert sel.select("b")[0].segment.name == "myr"
    myr.up = False
    topo.bump_version()
    assert sel.select("b")[0].segment.name == "eth"
    eth.up = False
    topo.bump_version()
    nic, dst_ip, l2 = sel.select("b")
    assert nic.segment.name == "wan1"
    assert l2 is not None  # routed via the gateway
    assert sel.switches == 2


def test_unreachable_returns_none():
    sim, topo, a, b, segs = dual_homed()
    for seg in segs:
        seg.up = False
    topo.bump_version()
    sel = PathSelector(a)
    assert sel.select("b") is None


def test_transparent_failover_mid_transfer():
    """SRUDP keeps delivering when its segment dies mid-stream (E8 core)."""
    sim, topo, a, b, (eth, myr, wan1, wan2) = dual_homed()
    tx = SrudpEndpoint(a, 5000)
    rx = SrudpEndpoint(b, 5000)
    done = {}

    def receiver(sim, rx):
        msg = yield rx.recv()
        done["size"] = msg.size

    sim.process(receiver(sim, rx))

    def killer(sim):
        yield sim.timeout(0.004)  # mid-transfer on myrinet
        myr.up = False
        topo.bump_version()

    sim.process(killer(sim))
    p = tx.send("b", 5000, "survives", 2_000_000)
    sim.run(until=p)
    sim.run(until=sim.now + 0.5)
    assert done["size"] == 2_000_000
    assert tx.paths.switches >= 1
