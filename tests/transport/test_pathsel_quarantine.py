"""Quarantine-expiry edge cases for §5.3 path selection.

The selector caches its choice per (destination, topology version), but
a detour taken *because* an interface was quarantined must not outlive
the quarantine: ``_compute`` clamps the cache expiry to the breaker's
probe-due time. These tests pin the boundary semantics — the cache is
valid strictly *before* the due instant and stale *at* it — and the
re-quarantine path where a failed half-open probe doubles the window.
"""

from repro.net import ETHERNET_100, MYRINET, Topology
from repro.sim import Simulator
from repro.transport.pathsel import PathSelector


def dual_homed():
    """a and b share eth + myrinet (myrinet is the faster medium)."""
    sim = Simulator()
    topo = Topology(sim)
    eth = topo.add_segment("eth", ETHERNET_100)
    myr = topo.add_segment("myr", MYRINET)
    a = topo.add_host("a")
    b = topo.add_host("b")
    for seg in (eth, myr):
        topo.connect(a, seg)
        topo.connect(b, seg)
    return sim, topo, a, b


def quarantine_myrinet(sel):
    """Fail enough bursts on the current (myrinet) path to trip its
    breaker; returns the quarantined iface name."""
    nic, _, _ = sel.select("b")
    assert nic.segment.name == "myr"
    sel.note_result("b", False)
    sel.note_result("b", False)  # min_samples=2, threshold hit -> OPEN
    assert sel.breakers.is_open(("b", nic.iface))
    return nic.iface


def test_cached_detour_expires_exactly_at_probe_due_time():
    """The detour cache entry must die at the breaker's probe-due
    instant, not one event later: at ``now == due`` the selector
    recomputes and offers the quarantined medium as its own probe."""
    sim, topo, a, b = dual_homed()
    sel = PathSelector(a)
    iface = quarantine_myrinet(sel)
    # Quarantined: the selector demotes myrinet and detours over eth.
    assert sel.select("b")[0].segment.name == "eth"
    due = sel.breakers.due_at(("b", iface))
    assert due is not None
    # Strictly before the probe is due, the cached detour is still valid
    # (same topology version, no recompute, still eth).
    sim.run(until=due - 1e-9)
    assert sel.select("b")[0].segment.name == "eth"
    # At exactly the due instant the cache is stale (validity is
    # ``now < expires``) and the due breaker no longer reads as open,
    # so the recomputed choice is the fast medium again — the probe.
    sim.run(until=due)
    assert not sel.breakers.is_open(("b", iface))
    assert sel.select("b")[0].segment.name == "myr"


def test_requarantine_after_failed_probe_doubles_the_window():
    """A failed half-open probe re-opens the breaker with a doubled
    quarantine, and the new detour cache expires at the *new* due time."""
    sim, topo, a, b = dual_homed()
    sel = PathSelector(a)
    iface = quarantine_myrinet(sel)
    key = ("b", iface)
    first_window = sel.breakers.breaker(key).open_for
    due = sel.breakers.due_at(key)
    sim.run(until=due)
    # The probe burst goes out on myrinet... and fails.
    assert sel.select("b")[0].segment.name == "myr"
    sel.note_result("b", False)
    br = sel.breakers.breaker(key)
    assert sel.breakers.is_open(key)
    assert br.open_for == 2 * first_window
    # Back on the detour, cached until the doubled quarantine elapses.
    assert sel.select("b")[0].segment.name == "eth"
    new_due = sel.breakers.due_at(key)
    assert new_due == sim.now + 2 * first_window
    sim.run(until=new_due - 1e-9)
    assert sel.select("b")[0].segment.name == "eth"
    sim.run(until=new_due)
    assert sel.select("b")[0].segment.name == "myr"
    # This probe succeeds: the breaker recloses and the quarantine
    # window resets, so the fast medium sticks.
    sel.note_result("b", True)
    assert not sel.breakers.is_open(key)
    assert br.open_for == br.base_open_for
    assert sel.select("b")[0].segment.name == "myr"


def test_breaker_transition_invalidates_cache_without_topology_bump():
    """Tripping a breaker must evict the cached choice even though the
    topology version did not change (the cache key would still match)."""
    sim, topo, a, b = dual_homed()
    sel = PathSelector(a)
    assert sel.select("b")[0].segment.name == "myr"
    # Cached with an infinite expiry: without invalidation, the next
    # select would return myrinet straight from the cache.
    sel.note_result("b", False)
    sel.note_result("b", False)
    assert sel.select("b")[0].segment.name == "eth"
    assert sel.switches == 1
