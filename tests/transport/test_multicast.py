"""Unit tests for the experimental Ethernet multicast protocol."""


from repro.transport import EthernetMulticast, SendError

from .conftest import make_lan


def group(n=4, loss_rate=0.0, seed=0):
    sim, topo, hosts = make_lan(loss_rate=loss_rate, n_hosts=n, seed=seed)
    eps = [EthernetMulticast(h, 7000, "lan") for h in hosts]
    return sim, topo, hosts, eps


def test_one_broadcast_reaches_all_members():
    sim, topo, hosts, eps = group(n=5)
    received = []

    def receiver(sim, ep, name):
        msg = yield ep.recv()
        received.append((name, msg.payload))

    for h, ep in zip(hosts[1:], eps[1:]):
        sim.process(receiver(sim, ep, h.name))
    members = [h.name for h in hosts]
    p = eps[0].send_group(members, 7000, "announce", 5000)
    sim.run(until=p)
    sim.run(until=sim.now + 0.5)
    assert sorted(received) == [(f"h{i}", "announce") for i in range(1, 5)]


def test_multicast_cheaper_than_n_unicasts():
    """Sender TX bytes for multicast ≈ one copy, not N copies."""
    sim, topo, hosts, eps = group(n=5)
    size = 500_000
    p = eps[0].send_group([h.name for h in hosts], 7000, None, size)

    def drain(sim, ep):
        while True:
            yield ep.recv()

    for ep in eps[1:]:
        sim.process(drain(sim, ep))
    sim.run(until=p)
    nic = list(hosts[0].nics.values())[0]
    # One serialised copy plus protocol headers; far below 4 copies.
    assert nic.tx_bytes < 1.2 * size


def test_loss_recovery_all_members_complete():
    sim, topo, hosts, eps = group(n=4, loss_rate=0.05)
    done = []

    def receiver(sim, ep, name):
        yield ep.recv()
        done.append(name)

    for h, ep in zip(hosts[1:], eps[1:]):
        sim.process(receiver(sim, ep, h.name))
    p = eps[0].send_group([h.name for h in hosts], 7000, "data", 300_000)
    sim.run(until=p)
    sim.run(until=sim.now + 0.5)
    assert sorted(done) == ["h1", "h2", "h3"]
    assert eps[0].retransmits > 0


def test_dead_member_fails_send_with_names():
    sim, topo, hosts, eps = group(n=3)
    hosts[2].crash()

    def drain(sim, ep):
        while True:
            yield ep.recv()

    sim.process(drain(sim, eps[1]))

    def sender(sim):
        try:
            yield eps[0].send_group(["h0", "h1", "h2"], 7000, "x", 1000)
        except SendError as exc:
            return str(exc)
        return "ok"

    eps[0].initial_rto = 0.005
    eps[0].max_retries = 3
    p = sim.process(sender(sim))
    result = sim.run(until=p)
    assert "h2" in result


def test_sender_excluded_from_members():
    sim, topo, hosts, eps = group(n=2)

    def drain(sim, ep):
        while True:
            yield ep.recv()

    sim.process(drain(sim, eps[1]))
    # Including self in the member list must not deadlock.
    p = eps[0].send_group(["h0", "h1"], 7000, "x", 100)
    assert sim.run(until=p) == 100
