"""Unit tests for the selective-resend UDP transport."""


from repro.transport import SendError, SrudpEndpoint



def test_small_message_roundtrip(lan):
    sim, topo, (a, b) = lan
    tx = SrudpEndpoint(a, 5000)
    rx = SrudpEndpoint(b, 5000)
    result = {}

    def receiver(sim, rx):
        msg = yield rx.recv()
        result["msg"] = msg

    def sender(sim, tx):
        yield tx.send("h1", 5000, {"tag": 1, "data": "hi"}, 64)

    sim.process(receiver(sim, rx))
    p = sim.process(sender(sim, tx))
    sim.run(until=p)
    sim.run(until=sim.now + 1)
    msg = result["msg"]
    assert msg.payload == {"tag": 1, "data": "hi"}
    assert msg.size == 64
    assert msg.src_host == "h0"


def test_multi_segment_message(lan):
    sim, topo, (a, b) = lan
    tx = SrudpEndpoint(a, 5000)
    rx = SrudpEndpoint(b, 5000)
    size = 1_000_000  # ~682 segments at 1468B MSS
    done = {}

    def receiver(sim, rx):
        msg = yield rx.recv()
        done["size"] = msg.size
        done["t"] = sim.now

    sim.process(receiver(sim, rx))
    p = tx.send("h1", 5000, b"big", size)
    sim.run(until=p)
    sim.run(until=sim.now + 0.1)
    assert done["size"] == size
    # Sanity: transfer time within 2x of line-rate lower bound.
    lower = size / 12.5e6
    assert lower < done["t"] < 2 * lower


def test_zero_byte_message(lan):
    sim, topo, (a, b) = lan
    tx = SrudpEndpoint(a, 5000)
    rx = SrudpEndpoint(b, 5000)
    got = {}

    def receiver(sim, rx):
        got["msg"] = (yield rx.recv())

    sim.process(receiver(sim, rx))
    p = tx.send("h1", 5000, "empty", 0)
    sim.run(until=p)
    sim.run(until=sim.now + 0.1)
    assert got["msg"].payload == "empty"
    assert got["msg"].size == 0


def test_loss_recovery_delivers_exactly_once(lossy_lan):
    sim, topo, (a, b) = lossy_lan
    tx = SrudpEndpoint(a, 5000)
    rx = SrudpEndpoint(b, 5000)
    received = []

    def receiver(sim, rx):
        while True:
            msg = yield rx.recv()
            received.append(msg.payload)

    sim.process(receiver(sim, rx))

    def send_all(sim, tx):
        for i in range(5):
            yield tx.send("h1", 5000, f"msg-{i}", 200_000)

    p = sim.process(send_all(sim, tx))
    sim.run(until=p)
    sim.run(until=sim.now + 1)
    assert received == [f"msg-{i}" for i in range(5)]
    assert tx.retransmits > 0  # 5% loss over ~680 segments must retransmit


def test_send_to_dead_host_fails(lan):
    sim, topo, (a, b) = lan
    tx = SrudpEndpoint(a, 5000, initial_rto=0.01, max_retries=3)
    SrudpEndpoint(b, 5000)
    b.crash()

    def sender(sim, tx):
        try:
            yield tx.send("h1", 5000, "x", 100)
        except SendError:
            return "failed"
        return "sent"

    p = sim.process(sender(sim, tx))
    assert sim.run(until=p) == "failed"


def test_send_local_same_host(lan):
    sim, topo, (a, b) = lan
    tx = SrudpEndpoint(a, 5000)
    rx = SrudpEndpoint(a, 5001)
    got = {}

    def receiver(sim, rx):
        got["msg"] = (yield rx.recv())

    sim.process(receiver(sim, rx))
    p = tx.send("h0", 5001, "local", 1000)
    sim.run(until=p)
    sim.run(until=sim.now + 0.1)
    assert got["msg"].payload == "local"


def test_concurrent_sends_interleave(lan):
    """Two messages to the same peer in flight at once both complete."""
    sim, topo, (a, b) = lan
    tx = SrudpEndpoint(a, 5000)
    rx = SrudpEndpoint(b, 5000)
    received = []

    def receiver(sim, rx):
        for _ in range(2):
            msg = yield rx.recv()
            received.append(msg.payload)

    r = sim.process(receiver(sim, rx))
    tx.send("h1", 5000, "first", 300_000)
    tx.send("h1", 5000, "second", 300_000)
    sim.run(until=r)
    assert sorted(received) == ["first", "second"]


def test_duplicate_final_ack_handled(lan):
    """Retransmit after completion triggers a repeat _Done, not redelivery."""
    sim, topo, (a, b) = lan
    tx = SrudpEndpoint(a, 5000)
    rx = SrudpEndpoint(b, 5000)
    count = []

    def receiver(sim, rx):
        while True:
            yield rx.recv()
            count.append(1)

    sim.process(receiver(sim, rx))
    p = tx.send("h1", 5000, "x", 100)
    sim.run(until=p)
    sim.run(until=sim.now + 1)
    assert len(count) == 1


def test_goodput_approaches_line_rate(lan):
    """Large transfers reach >90% of the 12.5 MB/s Ethernet line rate."""
    sim, topo, (a, b) = lan
    tx = SrudpEndpoint(a, 5000)
    rx = SrudpEndpoint(b, 5000)
    size = 2_000_000
    t = {}

    def receiver(sim, rx):
        yield rx.recv()
        t["done"] = sim.now

    sim.process(receiver(sim, rx))
    p = tx.send("h1", 5000, None, size)
    sim.run(until=p)
    goodput = size / t["done"]
    assert goodput > 0.90 * 12.5e6
