"""Unit tests for unreliable datagrams."""

from repro.transport import DatagramEndpoint

from .conftest import make_lan


def test_datagram_roundtrip(lan):
    sim, topo, (a, b) = lan
    tx = DatagramEndpoint(a, 4000)
    rx = DatagramEndpoint(b, 4000)
    got = []

    def receiver(sim, rx):
        msg = yield rx.recv()
        got.append(msg)

    sim.process(receiver(sim, rx))
    assert tx.send("h1", 4000, "ping", 100)
    sim.run(until=0.5)
    assert got[0].payload == "ping"
    assert got[0].size == 100


def test_large_datagram_fragments(lan):
    sim, topo, (a, b) = lan
    tx = DatagramEndpoint(a, 4000)
    rx = DatagramEndpoint(b, 4000)
    got = []

    def receiver(sim, rx):
        msg = yield rx.recv()
        got.append(msg.size)

    sim.process(receiver(sim, rx))
    tx.send("h1", 4000, b"big", 10_000)  # ~7 fragments
    sim.run(until=0.5)
    assert got == [10_000]


def test_datagram_lost_under_heavy_loss():
    """With 30% per-frame loss, a many-fragment datagram rarely survives."""
    sim, topo, (a, b) = make_lan(loss_rate=0.30)
    tx = DatagramEndpoint(a, 4000)
    rx = DatagramEndpoint(b, 4000)
    delivered = []

    def receiver(sim, rx):
        while True:
            msg = yield rx.recv()
            delivered.append(msg)

    sim.process(receiver(sim, rx))
    for _ in range(10):
        tx.send("h1", 4000, "x", 30_000)  # ~21 fragments each
    sim.run(until=5.0)
    # P(all 21 fragments survive) ≈ 0.7^21 ≈ 0.05%: expect ~0 deliveries.
    assert len(delivered) < 3
    assert rx.rx_messages == len(delivered)


def test_datagram_no_route_returns_false(lan):
    sim, topo, (a, b) = lan
    tx = DatagramEndpoint(a, 4000)
    b.crash()
    assert tx.send("h1", 4000, "x", 10) is False
