"""Property-based tests for the transports."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.net import Medium, Topology
from repro.sim import Simulator
from repro.transport import SrudpEndpoint, StreamEndpoint

FAST = Medium(name="fast", bandwidth=10e6, latency=1e-4, mtu=1500, frame_overhead=20)


def lossy_pair(loss, seed):
    sim = Simulator(seed=seed)
    topo = Topology(sim)
    seg = topo.add_segment(
        "lan",
        Medium(name="lan", bandwidth=10e6, latency=1e-4, mtu=1500,
               frame_overhead=20, loss_rate=loss),
    )
    a = topo.add_host("a")
    b = topo.add_host("b")
    topo.connect(a, seg)
    topo.connect(b, seg)
    return sim, a, b


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    loss=st.floats(min_value=0.0, max_value=0.15),
    sizes=st.lists(st.integers(min_value=0, max_value=60_000), min_size=1, max_size=5),
    seed=st.integers(min_value=0, max_value=1_000),
)
def test_srudp_delivers_every_message_exactly_once(loss, sizes, seed):
    """Whatever the loss rate and message mix, SRUDP delivers each
    message exactly once with payload intact."""
    sim, a, b = lossy_pair(loss, seed)
    tx = SrudpEndpoint(a, 5000)
    rx = SrudpEndpoint(b, 5000)
    received = []

    def receiver():
        while True:
            msg = yield rx.recv()
            received.append((msg.payload, msg.size))

    sim.process(receiver(), name="rx")

    def sender():
        for i, size in enumerate(sizes):
            yield tx.send("b", 5000, ("msg", i), size)

    p = sim.process(sender(), name="tx")
    sim.run(until=p)
    sim.run(until=sim.now + 2.0)
    assert sorted(received) == sorted((("msg", i), s) for i, s in enumerate(sizes))


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    loss=st.floats(min_value=0.0, max_value=0.10),
    n_msgs=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=1_000),
)
def test_stream_preserves_order_under_loss(loss, n_msgs, seed):
    """TCP semantics: per-connection messages arrive in send order."""
    sim, a, b = lossy_pair(loss, seed)
    tx = StreamEndpoint(a, 6000)
    rx = StreamEndpoint(b, 6000)
    order = []

    def receiver():
        for _ in range(n_msgs):
            msg = yield rx.recv()
            order.append(msg.payload)

    r = sim.process(receiver(), name="rx")

    def sender():
        for i in range(n_msgs):
            yield tx.send("b", 6000, i, 20_000)

    sim.process(sender(), name="tx")
    sim.run(until=r)
    assert order == list(range(n_msgs))


@settings(max_examples=25, deadline=None)
@given(
    payload=st.integers(min_value=0, max_value=10_000_000),
    overhead=st.integers(min_value=0, max_value=100),
    cell=st.booleans(),
)
def test_medium_wire_bytes_sane(payload, overhead, cell):
    m = Medium(
        name="x", bandwidth=1e6, latency=1e-3, mtu=1500, frame_overhead=overhead,
        cell_size=53 if cell else 0, cell_payload=48 if cell else 0,
    )
    wire = m.wire_bytes(payload)
    assert wire >= payload + (0 if cell else overhead)
    # Monotonic in payload.
    assert m.wire_bytes(payload + 1) >= wire
    assert m.serialize_time(payload) >= 0


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_transfer_time_deterministic_per_seed(seed):
    def run(seed):
        sim, a, b = lossy_pair(0.05, seed)
        tx = SrudpEndpoint(a, 5000)
        rx = SrudpEndpoint(b, 5000)
        t = {}

        def receiver():
            yield rx.recv()
            t["done"] = sim.now

        sim.process(receiver(), name="rx")
        p = tx.send("b", 5000, None, 100_000)
        sim.run(until=p)
        return t["done"]

    assert run(seed) == run(seed)
