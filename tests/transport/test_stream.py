"""Unit tests for the TCP-like stream transport."""


from repro.transport import SendError, SrudpEndpoint, StreamEndpoint

from .conftest import make_lan


def run_transfer(sim, tx, rx, dst, size, payload="p", n=1):
    received = []

    def receiver(sim, rx):
        for _ in range(n):
            msg = yield rx.recv()
            received.append(msg)

    r = sim.process(receiver(sim, rx))

    def sender(sim, tx):
        for i in range(n):
            yield tx.send(dst, rx.port, payload, size)

    sim.process(sender(sim, tx))
    sim.run(until=r)
    return received


def test_roundtrip_with_handshake(lan):
    sim, topo, (a, b) = lan
    tx = StreamEndpoint(a, 6000)
    rx = StreamEndpoint(b, 6000)
    msgs = run_transfer(sim, tx, rx, "h1", 5000, payload={"k": "v"})
    assert msgs[0].payload == {"k": "v"}
    assert msgs[0].size == 5000


def test_multiple_messages_reuse_connection(lan):
    sim, topo, (a, b) = lan
    tx = StreamEndpoint(a, 6000)
    rx = StreamEndpoint(b, 6000)
    msgs = run_transfer(sim, tx, rx, "h1", 10_000, n=5)
    assert len(msgs) == 5
    # Only one connection was created client-side.
    assert len(tx._conns) == 1


def test_messages_arrive_in_order(lan):
    sim, topo, (a, b) = lan
    tx = StreamEndpoint(a, 6000)
    rx = StreamEndpoint(b, 6000)
    order = []

    def receiver(sim, rx):
        for _ in range(10):
            msg = yield rx.recv()
            order.append(msg.payload)

    r = sim.process(receiver(sim, rx))

    def sender(sim, tx):
        for i in range(10):
            yield tx.send("h1", 6000, i, 50_000)

    sim.process(sender(sim, tx))
    sim.run(until=r)
    assert order == list(range(10))


def test_loss_recovery(lossy_lan):
    sim, topo, (a, b) = lossy_lan
    tx = StreamEndpoint(a, 6000)
    rx = StreamEndpoint(b, 6000)
    msgs = run_transfer(sim, tx, rx, "h1", 500_000)
    assert msgs[0].size == 500_000
    assert tx.fast_retransmits + tx.timeouts > 0


def test_connect_to_dead_host_fails(lan):
    sim, topo, (a, b) = lan
    tx = StreamEndpoint(a, 6000, initial_rto=0.01, max_retries=3)
    b.crash()

    def sender(sim, tx):
        try:
            yield tx.send("h1", 6000, "x", 100)
        except SendError:
            return "failed"
        return "sent"

    p = sim.process(sender(sim, tx))
    assert sim.run(until=p) == "failed"


def test_reconnect_after_dead_connection(lan):
    """A failed connection is replaced on the next send."""
    sim, topo, (a, b) = lan
    tx = StreamEndpoint(a, 6000, initial_rto=0.005, max_retries=2)
    StreamEndpoint(b, 6000)
    b.crash()

    def scenario(sim):
        try:
            yield tx.send("h1", 6000, "x", 100)
        except SendError:
            pass
        b.recover()
        got = yield tx.send("h1", 6000, "y", 100)
        return got

    p = sim.process(scenario(sim))
    assert sim.run(until=p) == 100


def test_slow_start_then_congestion_avoidance(lan):
    """cwnd grows past its initial value during a long transfer."""
    sim, topo, (a, b) = lan
    tx = StreamEndpoint(a, 6000)
    rx = StreamEndpoint(b, 6000)
    run_transfer(sim, tx, rx, "h1", 1_000_000)
    conn = next(iter(tx._conns.values()))
    assert conn.cwnd > 2.0


def test_tcp_slower_than_srudp_first_message():
    """Handshake + heavier headers: TCP's first message takes longer."""
    sim, topo, (a, b) = make_lan()
    s_tx = SrudpEndpoint(a, 5000)
    s_rx = SrudpEndpoint(b, 5000)
    t_tx = StreamEndpoint(a, 6000)
    t_rx = StreamEndpoint(b, 6000)
    times = {}

    def rx_loop(sim, ep, key):
        yield ep.recv()
        times[key] = sim.now

    sim.process(rx_loop(sim, s_rx, "srudp"))
    sim.process(rx_loop(sim, t_rx, "tcp"))
    p1 = s_tx.send("h1", 5000, "a", 100_000)
    p2 = t_tx.send("h1", 6000, "b", 100_000)
    sim.run(until=sim.all_of([p1, p2]))
    sim.run(until=sim.now + 0.5)
    assert times["srudp"] < times["tcp"]
