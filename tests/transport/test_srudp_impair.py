"""Injector-level duplication + reordering: srudp delivers exactly once.

The gray-fault injector's :meth:`~repro.net.failures.FailureInjector.
impair_link_at` installs a probabilistic LinkFault on one segment
direction — duplicated and reordered frames, exactly what a flapping
switch port produces. The transport's contract is unchanged underneath
it: every message sent is delivered exactly once, whole, in send order.
A duplicated final segment must not re-deliver a completed message, and
a reordered segment must not tear one.
"""

import pytest

from repro.net.failures import FailureInjector
from repro.transport import SrudpEndpoint

from .conftest import make_lan

N_MSGS = 40


def _run(seed, **impair):
    sim, topo, (a, b) = make_lan(seed=seed)
    inj = FailureInjector(sim, topo)
    # Impair both directions from t=0 for the whole run: data segments
    # *and* acks get duplicated/reordered.
    inj.impair_link_at(0.0, "lan", symmetric=True, **impair)
    tx = SrudpEndpoint(a, 5000)
    rx = SrudpEndpoint(b, 5000)
    got = []

    def receiver():
        while True:
            msg = yield rx.recv()
            got.append(msg.payload["seq"])

    def sender():
        for i in range(N_MSGS):
            yield tx.send("h1", 5000, {"seq": i}, 2000)

    sim.process(receiver(), name="rx")
    p = sim.process(sender(), name="tx")
    sim.run(until=p)
    # Drain: late duplicates of already-acked traffic are still in
    # flight — exactly-once means none of them re-deliver.
    sim.run(until=sim.now + 5.0)
    return got


@pytest.mark.parametrize("seed", range(1, 11))
def test_dup_reorder_exactly_once(seed):
    got = _run(seed, dup=0.3, reorder=0.3)
    assert got == list(range(N_MSGS))


@pytest.mark.parametrize("seed", range(1, 11))
def test_dup_reorder_loss_exactly_once(seed):
    """Adding loss on top forces retransmits — the retransmit path must
    not break the dedup that exactly-once rests on."""
    got = _run(seed, dup=0.2, reorder=0.2, loss=0.05)
    assert got == list(range(N_MSGS))
