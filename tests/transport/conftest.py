"""Shared fixtures: small topologies for transport tests."""

import pytest

from repro.net import ETHERNET_100, Medium, Topology
from repro.sim import Simulator


def make_lan(loss_rate=0.0, n_hosts=2, medium=None, seed=0):
    """A single switched LAN with n hosts; returns (sim, topo, hosts)."""
    if medium is None:
        medium = Medium(
            name="lan",
            bandwidth=ETHERNET_100.bandwidth,
            latency=ETHERNET_100.latency,
            mtu=ETHERNET_100.mtu,
            frame_overhead=ETHERNET_100.frame_overhead,
            loss_rate=loss_rate,
        )
    sim = Simulator(seed=seed)
    topo = Topology(sim)
    seg = topo.add_segment("lan", medium)
    hosts = []
    for i in range(n_hosts):
        h = topo.add_host(f"h{i}")
        topo.connect(h, seg)
        hosts.append(h)
    return sim, topo, hosts


@pytest.fixture
def lan():
    return make_lan()


@pytest.fixture
def lossy_lan():
    return make_lan(loss_rate=0.05)
