"""Tests for the PVM baseline — including the §2.2 failure modes."""


from repro.pvm import PvmError, Pvmd

from ..transport.conftest import make_lan


def pvm_site(n_hosts=4, seed=0, programs=None):
    sim, topo, hosts = make_lan(n_hosts=n_hosts, seed=seed)
    programs = programs or {}
    master = Pvmd(hosts[0], programs)
    slaves = [Pvmd(h, programs, master_host="h0") for h in hosts[1:]]

    def boot(sim):
        for s in slaves:
            yield s.join()

    sim.run(until=sim.process(boot(sim)))
    return sim, topo, hosts, master, slaves


def run_gen(sim, gen):
    return sim.run(until=sim.process(gen))


def test_slaves_join_and_tables_agree():
    sim, topo, hosts, master, slaves = pvm_site()
    sim.run(until=sim.now + 1.0)
    assert master.host_table == {0: "h0", 1: "h1", 2: "h2", 3: "h3"}
    for s in slaves:
        assert s.host_table == master.host_table
    assert not master.vm_corrupt


def test_spawn_round_robin_across_hosts():
    done = []

    def worker(ctx, n=0):
        yield ctx.compute(0.01)
        done.append((ctx.host.name, ctx.tid))

    sim, topo, hosts, master, slaves = pvm_site(programs={"worker": worker})

    def go(sim):
        tids = yield master.spawn("worker", n=4)
        return tids

    tids = run_gen(sim, go(sim))
    sim.run(until=sim.now + 2.0)
    assert len(tids) == 4
    assert {h for h, _ in done} == {"h0", "h1", "h2", "h3"}


def test_message_passing_via_pvmds():
    result = {}

    def receiver(ctx):
        env = yield ctx.recv(tag="data")
        result["got"] = (env.payload, env.src_tid)

    def sender(ctx, dst):
        yield ctx.send(dst, {"x": 1}, tag="data")

    sim, topo, hosts, master, slaves = pvm_site(
        programs={"receiver": receiver, "sender": sender}
    )
    rtid = slaves[0].spawn_local("receiver", {})
    stid = slaves[1].spawn_local("sender", {"dst": rtid})
    sim.run(until=sim.now + 5.0)
    assert result["got"] == ({"x": 1}, stid)
    # The message was relayed: the receiver's pvmd served a route RPC.
    assert slaves[0].rpc.requests_served >= 1


def test_master_failure_breaks_spawn():
    """§2.2: PVM 'cannot tolerate failure of its master host'."""

    def worker(ctx):
        yield ctx.compute(0.01)

    sim, topo, hosts, master, slaves = pvm_site(programs={"worker": worker})
    hosts[0].crash()

    def go(sim):
        try:
            yield slaves[0].spawn("worker")
        except PvmError as exc:
            return str(exc)
        return "ok"

    assert "master unreachable" in run_gen(sim, go(sim))


def test_slave_failure_tolerated():
    done = []

    def worker(ctx):
        yield ctx.compute(0.01)
        done.append(ctx.host.name)

    sim, topo, hosts, master, slaves = pvm_site(programs={"worker": worker})
    hosts[2].crash()

    def go(sim):
        return (yield master.spawn("worker", n=4))

    tids = run_gen(sim, go(sim))
    sim.run(until=sim.now + 5.0)
    # One placement (the dead h2) was dropped; the rest ran.
    assert len(tids) == 3
    assert "h2" not in done


def test_link_failure_during_host_table_update_corrupts_vm():
    """§2.2: 'It also cannot tolerate link failures during host table
    updates.'"""

    sim, topo, hosts, master, slaves = pvm_site()
    # h1 silently drops off the network; the master doesn't know.
    hosts[1].crash()
    late = Pvmd(topo.add_host("h9"), {}, master_host="h0")
    topo.connect(topo.hosts["h9"], topo.segments["lan"])

    def go(sim):
        yield late.join()

    run_gen(sim, go(sim))
    assert master.vm_corrupt  # broadcast to h1 failed mid-update
    # The recovered h1 now has a stale table: tids on h9 are unroutable.
    hosts[1].recover()
    assert 4 not in slaves[0].host_table  # h9's index never arrived


def test_no_global_namespace():
    """Task ids are meaningless outside their VM: routing an alien tid
    fails (contrast: SNIPE URNs resolve anywhere)."""
    sim, topo, hosts, master, slaves = pvm_site()
    alien_tid = (99 << 18) | 1

    def go(sim):
        try:
            yield slaves[0].route(alien_tid, None)
        except PvmError as exc:
            return str(exc)

    assert "not in my table" in run_gen(sim, go(sim))


def test_putinfo_getinfo_registry():
    """The master's 'global registration of well-known services'."""
    sim, topo, hosts, master, slaves = pvm_site()

    def go(sim):
        yield slaves[0].putinfo("my-service", {"tids": [1, 2]})
        got = yield slaves[2].getinfo("my-service")
        return got

    assert run_gen(sim, go(sim)) == {"tids": [1, 2]}


def test_getinfo_unknown_key_errors():
    sim, topo, hosts, master, slaves = pvm_site()
    from repro.rpc import RpcError

    def go(sim):
        try:
            yield slaves[0].getinfo("nothing")
        except RpcError as exc:
            return str(exc)

    assert "no info" in run_gen(sim, go(sim))


def test_registry_dies_with_master():
    """Unlike RC metadata, the PVM registry is a single point of failure."""
    sim, topo, hosts, master, slaves = pvm_site()
    from repro.rpc import RpcError

    def go(sim):
        yield slaves[0].putinfo("svc", 1)
        hosts[0].crash()
        try:
            yield slaves[1].getinfo("svc")
        except RpcError:
            return "gone"

    assert run_gen(sim, go(sim)) == "gone"


def test_enroll_gives_addressable_tid():
    """PVMPI's trick: external processes join the tid space."""
    sim, topo, hosts, master, slaves = pvm_site()
    tid, ctx = slaves[0].enroll()
    tid2, ctx2 = slaves[1].enroll()
    assert tid >> 18 == 1 and tid2 >> 18 == 2  # host indices

    def go(sim):
        yield ctx.send(tid2, "cross-host", tag="t")
        env = yield ctx2.recv(tag="t")
        return env.payload, env.src_tid

    assert run_gen(sim, go(sim)) == ("cross-host", tid)
