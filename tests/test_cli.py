"""Smoke tests for the ``python -m repro`` command-line interface."""

import subprocess
import sys

import pytest


def run_cli(*args, timeout=120):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=timeout,
    )


def test_info_lists_packages():
    result = run_cli("info")
    assert result.returncode == 0
    for pkg in ("repro.sim", "repro.transport", "repro.rcds", "repro.mpi"):
        assert pkg in result.stdout


def test_examples_lists_scripts():
    result = run_cli("examples")
    assert result.returncode == 0
    assert "quickstart.py" in result.stdout
    assert "weather_monitoring.py" in result.stdout


def test_no_command_prints_usage():
    result = run_cli()
    assert result.returncode == 2
    assert "usage:" in result.stdout


def test_unknown_command_prints_usage():
    result = run_cli("bogus")
    assert result.returncode == 2
