"""Smoke tests for the ``python -m repro`` command-line interface."""

import subprocess
import sys



def run_cli(*args, timeout=120):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=timeout,
    )


def test_info_lists_packages():
    result = run_cli("info")
    assert result.returncode == 0
    for pkg in ("repro.sim", "repro.transport", "repro.rcds", "repro.mpi"):
        assert pkg in result.stdout


def test_examples_lists_scripts():
    result = run_cli("examples")
    assert result.returncode == 0
    assert "quickstart.py" in result.stdout
    assert "weather_monitoring.py" in result.stdout


def test_no_command_prints_usage():
    result = run_cli()
    assert result.returncode == 2
    assert "usage:" in result.stdout


def test_unknown_command_prints_usage():
    result = run_cli("bogus")
    assert result.returncode == 2


def test_obs_report_demo_scenario(tmp_path):
    out = tmp_path / "run.json"
    result = run_cli("obs", "report", "--json", str(out))
    assert result.returncode == 0
    # Per-transport latency percentiles and retransmit counts (the demo
    # runs srudp, tcp, and mcast under 5% loss, so all three appear).
    assert "p50" in result.stdout and "p99" in result.stdout
    assert "transport.msg_latency" in result.stdout
    assert "transport.retransmits" in result.stdout
    for proto in ("proto=srudp", "proto=tcp", "proto=mcast"):
        assert proto in result.stdout
    assert out.is_file()


def test_obs_report_renders_saved_export_and_diff(tmp_path):
    out = tmp_path / "run.json"
    assert run_cli("obs", "report", "--json", str(out)).returncode == 0
    rendered = run_cli("obs", "report", str(out))
    assert rendered.returncode == 0
    assert "transport.msg_latency" in rendered.stdout
    diff = run_cli("obs", "diff", str(out), str(out))
    assert diff.returncode == 0
    assert "delta" in diff.stdout
    assert "transport.retransmits" in diff.stdout
