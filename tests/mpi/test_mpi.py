"""Tests for the mini-MPI: point-to-point and collectives."""

import pytest

from repro.mpi import MpiJob
from repro.mpi.mpi import MpiContext
from repro.net import MYRINET, Topology
from repro.sim import Simulator


def mpp(n=8, seed=0):
    sim = Simulator(seed=seed)
    topo = Topology(sim)
    fabric = topo.add_segment("fabric", MYRINET)
    hosts = []
    for i in range(n):
        h = topo.add_host(f"node{i}")
        topo.connect(h, fabric)
        hosts.append(h)
    return sim, topo, hosts


def run_job(sim, hosts, program, **params):
    job = MpiJob(sim, hosts, program, params=params)
    sim.run(until=job.wait_all())
    return job


def test_pingpong():
    sim, topo, hosts = mpp(2)

    def program(mpi):
        if mpi.rank == 0:
            yield mpi.send(1, "ping", tag=1)
            msg = yield mpi.recv(src=1, tag=2)
            return msg.payload
        else:
            msg = yield mpi.recv(src=0, tag=1)
            yield mpi.send(0, msg.payload + "-pong", tag=2)
            return "served"

    job = run_job(sim, hosts, program)
    assert job.results[0] == "ping-pong"


def test_send_recv_source_filtering():
    sim, topo, hosts = mpp(3)

    def program(mpi):
        if mpi.rank == 0:
            # Wait specifically for rank 2 first, then rank 1.
            m2 = yield mpi.recv(src=2)
            m1 = yield mpi.recv(src=1)
            return [m2.payload, m1.payload]
        else:
            yield mpi.send(0, f"from{mpi.rank}")
            return None

    job = run_job(sim, hosts, program)
    assert job.results[0] == ["from2", "from1"]


@pytest.mark.parametrize("n,root", [(2, 0), (5, 0), (8, 3), (7, 6)])
def test_bcast_all_sizes_and_roots(n, root):
    sim, topo, hosts = mpp(n)

    def program(mpi, root):
        value = {"data": 42} if mpi.rank == root else None
        got = yield mpi.bcast(value, root=root)
        return got

    job = run_job(sim, hosts, program, root=root)
    assert job.results == [{"data": 42}] * n


@pytest.mark.parametrize("n,root", [(2, 0), (6, 2), (8, 0)])
def test_reduce_sum(n, root):
    sim, topo, hosts = mpp(n)

    def program(mpi, root):
        return (yield mpi.reduce(mpi.rank + 1, lambda a, b: a + b, root=root))

    job = run_job(sim, hosts, program, root=root)
    expected = n * (n + 1) // 2
    for rank, result in enumerate(job.results):
        assert result == (expected if rank == root else None)


def test_allreduce_max():
    sim, topo, hosts = mpp(6)

    def program(mpi):
        return (yield mpi.allreduce(mpi.rank * 10, max))

    job = run_job(sim, hosts, program)
    assert job.results == [50] * 6


def test_barrier_synchronizes():
    sim, topo, hosts = mpp(4)
    after = []

    def program(mpi):
        # Ranks arrive staggered; all must leave together.
        yield mpi.sleep(mpi.rank * 0.1)
        yield mpi.barrier()
        after.append((mpi.rank, mpi.sim.now))
        return None

    run_job(sim, hosts, program)
    times = [t for _, t in after]
    assert max(times) - min(times) < 0.01
    assert min(times) >= 0.3  # nobody left before the slowest arrived


def test_gather_and_scatter():
    sim, topo, hosts = mpp(4)

    def program(mpi):
        gathered = yield mpi.gather(mpi.rank ** 2, root=0)
        values = [v * 10 for v in gathered] if mpi.rank == 0 else None
        mine = yield mpi.scatter(values, root=0)
        return mine

    job = run_job(sim, hosts, program)
    assert job.results == [0, 10, 40, 90]


def test_bcast_large_value_chunked_roundtrip(monkeypatch):
    # A value whose encoding dwarfs the threshold takes the pipelined
    # chunk path and still round-trips exactly on every rank.
    monkeypatch.setattr(MpiContext, "pipeline_threshold", 8192)
    sim, topo, hosts = mpp(8)
    blob = bytes(i % 251 for i in range(100_000))

    def program(mpi):
        value = {"blob": blob, "meta": 7} if mpi.rank == 0 else None
        return (yield mpi.bcast(value, root=0))

    job = run_job(sim, hosts, program)
    for result in job.results:
        assert result == {"blob": blob, "meta": 7}


@pytest.mark.parametrize("root", [0, 5])
def test_bcast_large_bytes_nonzero_root(monkeypatch, root):
    monkeypatch.setattr(MpiContext, "pipeline_threshold", 16384)
    sim, topo, hosts = mpp(7)
    blob = b"\xabQ7" * 60_000

    def program(mpi, root):
        value = blob if mpi.rank == root else None
        return (yield mpi.bcast(value, root=root))

    job = run_job(sim, hosts, program, root=root)
    assert job.results == [blob] * 7


def test_bcast_small_value_stays_whole_message(monkeypatch):
    # Below the threshold nothing is chunked: the splitter never runs.
    import repro.mpi.mpi as mpi_mod
    calls = []
    orig = mpi_mod.split_chunks

    def spying(*a, **kw):
        calls.append(a)
        return orig(*a, **kw)

    monkeypatch.setattr(mpi_mod, "split_chunks", spying)
    sim, topo, hosts = mpp(6)

    def program(mpi):
        return (yield mpi.bcast("tiny" if mpi.rank == 0 else None, root=0))

    job = run_job(sim, hosts, program)
    assert job.results == ["tiny"] * 6
    assert calls == []


def test_bcast_chunked_pipeline_beats_whole_message():
    # The point of chunking: store-and-forward of the whole message pays
    # depth * size/bandwidth; the pipeline overlaps the levels.
    blob = b"\x5a" * 500_000

    def program(mpi):
        got = yield mpi.bcast(blob if mpi.rank == 0 else None, root=0)
        assert got == blob
        return mpi.sim.now

    times = {}
    for label, threshold in [("chunked", 16384), ("whole", 10**9)]:
        sim, topo, hosts = mpp(8)
        old = MpiContext.pipeline_threshold
        MpiContext.pipeline_threshold = threshold
        try:
            times[label] = max(run_job(sim, hosts, program).results)
        finally:
            MpiContext.pipeline_threshold = old

    # The chain serialises the object once per interface instead of
    # log2(N) times through the tree's critical path; demand a real win,
    # not a tie.
    assert times["chunked"] < 0.6 * times["whole"]


def test_consecutive_collectives_do_not_mix():
    sim, topo, hosts = mpp(5)

    def program(mpi):
        a = yield mpi.bcast("first" if mpi.rank == 0 else None, root=0)
        b = yield mpi.bcast("second" if mpi.rank == 0 else None, root=0)
        c = yield mpi.allreduce(1, lambda x, y: x + y)
        return (a, b, c)

    job = run_job(sim, hosts, program)
    assert job.results == [("first", "second", 5)] * 5
