"""Tests for PVMPI vs MPI_Connect bridging across two MPPs."""


from repro.bench.topologies import two_mpp_site
from repro.mpi import MpiConnectBridge, MpiJob, PvmpiBridge


def cross_mpp_pingpong(site, make_bridges, n_msgs=3, size=10_000):
    """Run two 2-rank MPI jobs, one per MPP, ping-ponging via bridges.

    Returns (rtt_list, results) measured at app A's rank 0.
    """
    sim = site["sim"]
    rtts = []

    def app_a(mpi):
        bridge = bridges["A"]
        if mpi.rank == 0:
            yield bridge.register()
            remote = yield bridge.connect("B")
            for i in range(n_msgs):
                t0 = sim.now
                yield bridge.send(0, remote, 0, {"i": i}, tag=1, size=size)
                yield bridge.recv(0, tag=2)
                rtts.append(sim.now - t0)
            return "a-done"
        return None
        yield  # pragma: no cover

    def app_b(mpi):
        bridge = bridges["B"]
        if mpi.rank == 0:
            yield bridge.register()
            remote = yield bridge.connect("A")
            for _ in range(n_msgs):
                msg = yield bridge.recv(0, tag=1)
                yield bridge.send(0, remote, 0, msg.payload, tag=2, size=size)
            return "b-done"
        return None
        yield  # pragma: no cover

    job_a = MpiJob(sim, site["mpp_a"][:2], app_a, name="A")
    job_b = MpiJob(sim, site["mpp_b"][:2], app_b, name="B")
    bridges = make_bridges(site, job_a, job_b)
    sim.run(until=sim.all_of([job_a.procs[0], job_b.procs[0]]))
    return rtts, (job_a.results[0], job_b.results[0])


def make_pvmpi(site, job_a, job_b):
    return {
        "A": PvmpiBridge(job_a, site["pvmds"], "A"),
        "B": PvmpiBridge(job_b, site["pvmds"], "B"),
    }


def make_mpiconnect(site, job_a, job_b):
    return {
        "A": MpiConnectBridge(job_a, site["rc_replicas"], "A"),
        "B": MpiConnectBridge(job_b, site["rc_replicas"], "B"),
    }


def test_pvmpi_roundtrip():
    site = two_mpp_site()
    rtts, results = cross_mpp_pingpong(site, make_pvmpi)
    assert results == ("a-done", "b-done")
    assert len(rtts) == 3
    assert all(r > 0.04 for r in rtts)  # two WAN crossings ≥ 2×20ms


def test_mpiconnect_roundtrip():
    site = two_mpp_site(pvm=False)
    rtts, results = cross_mpp_pingpong(site, make_mpiconnect)
    assert results == ("a-done", "b-done")
    assert len(rtts) == 3


def test_mpiconnect_faster_than_pvmpi():
    """§6.1: MPI_Connect 'offered a slightly higher point-to-point
    communication performance' — here because the pvmd store-and-forward
    hops are gone."""
    p_site = two_mpp_site(seed=1)
    p_rtts, _ = cross_mpp_pingpong(p_site, make_pvmpi, n_msgs=5, size=100_000)
    m_site = two_mpp_site(seed=1, pvm=False)
    m_rtts, _ = cross_mpp_pingpong(m_site, make_mpiconnect, n_msgs=5, size=100_000)
    p_best = min(p_rtts)
    m_best = min(m_rtts)
    assert m_best < p_best
    # "Slightly higher": same order of magnitude, not a 10x blowout.
    assert p_best / m_best < 3.0


def test_mpiconnect_survives_where_pvmpi_cannot_start():
    """'No virtual machine to disappear': kill the PVM master host —
    PVMPI's registry is gone, but MPI_Connect still rendezvouses because
    names live in replicated RC metadata."""
    site = two_mpp_site(seed=2)
    # a0 is the PVM master AND one of three RC replicas: quorum survives.
    site["topo"].hosts["a0"].crash()

    # The surviving nodes: use interior nodes of each MPP.
    sim = site["sim"]
    done = {}

    def app_a(mpi):
        bridge = bridges["A"]
        yield bridge.register()
        remote = yield bridge.connect("B")
        yield bridge.send(0, remote, 0, "hello", tag=1)
        done["a"] = True
        return "ok"

    def app_b(mpi):
        bridge = bridges["B"]
        yield bridge.register()
        msg = yield bridge.recv(0, tag=1)
        done["b"] = msg.payload
        return "ok"

    job_a = MpiJob(sim, site["mpp_a"][1:2], app_a, name="A")
    job_b = MpiJob(sim, site["mpp_b"][1:2], app_b, name="B")
    bridges = make_mpiconnect(site, job_a, job_b)
    sim.run(until=sim.all_of(job_a.procs + job_b.procs))
    assert done == {"a": True, "b": "hello"}
