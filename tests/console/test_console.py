"""Tests for consoles and the migrating HTTP server."""

import pytest

from repro.console import Console, SnipeHttpServer, WebClient, WebError
from repro.core import SnipeEnvironment
from repro.daemon import TaskSpec, TaskState


def console_env(n=4):
    env = SnipeEnvironment.lan_site(n_hosts=n)

    @env.program("idler")
    def idler(ctx, duration=30.0):
        yield ctx.sleep(duration)
        return "done"

    return env


def test_console_lists_hosts_and_info():
    env = console_env()
    console = Console(env.topology.hosts["h3"], env.rc_client("h3"))
    hosts = env.run(until=console.hosts())
    assert hosts == ["h0", "h1", "h2", "h3"]
    info = env.run(until=console.host_info("h1"))
    assert info["daemon"] == "snipe://h1/daemon"


def test_console_spawn_inspect_kill():
    env = console_env()
    console = Console(env.topology.hosts["h3"], env.rc_client("h3"))
    urn = env.run(until=console.spawn("h1", TaskSpec(program="idler")))
    assert urn.startswith("urn:snipe:proc:idler")
    env.settle(1.0)
    tasks = env.run(until=console.tasks_on("h1"))
    assert urn in tasks
    state = env.run(until=console.process_state(urn))
    assert state["state"] == TaskState.RUNNING
    assert env.run(until=console.kill(urn)) is True
    env.settle(1.0)
    assert env.daemons["h1"].tasks[urn].state == TaskState.KILLED
    assert any("spawned" in line for line in console.transcript)


def test_console_group_state():
    env = console_env()
    console = Console(env.topology.hosts["h3"], env.rc_client("h3"))
    urns = [
        env.run(until=console.spawn(f"h{i}", TaskSpec(program="idler", params={"duration": 2.0})))
        for i in (0, 1)
    ]
    env.settle(0.5)
    states = env.run(until=console.group_state("urn:snipe:mcast:g", urns))
    assert all(s == TaskState.RUNNING for s in states.values())
    env.settle(5.0)
    states = env.run(until=console.group_state("urn:snipe:mcast:g", urns))
    assert all(s == TaskState.EXITED for s in states.values())


def test_http_server_serves_registered_url():
    env = console_env()
    server = SnipeHttpServer(
        env.topology.hosts["h1"], env.rc_client("h1"),
        "http://results.snipe.org/", {"/": "<html>index</html>", "/data": "42"},
    )
    env.run(until=server.register())
    client = WebClient(env.topology.hosts["h2"], env.rc_client("h2"))
    assert env.run(until=client.get("http://results.snipe.org/")) == "<html>index</html>"
    assert env.run(until=client.get("http://results.snipe.org/", "/data")) == "42"
    assert server.hits == 2


def test_http_404_and_unregistered():
    env = console_env()
    server = SnipeHttpServer(
        env.topology.hosts["h1"], env.rc_client("h1"), "http://x.org/", {"/": "hi"}
    )
    env.run(until=server.register())
    client = WebClient(env.topology.hosts["h2"], env.rc_client("h2"))
    with pytest.raises(WebError, match="404"):
        env.run(until=client.get("http://x.org/", "/missing"))
    with pytest.raises(WebError, match="not registered"):
        env.run(until=client.get("http://never.org/"))


def test_http_server_found_after_migration():
    """§3.7: the browser finds the server even though it moved hosts."""
    env = console_env()
    server = SnipeHttpServer(
        env.topology.hosts["h1"], env.rc_client("h1"),
        "http://mobile.org/", {"/": "v1"},
    )
    env.run(until=server.register())
    client = WebClient(env.topology.hosts["h3"], env.rc_client("h3"))
    assert env.run(until=client.get("http://mobile.org/")) == "v1"  # caches h1
    env.run(until=server.move_to(env.topology.hosts["h2"], env.rc_client("h2")))
    server.add_page("/", "v2")  # pages travel with the server object
    # The client's cached location is stale; it must re-resolve.
    body = env.run(until=client.get("http://mobile.org/"))
    assert body in ("v1", "v2")
    assert server.host.name == "h2"


def test_file_server_contents_exported_over_http():
    """§5.9: stored files become web-accessible resources."""
    from repro.console import export_files_http

    env = SnipeEnvironment.lan_site(n_hosts=3, n_fs=1)
    fc = env.file_client("h2")

    def store(sim):
        yield fc.write("reports/summary.txt", "quarterly numbers", 2_000)

    env.run(until=env.sim.process(store(env.sim)))
    httpd = export_files_http(
        env.file_servers["h0"], env.rc_client("h0"), "http://files.snipe.org/"
    )
    env.run(until=httpd.register())
    browser = WebClient(env.topology.hosts["h1"], env.rc_client("h1"))
    body = env.run(until=browser.get("http://files.snipe.org/", "/reports/summary.txt"))
    assert body == "quarterly numbers"
    with pytest.raises(WebError, match="404"):
        env.run(until=browser.get("http://files.snipe.org/", "/no/such/file"))


def test_console_enumerates_group_members_from_metadata():
    """§3.7: 'The state of each process in a process group is maintained
    as metadata associated with that process group.'"""
    env = console_env(n=4)

    @env.program("member-task")
    def member_task(ctx):
        yield ctx.join_group("workers")
        yield ctx.sleep(30.0)
        return "ok"

    urns = [env.spawn("member-task", on=f"h{i}").urn for i in range(3)]
    env.settle(3.0)
    console = Console(env.topology.hosts["h3"], env.rc_client("h3"))
    members = env.run(until=console.group_members("workers"))
    assert sorted(members) == sorted(urns)
    # And the console resolves every member's state from the catalog alone.
    states = env.run(until=console.group_state("urn:snipe:mcast:workers"))
    assert set(states) == set(urns)
    assert all(s == TaskState.RUNNING for s in states.values())
