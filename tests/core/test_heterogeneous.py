"""Heterogeneous sites: mixed architectures, RM placement, ctx RM spawning."""

import pytest

from repro.core import SnipeEnvironment, make_replicated_service, service_locations
from repro.daemon import TaskSpec
from repro.net.media import ETHERNET_100


def hetero_env():
    """Workstations (x86/unix), a Cray node, and an embedded sensor node."""
    env = SnipeEnvironment(seed=6)
    env.add_segment("lan", ETHERNET_100)
    env.add_host("ws0", segments=["lan"], arch="x86", os="unix")
    env.add_host("ws1", segments=["lan"], arch="x86", os="unix")
    env.add_host("cray", segments=["lan"], arch="vector", os="unicos",
                 cpu_count=8, cpu_speed=4.0, memory=8192)
    env.add_host("pda", segments=["lan"], arch="arm", os="embedded", memory=16)
    env.add_rc_servers(["ws0", "ws1", "cray"])
    for name in env.topology.hosts:
        env.boot_daemon(name)
    env.add_rm("ws0")

    @env.program("sim-kernel")
    def sim_kernel(ctx):
        yield ctx.compute(1.0)
        return ctx.host.name

    env.settle(3.0)
    return env


def test_arch_constrained_spawn_lands_on_matching_host():
    env = hetero_env()
    rmc = env.rm_client("ws1")

    def go(sim):
        vector = yield rmc.request(TaskSpec(program="sim-kernel", arch="vector"))
        tiny = yield rmc.request(TaskSpec(program="sim-kernel", min_memory=4096))
        return vector["host"], tiny["host"]

    vector_host, big_mem_host = env.run(until=env.sim.process(go(env.sim)))
    assert vector_host == "cray"
    assert big_mem_host == "cray"


def test_embedded_host_excluded_by_memory_requirement():
    env = hetero_env()
    rmc = env.rm_client("ws1")
    placements = []

    def go(sim):
        for _ in range(6):
            result = yield rmc.request(TaskSpec(program="sim-kernel", min_memory=64))
            placements.append(result["host"])

    env.run(until=env.sim.process(go(env.sim)))
    assert "pda" not in placements


def test_fast_host_finishes_compute_sooner():
    """cpu_speed scales virtual compute time (the cray is 4x faster)."""
    env = hetero_env()
    ws_task = env.spawn(TaskSpec(program="sim-kernel"), on="ws1")
    cray_task = env.spawn(TaskSpec(program="sim-kernel"), on="cray")
    env.run(until=10.0)
    assert ws_task.ended_at - ws_task.started_at == pytest.approx(1.0)
    assert cray_task.ended_at - cray_task.started_at == pytest.approx(0.25)


def test_ctx_spawn_via_rm():
    env = hetero_env()
    results = {}

    @env.program("coordinator")
    def coordinator(ctx):
        result = yield ctx.spawn_via_rm(TaskSpec(program="sim-kernel", arch="vector"))
        results["placed"] = result["host"]
        return "ok"

    env.spawn("coordinator", on="ws1")
    env.run(until=30.0)
    assert results["placed"] == "cray"


def test_multi_location_service_registration():
    """§5.7: 'a LIFN can be created for that service, and each of the
    service locations (URLs) associated with that LIFN.'"""
    env = hetero_env()
    rc = env.rc_client("ws1")
    urn = env.run(until=make_replicated_service(
        rc, "solver", [("ws0", 7000), ("cray", 7000)]
    ))
    assert urn == "urn:snipe:svc:solver"
    locations = env.run(until=service_locations(rc, "solver"))
    assert locations == [("cray", 7000), ("ws0", 7000)]
