"""Migration tests (§5.6): self-initiated moves with zero message loss."""


from repro.core import SnipeEnvironment
from repro.daemon import TaskSpec, TaskState


def test_self_migration_resumes_with_state():
    env = SnipeEnvironment.lan_site(n_hosts=4)
    trail = []

    @env.program("wanderer")
    def wanderer(ctx, hops):
        i = ctx.checkpoint_state.get("i", 0)
        trail.append((ctx.host.name, i))
        while i < len(hops):
            ctx.checkpoint_state["i"] = i + 1
            moved = yield ctx.migrate(hops[i])
            if moved:
                return "moved"
            i += 1
        return f"settled@{ctx.host.name}"

    info = env.spawn(TaskSpec(program="wanderer", params={"hops": ["h1", "h2"]}), on="h0")
    env.run(until=60.0)
    # It started on h0, hopped to h1, then h2.
    assert trail == [("h0", 0), ("h1", 1), ("h2", 2)]
    final = env.daemons["h2"].tasks[info.urn]
    assert final.state == TaskState.EXITED
    assert final.exit_value == "settled@h2"
    assert env.daemons["h0"].tasks[info.urn].state == TaskState.MIGRATED


def test_migration_updates_rc_location():
    env = SnipeEnvironment.lan_site(n_hosts=3)

    @env.program("mover")
    def mover(ctx):
        if not ctx.checkpoint_state.get("moved"):
            ctx.checkpoint_state["moved"] = True
            if (yield ctx.migrate("h2")):
                return "gone"
        yield ctx.sleep(60.0)
        return "here"

    info = env.spawn("mover", on="h0")
    env.settle(10.0)  # migration done, task still sleeping on h2

    def check(sim):
        meta = yield env.rc_client("h1").lookup(info.urn)
        return (meta["host"]["value"], meta["comm-host"]["value"], meta["state"]["value"])

    host, comm_host, state = env.run(until=env.sim.process(check(env.sim)))
    assert host == "h2"
    assert comm_host == "h2"
    assert state == TaskState.RUNNING
    env.run(until=60.0)


def test_zero_message_loss_during_migration():
    """A continuous stream to a task migrating twice: every message is
    delivered exactly once (§5.6's guarantee; experiment E6's core)."""
    env = SnipeEnvironment.lan_site(n_hosts=4)
    N = 60
    received = []

    @env.program("collector")
    def collector(ctx, total, hops):
        got = ctx.checkpoint_state.get("got", 0)
        hop_at = {total // 3: 0, 2 * total // 3: 1}
        while got < total:
            msg = yield ctx.recv(tag="data")
            received.append(msg.payload)
            got += 1
            ctx.checkpoint_state["got"] = got
            hop = hop_at.get(got)
            if hop is not None and ctx.checkpoint_state.get("hops_done", 0) == hop:
                ctx.checkpoint_state["hops_done"] = hop + 1
                if (yield ctx.migrate(hops[hop])):
                    return "migrated"
        return "complete"

    @env.program("streamer")
    def streamer(ctx, dst, total):
        for i in range(total):
            yield ctx.send(dst, i, tag="data")
            yield ctx.sleep(0.05)
        return "streamed"

    info = env.spawn(
        TaskSpec(program="collector", params={"total": N, "hops": ["h1", "h2"]}), on="h0"
    )
    env.settle(0.5)
    env.spawn(TaskSpec(program="streamer", params={"dst": info.urn, "total": N}), on="h3")
    env.run(until=120.0)
    # Exactly once, in order, no loss, no duplicates.
    assert received == list(range(N))
    final = env.daemons["h2"].tasks[info.urn]
    assert final.state == TaskState.EXITED
    assert final.exit_value == "complete"


def test_migration_to_dead_host_keeps_running():
    env = SnipeEnvironment.lan_site(n_hosts=3)

    @env.program("cautious")
    def cautious(ctx):
        moved = yield ctx.migrate("h2")
        return f"moved={moved}@{ctx.host.name}"

    env.topology.hosts["h2"].crash()
    info = env.spawn("cautious", on="h0")
    env.run(until=30.0)
    final = env.daemons["h0"].tasks[info.urn]
    assert final.state == TaskState.EXITED
    assert final.exit_value == "moved=False@h0"
