"""Tests for checkpoint/restart via the file service (§5.6)."""

import pytest

from repro.core import SnipeEnvironment
from repro.core.checkpoint import (
    CheckpointCorrupt,
    checkpoint_lifn,
    checkpoint_to_files,
    restart_from_files,
    verify_checkpoint_record,
)
from repro.daemon import TaskSpec, TaskState


def ckpt_env():
    env = SnipeEnvironment.lan_site(n_hosts=4, n_fs=2, seed=3)
    progress = []

    @env.program("accumulator")
    def accumulator(ctx, total, ckpt_every):
        """Counts to *total*, checkpointing to the file service as it goes."""
        i = ctx.checkpoint_state.get("i", 0)
        while i < total:
            yield ctx.compute(0.05)
            i += 1
            ctx.checkpoint_state["i"] = i
            progress.append((ctx.host.name, i))
            if i % ckpt_every == 0:
                yield checkpoint_to_files(ctx)
        return i

    return env, progress


def test_checkpoint_written_and_registered():
    env, progress = ckpt_env()
    info = env.spawn(TaskSpec(program="accumulator",
                              params={"total": 10, "ckpt_every": 5}), on="h1")
    env.run(until=60.0)
    assert info.state == TaskState.EXITED

    def check(sim):
        meta = yield env.rc_client("h3").lookup(info.urn)
        cur = meta["checkpoint-lifn"]["value"]
        prev = (meta.get("checkpoint-prev-lifn") or {}).get("value")
        got = yield env.file_client("h3").read(cur)
        return got["payload"], cur, prev

    record, cur, prev = env.run(until=env.sim.process(check(env.sim)))
    assert record["state"]["i"] == 10
    assert record["program"] == "accumulator"
    assert verify_checkpoint_record(record)
    # Two checkpoints (at 5 and 10) rotated the versioned pointers.
    assert cur == checkpoint_lifn(info.urn, version=2)
    assert prev == checkpoint_lifn(info.urn, version=1)


def test_restart_after_host_death_resumes_from_checkpoint():
    """The case in-band migration can't handle: the host died first."""
    env, progress = ckpt_env()
    info = env.spawn(TaskSpec(program="accumulator",
                              params={"total": 40, "ckpt_every": 10}), on="h1")
    env.settle(1.3)  # ~24 steps done; last checkpoint at 20
    env.topology.hosts["h1"].crash()
    env.settle(1.0)
    assert env.daemons["h1"].tasks[info.urn].state == TaskState.KILLED

    def latest(sim):
        lifn = yield env.rc_client("h2").get(info.urn, "checkpoint-lifn")
        return lifn

    lifn = env.run(until=env.sim.process(latest(env.sim)))
    urn = env.run(
        until=restart_from_files(env.topology.hosts["h2"], env.rc_client("h2"), lifn)
    )
    assert urn == info.urn  # identity survives the restart
    env.run(until=120.0)
    revived = env.daemons["h2"].tasks[info.urn]
    assert revived.state == TaskState.EXITED
    assert revived.exit_value == 40
    # It resumed from the checkpoint (work re-done only since step 20):
    h2_steps = [i for host, i in progress if host == "h2"]
    assert min(h2_steps) == 21
    assert max(h2_steps) == 40


def test_corrupt_checkpoint_write_rejected_at_restart():
    """A gray storage fault scrambles the record after digesting; the
    restart path must refuse it rather than respawn from garbage."""
    env, progress = ckpt_env()
    env.topology.hosts["h1"].corrupt_ckpt_writes = True
    info = env.spawn(TaskSpec(program="accumulator",
                              params={"total": 10, "ckpt_every": 5}), on="h1")
    env.run(until=60.0)

    def latest(sim):
        lifn = yield env.rc_client("h2").get(info.urn, "checkpoint-lifn")
        return lifn

    lifn = env.run(until=env.sim.process(latest(env.sim)))
    with pytest.raises(CheckpointCorrupt):
        env.run(
            until=restart_from_files(env.topology.hosts["h2"], env.rc_client("h2"), lifn)
        )
    assert env.sim.obs.metrics.counter("ckpt.verify_failures").value >= 1


def test_restart_missing_checkpoint_fails():
    env, progress = ckpt_env()
    from repro.files import FileError

    with pytest.raises(FileError):
        env.run(
            until=restart_from_files(
                env.topology.hosts["h2"], env.rc_client("h2"), "checkpoints/ghost.ckpt"
            )
        )
