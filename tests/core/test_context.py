"""Integration tests: the SNIPE client library on a full site."""


from repro.core import SnipeEnvironment, make_replicated_process
from repro.daemon import TaskSpec, TaskState
from repro.transport.base import SendError


def test_urn_addressed_messaging():
    env = SnipeEnvironment.lan_site(n_hosts=4)
    results = {}

    @env.program("pong-server")
    def pong_server(ctx):
        env_msg = yield ctx.recv(tag="ping")
        yield ctx.send(env_msg.src_urn, {"pong": env_msg.payload["n"] + 1}, tag="pong")
        return "served"

    @env.program("ping-client")
    def ping_client(ctx, server_urn):
        yield ctx.send(server_urn, {"n": 41}, tag="ping")
        reply = yield ctx.recv(tag="pong")
        results["reply"] = reply.payload
        return "done"

    server = env.spawn("pong-server", on="h1")
    env.settle(0.5)
    client = env.spawn(TaskSpec(program="ping-client",
                                params={"server_urn": server.urn}), on="h2")
    env.run(until=30.0)
    assert results["reply"] == {"pong": 42}
    assert server.state == TaskState.EXITED
    assert client.state == TaskState.EXITED


def test_tag_filtering_and_ordering():
    env = SnipeEnvironment.lan_site(n_hosts=3)
    got = []

    @env.program("receiver")
    def receiver(ctx):
        # Ask for 'b' first even though 'a' messages arrive first.
        b = yield ctx.recv(tag="b")
        got.append(("b", b.payload))
        a1 = yield ctx.recv(tag="a")
        a2 = yield ctx.recv(tag="a")
        got.append(("a", a1.payload, a2.payload))

    @env.program("sender")
    def sender(ctx, dst):
        yield ctx.send(dst, 1, tag="a")
        yield ctx.send(dst, 2, tag="a")
        yield ctx.send(dst, 3, tag="b")

    r = env.spawn("receiver", on="h1")
    env.settle(0.5)
    env.spawn(TaskSpec(program="sender", params={"dst": r.urn}), on="h2")
    env.run(until=20.0)
    assert got == [("b", 3), ("a", 1, 2)]


def test_send_buffers_until_receiver_appears():
    """System buffering: a send to a not-yet-registered URN is retried."""
    env = SnipeEnvironment.lan_site(n_hosts=3)
    got = {}

    @env.program("late-receiver")
    def late_receiver(ctx):
        msg = yield ctx.recv()
        got["payload"] = msg.payload

    @env.program("eager-sender")
    def eager_sender(ctx, dst):
        yield ctx.send(dst, "you were not born yet")
        return "delivered"

    # Sender starts first, addressing a URN that does not exist yet.
    env.settle(0.5)
    env.spawn(TaskSpec(program="eager-sender",
                       params={"dst": "urn:snipe:proc:late.999"}), on="h2")
    env.settle(2.0)

    @env.program("_spawn_late")
    def _spawn_late(ctx):
        yield ctx.spawn(TaskSpec(program="late-receiver", urn_override="urn:snipe:proc:late.999"))

    env.spawn("_spawn_late", on="h1")
    env.settle(30.0)
    assert got["payload"] == "you were not born yet"


def test_send_fails_after_buffer_timeout():
    env = SnipeEnvironment.lan_site(n_hosts=2)
    outcome = {}

    @env.program("hopeless-sender")
    def hopeless_sender(ctx):
        ctx.buffer_timeout = 2.0
        start = ctx.sim.now
        try:
            yield ctx.send("urn:snipe:proc:never.1", "void")
        except SendError:
            outcome["buffered_for"] = ctx.sim.now - start
        return "done"

    env.settle(0.5)
    env.spawn("hopeless-sender", on="h0")
    env.settle(10.0)
    assert 2.0 <= outcome["buffered_for"] <= 3.0


def test_spawn_from_within_task():
    env = SnipeEnvironment.lan_site(n_hosts=3)
    children = []

    @env.program("child")
    def child(ctx, n):
        yield ctx.compute(0.01)
        children.append(n)
        return n

    @env.program("parent")
    def parent(ctx):
        for i, host in enumerate(["h1", "h2", None]):
            yield ctx.spawn(TaskSpec(program="child", params={"n": i}), on_host=host)
        return "spawned"

    env.spawn("parent", on="h0")
    env.run(until=20.0)
    assert sorted(children) == [0, 1, 2]


def test_group_communication_via_context():
    env = SnipeEnvironment.lan_site(n_hosts=5)
    received = {}

    @env.program("member")
    def member(ctx, name):
        yield ctx.join_group("sensors")
        msg = yield ctx.recv_group("sensors")
        received[name] = msg.payload
        return "ok"

    @env.program("publisher")
    def publisher(ctx):
        yield ctx.join_group("sensors")
        yield ctx.sleep(1.0)  # let members register
        yield ctx.send_group("sensors", {"reading": 7.5})
        return "sent"

    for i in range(3):
        env.spawn(TaskSpec(program="member", params={"name": f"m{i}"}), on=f"h{i}")
    env.settle(1.0)
    env.spawn("publisher", on="h3")
    env.run(until=30.0)
    assert received == {f"m{i}": {"reading": 7.5} for i in range(3)}


def test_replicated_pseudo_process_fanout():
    """§5.7: sends to a pseudo-process reach every replica member."""
    env = SnipeEnvironment.lan_site(n_hosts=5)
    received = {}

    @env.program("replica")
    def replica(ctx, name):
        yield ctx.join_group("calc-replicas")
        msg = yield ctx.recv_group("calc-replicas")
        received[name] = msg.payload
        return "ok"

    @env.program("feeder")
    def feeder(ctx, pseudo):
        yield ctx.sleep(1.0)
        yield ctx.send(pseudo, {"input": [1, 2, 3]})
        return "fed"

    for i in range(3):
        env.spawn(TaskSpec(program="replica", params={"name": f"r{i}"}), on=f"h{i}")
    env.settle(1.0)
    p = make_replicated_process(env.rc_client("h4"), "calc", "calc-replicas")
    urn = env.run(until=p)
    env.spawn(TaskSpec(program="feeder", params={"pseudo": urn}), on="h3")
    env.run(until=30.0)
    assert list(received.values()) == [{"input": [1, 2, 3]}] * 3


def test_watch_notify_on_exit():
    env = SnipeEnvironment.lan_site(n_hosts=3)
    events = []

    @env.program("watched")
    def watched(ctx):
        yield ctx.sleep(3.0)
        return "bye"

    @env.program("watcher")
    def watcher(ctx, target):
        yield ctx.watch(target)
        event = yield ctx.next_notification()
        events.append(event)
        return "saw it"

    w = env.spawn("watched", on="h1")
    env.settle(0.5)
    env.spawn(TaskSpec(program="watcher", params={"target": w.urn}), on="h2")
    env.run(until=30.0)
    assert events and events[0]["urn"] == w.urn
    assert events[0]["state"] == TaskState.EXITED
