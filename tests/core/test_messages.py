"""Unit + property tests for the XDR codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.messages import XdrError, xdr_decode, xdr_encode, xdr_size


def test_scalars_roundtrip():
    for v in [None, True, False, 0, -1, 2**40, -(2**70), 3.14, "héllo", b"\x00\xff"]:
        assert xdr_decode(xdr_encode(v)) == v


def test_containers_roundtrip():
    v = {"a": [1, 2, (3, "x")], "b": {"nested": b"bytes"}, "c": None}
    assert xdr_decode(xdr_encode(v)) == v


def test_tuple_vs_list_preserved():
    assert xdr_decode(xdr_encode((1, 2))) == (1, 2)
    assert xdr_decode(xdr_encode([1, 2])) == [1, 2]


def test_alignment_is_4_bytes():
    # "a" -> tag(4) + len(4) + 1 byte padded to 4 = 12.
    assert len(xdr_encode("a")) == 12
    assert len(xdr_encode("abcd")) == 12


def test_big_endian_int():
    assert xdr_encode(1)[-8:] == b"\x00\x00\x00\x00\x00\x00\x00\x01"


def test_unencodable_raises():
    with pytest.raises(XdrError, match="cannot XDR-encode"):
        xdr_encode(object())


def test_truncated_buffer_raises():
    with pytest.raises(XdrError, match="truncated"):
        xdr_decode(xdr_encode("hello")[:-4])


def test_trailing_garbage_raises():
    with pytest.raises(XdrError, match="trailing"):
        xdr_decode(xdr_encode(1) + b"\x00\x00\x00\x00")


def test_size_matches_encoding():
    v = {"k": [1.5, "x" * 100]}
    assert xdr_size(v) == len(xdr_encode(v))


json_like = st.recursive(
    st.none()
    | st.booleans()
    | st.integers()
    | st.floats(allow_nan=False)
    | st.text(max_size=30)
    | st.binary(max_size=30),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=20,
)


@given(json_like)
def test_roundtrip_property(value):
    assert xdr_decode(xdr_encode(value)) == value


@given(st.integers())
def test_any_int_roundtrips(n):
    assert xdr_decode(xdr_encode(n)) == n
