"""Shard-scenario model checking: clean runs, the seeded epoch-fence bug.

The shard scenario runs the sharded catalog through a split under
closed-loop write load with a core-host crash and a worker partition,
then holds the federation to per-shard convergence, placement, and
single-ownership (the shard oracle) plus the global LWW convergence
oracle. The seeded ``stale-epoch-write`` bug — the ownership fence
disabled, so writes routed on a stale pre-split map land in the parent
shard — must be caught by the shard oracle, shrink to a small plan, and
re-fail on replay. Slow-marked; CI runs these in the check job.
"""

import pytest

from repro.check import FaultEvent, minimize, run_check
from repro.check.shrink import load_trace, replay_trace, write_trace

pytestmark = pytest.mark.slow

SHARD = {"n_workers": 3, "duration": 60.0}


def test_shard_clean_run_splits_and_passes():
    report = run_check(scenario="shard", seed=1, **SHARD)
    assert report["ok"], report["violations"]
    # The scenario is only a real test if the namespace actually split
    # (ownership moved under the load) and writes kept landing.
    assert report["splits"] >= 1
    assert report["epoch"] >= 2
    assert report["delivered"] > 0 and report["completed"] > 0


def _find_failing_seed(bug, max_seed=6):
    for seed in range(1, max_seed + 1):
        report = run_check(scenario="shard", seed=seed, bug=bug, **SHARD)
        if not report["ok"]:
            return seed, report
    raise AssertionError(f"seeded bug {bug} escaped {max_seed} seeds")


def test_stale_epoch_write_caught_shrunk_and_replayed(tmp_path):
    seed, report = _find_failing_seed("stale-epoch-write")
    assert any(v["oracle"] == "shard-ownership"
               for v in report["violations"]), report["violations"]
    plan = [FaultEvent.from_dict(d) for d in report["plan"]]
    shrunk = minimize("shard", seed, "stale-epoch-write", plan,
                      explore=report["explore"], params=SHARD)
    # The fence bug needs no faults at all — any split plus a client
    # still routing on the previous epoch exposes it, so ddmin should
    # strip the fault plan to (nearly) nothing.
    assert len(shrunk["plan"]) <= 2
    assert not shrunk["report"]["ok"]
    path = tmp_path / "trace.json"
    write_trace(str(path), shrunk["report"])
    replayed = replay_trace(load_trace(str(path)))
    assert not replayed["ok"]
    assert any(v["oracle"] == "shard-ownership"
               for v in replayed["violations"])
