"""Oracle unit tests: synthetic probe streams against each reference model."""

from dataclasses import dataclass

from repro.check.oracles import (
    ConvergenceOracle,
    DeliveryOracle,
    ProbeBus,
    SingleOwnerOracle,
)
from repro.daemon.tasks import TaskState
from repro.rcds.records import RCStore
from repro.sim import Simulator


def test_probe_bus_fans_out_in_subscription_order():
    bus = ProbeBus()
    seen = []
    bus.subscribe(lambda kind, f: seen.append(("a", kind, f["x"])))
    bus.subscribe(lambda kind, f: seen.append(("b", kind, f["x"])))
    bus.emit("ev", x=1)
    assert seen == [("a", "ev", 1), ("b", "ev", 1)]


# -- DeliveryOracle ---------------------------------------------------------

def _delivery():
    sim = Simulator()
    return sim, DeliveryOracle(sim)


def send(o, seq, src="s", inc=1, dst="d"):
    o.on_probe("ctx.send", {"src": src, "inc": inc, "dst": dst, "seq": seq,
                            "tag": "t"})


def deliver(o, seq, src="s", src_inc=1, dst="d", dst_inc=1):
    o.on_probe("ctx.deliver", {"dst": dst, "dst_inc": dst_inc, "src": src,
                               "src_inc": src_inc, "seq": seq, "tag": "t"})


def test_delivery_clean_fifo_stream_passes():
    _, o = _delivery()
    for seq in (1, 2, 3):
        send(o, seq)
        deliver(o, seq)
    assert not o.violations
    assert o.delivered == 3


def test_delivery_flags_ghosts_duplicates_and_gaps():
    _, o = _delivery()
    deliver(o, 1)  # never sent
    assert "never sent" in o.violations[-1].detail
    for seq in (1, 2, 3):
        send(o, seq)
    deliver(o, 1)
    deliver(o, 1)  # duplicate
    assert "duplicate" in o.violations[-1].detail
    deliver(o, 3)  # gap: 2 skipped
    assert "gap" in o.violations[-1].detail
    assert len(o.violations) == 3


def test_delivery_group_fanout_is_exempt():
    _, o = _delivery()
    deliver(o, 0)
    deliver(o, 0)
    assert not o.violations


def test_delivery_restarted_receiver_resyncs_mid_stream():
    """A new receiver incarnation may join a live stream at any sequence
    (checkpoint restart); only *within* a stream must delivery be FIFO."""
    _, o = _delivery()
    for seq in (1, 2, 3, 4):
        send(o, seq)
    deliver(o, 1, dst_inc=1)
    deliver(o, 2, dst_inc=1)
    deliver(o, 3, dst_inc=2)  # restarted receiver syncs at 3
    deliver(o, 4, dst_inc=2)
    assert not o.violations


def test_delivery_flags_incarnation_regression():
    """Once a receiver heard incarnation 2 of a source, a message from
    incarnation 1 is a fenced zombie's straggler."""
    _, o = _delivery()
    send(o, 1, inc=2)
    send(o, 1, inc=1)
    deliver(o, 1, src_inc=2)
    deliver(o, 1, src_inc=1)
    assert len(o.violations) == 1
    assert "incarnation regression" in o.violations[0].detail


# -- SingleOwnerOracle ------------------------------------------------------

@dataclass
class FakeInfo:
    host: str
    state: str = TaskState.RUNNING
    fenced: bool = False


def start(o, inc, host, info):
    o.on_probe("ctx.start", {"urn": "urn:p:x", "inc": inc, "host": host,
                             "info": info})


def test_single_owner_flags_unfenced_zombie():
    o = SingleOwnerOracle(Simulator())
    start(o, 1, "a", FakeInfo("a"))
    start(o, 2, "b", FakeInfo("b"))  # restart elsewhere, no fence write
    assert len(o.violations) == 1
    assert "two live owners" in o.violations[0].detail


def test_single_owner_fence_write_covers_the_zombie():
    o = SingleOwnerOracle(Simulator())
    start(o, 1, "a", FakeInfo("a"))
    o.on_probe("guardian.fence", {"urn": "urn:p:x", "fence": 2})
    start(o, 2, "b", FakeInfo("b"))
    assert not o.violations


def test_single_owner_terminal_or_fenced_old_incarnation_is_fine():
    o = SingleOwnerOracle(Simulator())
    dead = FakeInfo("a", state=TaskState.FAILED)
    start(o, 1, "a", dead)
    start(o, 2, "b", FakeInfo("b"))
    assert not o.violations
    o2 = SingleOwnerOracle(Simulator())
    zombie = FakeInfo("a", fenced=True)
    start(o2, 1, "a", zombie)
    start(o2, 2, "b", FakeInfo("b"))
    assert not o2.violations


def test_single_owner_equal_incarnation_is_migration_handoff():
    o = SingleOwnerOracle(Simulator())
    start(o, 3, "a", FakeInfo("a"))
    start(o, 3, "b", FakeInfo("b"))  # migration: URN+incarnation move
    assert not o.violations


def test_single_owner_same_host_respawn_is_fenced_locally():
    """A duplicate spawn landing on the host that still runs the old
    incarnation is resolved by the daemon itself (spawn fences the stale
    task synchronously), so it is not a violation."""
    o = SingleOwnerOracle(Simulator())
    start(o, 1, "a", FakeInfo("a"))
    start(o, 2, "a", FakeInfo("a"))
    assert not o.violations


# -- ConvergenceOracle ------------------------------------------------------

class FakeEnv:
    def __init__(self, servers):
        self.rc_servers = servers


class FakeServer:
    def __init__(self, store):
        self.store = store


def test_convergence_mirrors_agree_on_honest_replicas():
    sim = Simulator()
    a, b = RCStore("rc-a"), RCStore("rc-b")
    oracle = ConvergenceOracle(sim)
    oracle.attach(FakeEnv({"ha": FakeServer(a), "hb": FakeServer(b)}))
    ra = a.local_update("uri:x", {"state": "running"}, wall=1.0)
    rb = b.local_update("uri:x", {"state": "exited"}, wall=2.0)
    # Cross-replicate in opposite orders: both must land on wall=2.0.
    a.apply_remote(rb)
    b.apply_remote(ra)
    assert not oracle.violations
    assert a.get("uri:x", "state") == b.get("uri:x", "state") == "exited"


def test_convergence_catches_a_replica_ignoring_lww():
    sim = Simulator()
    a = RCStore("rc-a")
    oracle = ConvergenceOracle(sim)
    oracle.attach(FakeEnv({"ha": FakeServer(a)}))
    newer = RCStore("rc-b").local_update("uri:x", {"state": "exited"}, wall=9.0)
    older = RCStore("rc-c").local_update("uri:x", {"state": "running"}, wall=1.0)
    a.apply_remote(newer)
    assert not oracle.violations
    a.lww_enabled = False  # instance-level: the seeded no-lww bug
    try:
        a.apply_remote(older)  # blind overwrite: older entry wins
    finally:
        del a.lww_enabled
    assert len(oracle.violations) == 1
    assert "LWW fold" in oracle.violations[0].detail


def test_convergence_quiescence_requires_terminal_agreement():
    sim = Simulator()
    a, b = RCStore("rc-a"), RCStore("rc-b")
    oracle = ConvergenceOracle(sim)
    oracle.attach(FakeEnv({"ha": FakeServer(a), "hb": FakeServer(b)}))
    recs = a.local_update("urn:p:x", {"state": TaskState.EXITED}, wall=1.0)
    oracle.check_quiescent(["urn:p:x"])  # b never heard: disagreement
    assert any("disagree" in v.detail for v in oracle.violations)
    oracle.violations = []
    b.apply_remote(recs)
    oracle.check_quiescent(["urn:p:x"])
    assert not oracle.violations
    recs = a.local_update("urn:p:x", {"state": TaskState.RUNNING}, wall=2.0)
    b.apply_remote(recs)
    oracle.check_quiescent(["urn:p:x"])  # agree, but not terminal
    assert any("not terminal" in v.detail for v in oracle.violations)


# -- ChunkOracle ------------------------------------------------------------

def _chunks():
    from repro.check.oracles import ChunkOracle
    sim = Simulator()
    return sim, ChunkOracle(sim)


def _publish(o, name="obj", digests=("d0", "d1", "d2"), whole="H"):
    o.on_probe("bulk.map", {"name": name, "size": 3, "chunk_size": 1,
                            "digests": digests, "hash": whole})


def _commit(o, seq, digest, host="h", name="obj", source="src"):
    o.on_probe("bulk.chunk", {"host": host, "name": name, "seq": seq,
                              "digest": digest, "source": source})


def test_chunk_oracle_clean_transfer_passes():
    _, o = _chunks()
    _publish(o)
    for seq, d in enumerate(("d0", "d1", "d2")):
        _commit(o, seq, d)
    o.on_probe("bulk.complete", {"host": "h", "name": "obj", "hash": "H"})
    assert o.violations == []
    assert o.committed == 3 and o.completions == 1


def test_chunk_oracle_flags_digest_mismatch():
    _, o = _chunks()
    _publish(o)
    _commit(o, 1, "WRONG")
    assert len(o.violations) == 1
    assert "disagrees with the chunk map" in o.violations[0].detail


def test_chunk_oracle_flags_mapless_and_out_of_range_commits():
    _, o = _chunks()
    _commit(o, 0, "d0")  # no map yet
    _publish(o)
    _commit(o, 7, "d0")  # out of range
    details = [v.detail for v in o.violations]
    assert len(details) == 2
    assert "no published chunk map" in details[0]
    assert "out-of-range" in details[1]


def test_chunk_oracle_flags_double_commit_but_allows_evict_recommit():
    _, o = _chunks()
    _publish(o)
    _commit(o, 0, "d0")
    _commit(o, 0, "d0")  # blind duplicate
    assert len(o.violations) == 1 and "twice" in o.violations[0].detail
    o.violations.clear()
    o.on_probe("bulk.evict", {"host": "h", "name": "obj", "seq": 0})
    _commit(o, 0, "d0")  # legitimate repair after eviction
    assert o.violations == []


def test_chunk_oracle_flags_completion_with_gaps_or_bad_hash():
    _, o = _chunks()
    _publish(o)
    _commit(o, 0, "d0")
    o.on_probe("bulk.complete", {"host": "h", "name": "obj", "hash": "H"})
    assert len(o.violations) == 1 and "never committed" in o.violations[0].detail
    o.violations.clear()
    _commit(o, 1, "d1")
    _commit(o, 2, "d2")
    o.on_probe("bulk.complete", {"host": "h", "name": "obj", "hash": "BAD"})
    assert len(o.violations) == 1
    assert "whole-object hash" in o.violations[0].detail


def test_chunk_oracle_flags_map_republish_with_different_content():
    _, o = _chunks()
    _publish(o)
    _publish(o)  # identical: fine
    assert o.violations == []
    _publish(o, digests=("x0", "x1", "x2"))
    assert len(o.violations) == 1 and "re-published" in o.violations[0].detail
