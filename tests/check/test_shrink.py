"""ddmin and trace-file units (no simulation involved)."""

import pytest

from repro.check.explore import FaultEvent
from repro.check.shrink import TRACE_VERSION, ddmin, load_trace, write_trace


def test_ddmin_finds_a_single_culprit():
    calls = []

    def failing(items):
        calls.append(list(items))
        return 7 in items

    assert ddmin(list(range(10)), failing) == [7]


def test_ddmin_keeps_a_required_pair():
    def failing(items):
        return 2 in items and 8 in items

    assert ddmin(list(range(10)), failing) == [2, 8]


def test_ddmin_reduces_to_empty_when_failure_is_unconditional():
    assert ddmin([1, 2, 3], lambda items: True) == []


def test_ddmin_keeps_everything_when_all_items_matter():
    items = [1, 2, 3, 4]
    assert ddmin(items, lambda c: c == items) == items


def test_ddmin_preserves_order():
    def failing(items):
        return all(x in items for x in (9, 1, 5))

    assert ddmin([9, 4, 1, 7, 5, 0], failing) == [9, 1, 5]


def test_trace_roundtrip(tmp_path):
    plan = [FaultEvent("partition", "s-w1", 4.5, 7.5)]
    report = {
        "scenario": "faults", "seed": 1, "bug": "no-fence-write",
        "explore": True, "params": {"n_workers": 3},
        "plan": [e.to_dict() for e in plan],
        "violations": [{"oracle": "single-owner", "time": 7.0, "detail": "x"}],
    }
    path = tmp_path / "trace.json"
    write_trace(str(path), report)
    trace = load_trace(str(path))
    assert trace["version"] == TRACE_VERSION
    assert [FaultEvent.from_dict(d) for d in trace["plan"]] == plan
    assert trace["bug"] == "no-fence-write"
    assert trace["violations"][0]["oracle"] == "single-owner"


def test_trace_version_mismatch_is_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"version": 99}')
    with pytest.raises(ValueError, match="version"):
        load_trace(str(path))
