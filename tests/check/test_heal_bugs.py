"""Heal-scenario model checking: clean runs, seeded bugs, shrink+replay.

The heal scenario partitions one RC replica past the compaction horizon
under a write/delete workload, heals, and asserts (via the resurrection
and compaction oracles plus a retired-key sweep) that deletes stay dead
and every replica reconverges. The seeded ``early-gc`` and
``vector-gap`` bugs must each be caught, shrink to a small plan, and
re-fail when the minimized trace is replayed. Multi-run acceptance
paths — slow-marked; CI runs them in the check job.
"""

import pytest

from repro.check import FaultEvent, minimize, run_check
from repro.check.shrink import load_trace, replay_trace, write_trace

pytestmark = pytest.mark.slow

HEAL = {"n_workers": 3, "total": 12, "step": 0.2, "duration": 60.0,
        "saturation": 3.0, "service_time": 0.05}


def test_heal_clean_run_compacts_and_passes():
    report = run_check(scenario="heal", seed=1, **HEAL)
    assert report["ok"], report["violations"]
    heal = report["heal"]
    assert heal["writes_ok"] > 0 and heal["retired"] > 0
    # The scenario is only a real test if logs compacted while a replica
    # was cut off — otherwise the bugs have nothing to bite on.
    assert heal["compactions"] > 0
    assert any(e["kind"] == "split" for e in report["plan"])


def _find_failing_seed(bug, max_seed=8):
    for seed in range(1, max_seed + 1):
        report = run_check(scenario="heal", seed=seed, bug=bug, **HEAL)
        if not report["ok"]:
            return seed, report
    raise AssertionError(f"seeded bug {bug} escaped {max_seed} seeds")


def test_early_gc_caught_by_resurrection_oracle(tmp_path):
    seed, report = _find_failing_seed("early-gc")
    assert any(v["oracle"] == "no-resurrection"
               for v in report["violations"]), report["violations"]
    plan = [FaultEvent.from_dict(d) for d in report["plan"]]
    shrunk = minimize("heal", seed, "early-gc", plan,
                      explore=report["explore"], params=HEAL)
    assert len(shrunk["plan"]) <= 3
    assert not shrunk["report"]["ok"]
    path = tmp_path / "trace.json"
    write_trace(str(path), shrunk["report"])
    replayed = replay_trace(load_trace(str(path)))
    assert not replayed["ok"]
    assert any(v["oracle"] == "no-resurrection"
               for v in replayed["violations"])


def test_vector_gap_caught_by_compaction_oracle(tmp_path):
    seed, report = _find_failing_seed("vector-gap")
    assert any(v["oracle"] == "compaction-convergence"
               for v in report["violations"]), report["violations"]
    plan = [FaultEvent.from_dict(d) for d in report["plan"]]
    shrunk = minimize("heal", seed, "vector-gap", plan,
                      explore=report["explore"], params=HEAL)
    assert len(shrunk["plan"]) <= 3
    assert not shrunk["report"]["ok"]
    path = tmp_path / "trace.json"
    write_trace(str(path), shrunk["report"])
    replayed = replay_trace(load_trace(str(path)))
    assert not replayed["ok"]
    assert any(v["oracle"] == "compaction-convergence"
               for v in replayed["violations"])
