"""Schedule exploration: the tie-breaking scheduler and fault plans."""

import pytest

from repro.check.explore import (
    ExplorationScheduler,
    FaultEvent,
    sample_fault_plan,
    seeded_bug,
)
from repro.guardian.guardian import Guardian
from repro.sim import Simulator
from repro.sim.kernel import URGENT


def test_seed_zero_is_the_fifo_schedule():
    sched = ExplorationScheduler(0)
    assert all(sched.pick(0.0, n) == 0 for n in (1, 2, 5, 9))
    assert sched.reordered == 0


def test_picks_are_in_range_and_seed_deterministic():
    a = ExplorationScheduler(7)
    b = ExplorationScheduler(7)
    c = ExplorationScheduler(8)
    seq_a = [a.pick(0.0, n) for n in (1, 2, 3, 4, 5, 6, 7, 8)]
    seq_b = [b.pick(0.0, n) for n in (1, 2, 3, 4, 5, 6, 7, 8)]
    seq_c = [c.pick(0.0, n) for n in (1, 2, 3, 4, 5, 6, 7, 8)]
    assert seq_a == seq_b
    assert seq_c != seq_a  # different seed, different schedule
    assert all(0 <= p < n for p, n in zip(seq_a, (1, 2, 3, 4, 5, 6, 7, 8)))
    assert a.picks == 8


def _tied_timeouts(sim, n):
    """n processes racing on identically-timed timeouts; returns the
    order their bodies ran in."""
    order = []

    def proc(sim, i):
        yield sim.timeout(1.0)
        order.append(i)

    for i in range(n):
        sim.process(proc(sim, i))
    return order


def test_kernel_fifo_matches_no_scheduler():
    """Installing the seed-0 scheduler must reproduce the default
    insertion-order schedule exactly."""
    plain = Simulator()
    order_plain = _tied_timeouts(plain, 6)
    plain.run()
    fifo = Simulator()
    fifo.set_scheduler(ExplorationScheduler(0))
    order_fifo = _tied_timeouts(fifo, 6)
    fifo.run()
    assert order_plain == list(range(6))
    assert order_fifo == order_plain


def test_kernel_exploration_permutes_ties_deterministically():
    orders = []
    for _ in range(2):
        sim = Simulator()
        sim.set_scheduler(ExplorationScheduler(3))
        order = _tied_timeouts(sim, 8)
        sim.run()
        orders.append(order)
    assert orders[0] == orders[1]  # same seed, same schedule
    assert sorted(orders[0]) == list(range(8))  # a permutation, no loss
    assert orders[0] != list(range(8))  # and actually reordered


def test_exploration_never_reorders_across_priorities():
    """Urgent events beat normal ones at the same timestamp no matter
    how the scheduler permutes within a priority class."""
    sim = Simulator()
    sim.set_scheduler(ExplorationScheduler(5))
    order = []
    for i in range(4):
        ev = sim.event()
        ev.add_callback(lambda e, i=i: order.append(("normal", i)))
        sim._schedule(ev, delay=1.0)
    for i in range(4):
        ev = sim.event()
        ev.add_callback(lambda e, i=i: order.append(("urgent", i)))
        sim._schedule(ev, delay=1.0, priority=URGENT)
    sim.run()
    assert [cls for cls, _ in order[:4]] == ["urgent"] * 4
    assert [cls for cls, _ in order[4:]] == ["normal"] * 4


def test_fault_plans_are_seeded_and_serializable():
    workers = ["w0", "w1", "w2"]
    a = sample_fault_plan("faults", 11, workers, horizon=30.0)
    b = sample_fault_plan("faults", 11, workers, horizon=30.0)
    c = sample_fault_plan("faults", 12, workers, horizon=30.0)
    assert a == b
    assert a != c
    assert any(e.kind == "partition" and e.target.startswith("s-") for e in a)
    for ev in a:
        assert FaultEvent.from_dict(ev.to_dict()) == ev
    over = sample_fault_plan("overload", 11, workers, horizon=30.0)
    assert {e.kind for e in over} <= {"congest", "slow"}
    with pytest.raises(ValueError):
        sample_fault_plan("nope", 1, workers, horizon=30.0)


def test_seeded_bug_flips_and_restores_the_hook():
    assert Guardian.fence_writes_enabled
    with seeded_bug("no-fence-write"):
        assert not Guardian.fence_writes_enabled
    assert Guardian.fence_writes_enabled
    with pytest.raises(ValueError):
        with seeded_bug("no-such-bug"):
            pass
