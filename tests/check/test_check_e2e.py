"""End-to-end model checking: harness, seeded bugs, shrinking, replay.

The quick tests keep one full check run in tier-1 so a broken harness
fails fast; the ``slow``-marked ones add the multi-run acceptance paths
(shrink + replay for every seeded bug).
"""

import pytest

from repro.check import FaultEvent, minimize, run_check
from repro.check.shrink import load_trace, replay_trace, write_trace

#: Small workload: 2 workers, 8 steps — a run takes well under a second.
QUICK = {"n_workers": 2, "total": 8, "step": 0.2, "duration": 45.0,
         "saturation": 3.0, "service_time": 0.05}

#: Bug hunts need the full 3-worker site: fewer workers leave the
#: Guardian no cross-host respawn target, and the seeded bugs only
#: manifest when a zombie's successor lands elsewhere.
BUGGY = {"n_workers": 3, "total": 16, "step": 0.2, "duration": 60.0,
         "saturation": 3.0, "service_time": 0.05}


def test_clean_run_has_no_violations_and_explores():
    report = run_check(scenario="faults", seed=1, **QUICK)
    assert report["ok"], report["violations"]
    assert report["completed"] == report["workers"] == 2
    assert report["schedule_reordered"] > 0  # ties actually permuted
    assert report["plan"], "seeded plan must inject at least one fault"


def test_same_seed_same_run():
    """The whole point: one integer reproduces the execution, including
    every recovery and every delivery the oracles observed."""
    a = run_check(scenario="faults", seed=2, **QUICK)
    b = run_check(scenario="faults", seed=2, **QUICK)
    for key in ("plan", "violations", "completed", "recoveries",
                "delivered", "schedule_picks", "schedule_reordered",
                "finished_at"):
        assert a[key] == b[key], key


def test_fifo_schedule_still_checked():
    report = run_check(scenario="faults", seed=1, explore=False, **QUICK)
    assert report["ok"], report["violations"]
    assert report["schedule_picks"] == 0


@pytest.mark.slow
def test_overload_scenario_runs_clean():
    report = run_check(scenario="overload", seed=1, **QUICK)
    assert report["ok"], report["violations"]


def _find_failing_seed(bug, scenario="faults", max_seed=8):
    for seed in range(1, max_seed + 1):
        report = run_check(scenario=scenario, seed=seed, bug=bug, **BUGGY)
        if not report["ok"]:
            return seed, report
    raise AssertionError(f"seeded bug {bug} escaped {max_seed} seeds")


@pytest.mark.slow
def test_seeded_fence_bug_is_caught_shrunk_and_replayable(tmp_path):
    """The acceptance path: disable fence writes, let the single-owner
    oracle catch it, shrink to <= 5 fault events, and re-fail the
    minimized trace deterministically."""
    seed, report = _find_failing_seed("no-fence-write")
    assert report["violations"][0]["oracle"] == "single-owner"
    plan = [FaultEvent.from_dict(d) for d in report["plan"]]
    shrunk = minimize("faults", seed, "no-fence-write", plan,
                      explore=report["explore"], params=BUGGY)
    assert len(shrunk["plan"]) <= 5
    assert not shrunk["report"]["ok"]
    path = tmp_path / "trace.json"
    write_trace(str(path), shrunk["report"])
    replayed = replay_trace(load_trace(str(path)))
    assert not replayed["ok"]
    assert replayed["violations"][0]["oracle"] == "single-owner"


@pytest.mark.slow
def test_seeded_rx_fencing_bug_is_caught():
    _, report = _find_failing_seed("no-rx-fencing")
    assert report["violations"][0]["oracle"] == "delivery"


@pytest.mark.slow
def test_seeded_lww_bug_is_caught():
    _, report = _find_failing_seed("no-lww")
    assert report["violations"][0]["oracle"] == "lww-convergence"


@pytest.mark.slow
def test_minimize_rejects_a_passing_configuration():
    with pytest.raises(ValueError, match="does not fail"):
        minimize("faults", 1, None,
                 [FaultEvent("partition", "s-w0", 5.0, 2.0)],
                 params=QUICK)


def test_bulk_scenario_runs_clean_and_quarantines_the_poison():
    report = run_check(scenario="bulk", seed=1, duration=30.0)
    assert report["ok"], report["violations"]
    assert report["completed"] == report["workers"] == 6
    assert report["poisoned"], "the scenario must poison one source"
    assert report["plan"], "seeded plan must crash at least one fetcher"


def test_bulk_scenario_same_seed_same_run():
    a = run_check(scenario="bulk", seed=3, duration=30.0)
    b = run_check(scenario="bulk", seed=3, duration=30.0)
    for key in ("plan", "violations", "completed", "delivered", "poisoned",
                "chunk_retries", "schedule_picks", "schedule_reordered",
                "finished_at"):
        assert a[key] == b[key], key


@pytest.mark.slow
def test_seeded_chunk_verify_bug_is_caught():
    report = run_check(scenario="bulk", seed=1, bug="no-chunk-verify",
                       duration=30.0)
    assert not report["ok"], "disabling chunk verification must be caught"
    assert report["violations"][0]["oracle"] == "chunk-integrity"
