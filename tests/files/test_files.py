"""Tests for file servers, sinks/sources, replication, closest-replica reads."""


from repro.files import FileClient, FileError, FileServer, ReplicationDaemon
from repro.rcds import RCClient, RCServer
from repro.transport.srudp import SrudpEndpoint

from ..transport.conftest import make_lan


def file_site(n_hosts=4, n_servers=2, seed=0):
    sim, topo, hosts = make_lan(n_hosts=n_hosts, seed=seed)
    # RC lives on the last host: several tests crash h0 (a file server)
    # and the metadata service must outlive it.
    replicas = [(hosts[-1].name, 385)]
    RCServer(hosts[-1])
    servers = []
    for i in range(n_servers):
        rc = RCClient(hosts[i], replicas)
        servers.append(FileServer(hosts[i], rc))
    client_rc = RCClient(hosts[-1], replicas)
    client = FileClient(hosts[-1], client_rc)
    return sim, topo, hosts, servers, client


def run_gen(sim, gen):
    return sim.run(until=sim.process(gen))


def test_write_then_read_back():
    sim, topo, hosts, servers, client = file_site()

    def go(sim):
        yield sim.timeout(0.5)  # let servers register in RC
        yield client.write("results.dat", {"rows": [1, 2, 3]}, 3000)
        got = yield client.read("results.dat")
        return got

    got = run_gen(sim, go(sim))
    assert got["payload"] == {"rows": [1, 2, 3]}
    assert got["size"] == 3000


def test_read_missing_lifn_fails():
    sim, topo, hosts, servers, client = file_site()

    def go(sim):
        try:
            yield client.read("ghost.dat")
        except FileError as exc:
            return str(exc)

    assert "no replicas" in run_gen(sim, go(sim))


def test_read_prefers_local_then_fails_over():
    sim, topo, hosts, servers, client = file_site(n_servers=2)

    def go(sim):
        # Store on both servers under the same LIFN.
        yield client.write("shared.dat", b"same-bytes", 100, server=("h0", 2100))
        yield client.write("shared.dat", b"same-bytes", 100, server=("h1", 2100))
        got1 = yield client.read("shared.dat")
        hosts[0].crash()
        got2 = yield client.read("shared.dat")
        return got1["location"], got2["location"]

    loc1, loc2 = run_gen(sim, go(sim))
    assert loc1 in ("file://h0/shared.dat", "file://h1/shared.dat")
    assert loc2 == "file://h1/shared.dat"  # survivor


def test_integrity_check_rejects_corrupt_replica():
    sim, topo, hosts, servers, client = file_site(n_servers=2)

    def go(sim):
        yield client.write("v.dat", b"good", 10, server=("h0", 2100))
        yield client.write("v.dat", b"good", 10, server=("h1", 2100))
        # Corrupt h0's copy behind the registry's back.
        servers[0].files["v.dat"].payload = b"evil"
        got = yield client.read("v.dat")
        return got

    got = run_gen(sim, go(sim))
    assert got["payload"] == b"good"
    assert client.integrity_failures == 1


def test_sink_accumulates_messages_into_file():
    """§5.9: open-for-write spawns a sink fed by ordinary messages."""
    sim, topo, hosts, servers, client = file_site()
    port, done = servers[0].spawn_sink("stream.log")
    sender = SrudpEndpoint(hosts[2], hosts[2].ephemeral_port())

    def go(sim):
        for i in range(5):
            yield sender.send("h0", port, f"record-{i}", 1000)
        yield sender.send("h0", port, "__snipe_file_eof__", 16)
        vf = yield done
        return vf

    vf = run_gen(sim, go(sim))
    assert vf.size == 5000
    assert vf.chunks == [f"record-{i}" for i in range(5)]
    # And the LIFN is bound so anyone can read it.
    def check(sim):
        return (yield client.read("stream.log"))

    got = run_gen(sim, check(sim))
    assert got["size"] == 5000


def test_source_streams_file_to_address():
    """§5.9: open-for-read spawns a source that transmits SNIPE messages."""
    sim, topo, hosts, servers, client = file_site()
    received = []
    rx = SrudpEndpoint(hosts[3], 7777)

    def receiver(sim):
        while True:
            msg = yield rx.recv()
            received.append(msg.payload)
            if msg.payload == "__snipe_file_eof__":
                return

    def go(sim):
        yield client.write("big.dat", b"contents", 200_000, server=("h0", 2100))
        r = sim.process(receiver(sim))
        yield servers[0].spawn_source("big.dat", "h3", 7777, chunk_size=65536)
        yield r
        return received

    run_gen(sim, go(sim))
    assert received[-1] == "__snipe_file_eof__"
    assert len(received) == 5  # ceil(200000/65536)=4 chunks + EOF


def test_replication_daemon_reaches_redundancy_target():
    sim, topo, hosts, servers, client = file_site(n_servers=3)
    daemons = [ReplicationDaemon(s, redundancy=3, interval=0.5) for s in servers]

    def go(sim):
        yield client.write("precious.dat", b"data", 1000, server=("h0", 2100))
        yield sim.timeout(10.0)
        return (yield client.lifns.locations("precious.dat"))

    locations = run_gen(sim, go(sim))
    assert len(locations) == 3
    assert sum(d.replicas_created for d in daemons) >= 2


def test_replication_survives_server_failure():
    """After replication, losing the original server doesn't lose the file."""
    sim, topo, hosts, servers, client = file_site(n_servers=3)
    for s in servers:
        ReplicationDaemon(s, redundancy=2, interval=0.5)

    def go(sim):
        yield client.write("durable.dat", b"keep-me", 500, server=("h0", 2100))
        yield sim.timeout(10.0)
        hosts[0].crash()
        got = yield client.read("durable.dat")
        return got["payload"]

    assert run_gen(sim, go(sim)) == b"keep-me"


def test_serving_replica_crash_mid_object_fails_over_verified():
    """The serving replica dies *while serving*: the read must fail over
    to the next-ranked replica and the content digest must still verify."""
    sim, topo, hosts, servers, client = file_site(n_servers=2)
    payload = bytes(i % 251 for i in range(3000))
    crashed_at = []

    # Arm h0 to crash at the exact moment it is asked for the object —
    # the request is in, the response will never make it out.
    orig_get = servers[0].rpc.handlers["file.get"]

    def crash_while_serving(args):
        result = orig_get(args)
        crashed_at.append(sim.now)
        hosts[0].crash()
        return result

    servers[0].rpc.handlers["file.get"] = crash_while_serving

    def go(sim):
        yield client.write("model.bin", payload, 3000, server=("h0", 2100))
        yield client.write("model.bin", payload, 3000, server=("h1", 2100))
        t0 = sim.now
        got = yield client.read("model.bin")
        return t0, got

    t0, got = run_gen(sim, go(sim))
    # h0 ranks first (sorted URL order at equal distance) and did crash
    # mid-read; the object still arrived, from h1, digest verified.
    assert crashed_at and t0 < crashed_at[0] < sim.now
    assert got["location"] == "file://h1/model.bin"
    assert got["payload"] == payload
    assert client.integrity_failures == 0
